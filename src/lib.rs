//! Root facade crate for the DiffTune reproduction.
//!
//! This crate re-exports every workspace crate under a short module name so that
//! the examples and integration tests in this repository can use a single
//! dependency. Library consumers should depend on the individual crates
//! (`difftune`, `difftune-sim`, ...) directly.
//!
//! # Example
//!
//! ```
//! use difftune_repro::isa::BasicBlock;
//!
//! let block: BasicBlock = "xorl %eax, %eax".parse().unwrap();
//! assert_eq!(block.len(), 1);
//! ```

pub use difftune as core;
pub use difftune_bhive as bhive;
pub use difftune_cpu as cpu;
pub use difftune_isa as isa;
pub use difftune_opentuner as opentuner;
pub use difftune_sim as sim;
pub use difftune_surrogate as surrogate;
pub use difftune_tensor as tensor;
