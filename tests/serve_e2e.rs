//! End-to-end tests for `difftune-serve`: the serving extension of the
//! repository's determinism contract.
//!
//! The core assertion mirrors `tests/determinism.rs` and `tests/matrix.rs`:
//! a `/predict` response body is a pure function of `(blocks, backend)` —
//! byte-identical across shard counts (the serving meaning of
//! `DIFFTUNE_THREADS`), across cold and warm caches, and across cache
//! capacities small enough to force eviction churn. The suite also proves
//! the four backend sources load and resolve (defaults, a hand-written but
//! fingerprint-consistent `MATRIX_*.json` cell, a session checkpoint's θ,
//! and a `SURROGATE_*.json` artifact answering through the forward-only
//! replay path — determinism invariant #7, including bit-equality to an
//! in-process forward pass and hot artifact swaps under in-flight traffic),
//! and that the HTTP surface degrades into 4xx responses, never a dead
//! server.

use std::fs;
use std::path::PathBuf;

use difftune_bench::matrix::CellKey;
use difftune_bench::record::{fingerprint_table, MatrixRecord, MATRIX_SCHEMA};
use difftune_repro::core::{threads_from_env, RunCheckpoint, Stage, ThetaTable};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::isa::BasicBlock;
use difftune_repro::sim::{McaSimulator, SimParams, Simulator};
use difftune_repro::surrogate::{
    FeatureMlpConfig, FeatureMlpModel, ModelConfig, SurrogateArtifact, SurrogateForward,
};
use difftune_serve::backend::{BackendRegistry, ReloadSpec};
use difftune_serve::client::HttpClient;
use difftune_serve::http::HttpLimits;
use difftune_serve::server::{spawn, ServeConfig, ServerHandle};

/// A fresh per-test artifact directory under the temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftune-serve-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// A learned-looking table: the uarch defaults with a deterministic nudge.
fn perturbed_table(uarch: Microarch, nudge: u32) -> SimParams {
    let mut table = default_params(uarch);
    table.per_inst[3].write_latency += nudge;
    table.per_inst[11].port_map[1] += nudge;
    table.dispatch_width += 1;
    table
}

/// Writes a fingerprint-consistent matrix cell record for
/// `mca:haswell:llvm_mca` into `dir`.
fn write_matrix_cell(dir: &std::path::Path) -> SimParams {
    write_cell_record(dir, 2, MATRIX_SCHEMA, None, None)
}

/// Writes the `mca:haswell:llvm_mca` cell with a chosen table nudge, schema
/// string, (optionally) a deliberately wrong fingerprint — the knobs the
/// hot-reload rejection tests turn — and (optionally) a recorded
/// surrogate-vs-simulator MAPE, the knob the policy budget tests turn.
fn write_cell_record(
    dir: &std::path::Path,
    nudge: u32,
    schema: &str,
    fake_fingerprint: Option<String>,
    mape: Option<f64>,
) -> SimParams {
    let table = perturbed_table(Microarch::Haswell, nudge);
    let record = MatrixRecord {
        schema: schema.to_string(),
        cell: "mca:haswell:llvm_mca".to_string(),
        simulator: "mca".to_string(),
        uarch: "haswell".to_string(),
        spec: "llvm_mca".to_string(),
        scale: "smoke".to_string(),
        seed: 7,
        train_blocks: 1,
        heldout_blocks: 1,
        simulated_samples: 1,
        num_learned_parameters: 1,
        default_mape: 0.3,
        default_tau: 0.7,
        learned_mape: 0.25,
        learned_tau: 0.75,
        surrogate_mape: None,
        surrogate_tau: None,
        surrogate_vs_sim_mape: mape,
        surrogate_vs_sim_tau: None,
        surrogate_fingerprint: None,
        surrogate_blocks_per_second: None,
        simulator_blocks_per_second: None,
        by_category: Vec::new(),
        table_fingerprint: fake_fingerprint.unwrap_or_else(|| fingerprint_table(&table)),
        learned_table: table.to_flat(),
    };
    fs::write(dir.join(record.file_name()), record.to_json()).expect("record writes");
    table
}

/// Writes a fingerprint-consistent `SURROGATE_*.json` artifact for
/// `mca:haswell:llvm_mca` into `dir`: a small feature-MLP surrogate over a
/// perturbed Haswell table. Different `nudge`s produce different artifacts
/// (different embedded table → different content fingerprint), which is how
/// the hot-swap tests simulate a re-tuned surrogate landing on disk.
fn write_surrogate_artifact(dir: &std::path::Path, nudge: u32) -> SurrogateArtifact {
    let config = FeatureMlpConfig {
        hidden_dim: 8,
        parameter_inputs: true,
        seed: 3,
    };
    let model = FeatureMlpModel::new(config);
    let table = perturbed_table(Microarch::Haswell, nudge);
    let artifact = SurrogateArtifact::new(
        "mca:haswell:llvm_mca",
        ModelConfig::Mlp(config),
        &model,
        &table,
    );
    fs::write(dir.join(artifact.file_name()), artifact.to_json()).expect("artifact writes");
    artifact
}

/// The reference for determinism invariant #7: a fresh in-process
/// forward-only pass over the artifact, no server anywhere.
fn in_process_prediction(artifact: &SurrogateArtifact, block: &str) -> f64 {
    let block: BasicBlock = block.parse().expect("block parses");
    SurrogateForward::from_artifact(artifact)
        .expect("artifact loads")
        .predict(&block)
}

/// Writes a finished-run checkpoint whose θ is a perturbed Haswell table.
fn write_checkpoint(dir: &std::path::Path) -> (PathBuf, SimParams) {
    let table = perturbed_table(Microarch::Haswell, 1);
    let checkpoint = RunCheckpoint {
        stage: Stage::Finished,
        seed: 3,
        train_blocks: 1,
        train_fingerprint: 0,
        table_learning_rate_bits: 0f32.to_bits(),
        table_epochs: 1,
        table_batch_size: 1,
        clamp_to_sampling: false,
        surrogate_params: None,
        surrogate_config: None,
        surrogate_report: None,
        theta: Some(ThetaTable::from_table(&table)),
        initial: Some(default_params(Microarch::Haswell)),
        table_losses: vec![0.5],
    };
    let path = dir.join("run.ckpt.json");
    fs::write(&path, checkpoint.to_json().expect("finite checkpoint")).expect("checkpoint writes");
    (path, table)
}

/// Builds the four-source registry every test serves from.
fn registry(dir: &std::path::Path) -> BackendRegistry {
    let mut registry = BackendRegistry::with_defaults();
    write_matrix_cell(dir);
    write_surrogate_artifact(dir, 1);
    let added = registry.add_matrix_dir(dir).expect("matrix dir loads");
    assert_eq!(
        added, 2,
        "exactly the hand-written cell and surrogate artifact load"
    );
    let (checkpoint_path, _) = write_checkpoint(dir);
    registry
        .add_checkpoint(
            &CellKey::parse("mca:haswell:write_latency_only").unwrap(),
            &checkpoint_path,
        )
        .expect("checkpoint loads");
    registry
}

fn serve(dir: &std::path::Path, shards: usize, cache_capacity: usize) -> ServerHandle {
    spawn(
        ServeConfig {
            shards,
            cache_capacity,
            ..ServeConfig::default()
        },
        registry(dir),
    )
    .expect("server binds an ephemeral port")
}

/// The request mix: single and batched blocks over every backend source.
fn predict_bodies() -> Vec<&'static str> {
    vec![
        // No source: resolution lands on the cell's derived three-tier
        // policy (which, at the default 0.0 budget, serves the matrix
        // table's exact values through tier 3).
        r#"{"block": "addq %rax, %rbx"}"#,
        // The policy pinned explicitly routes the same way.
        r#"{"block": "addq %rax, %rbx", "source": "policy"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "default"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "checkpoint", "spec": "write_latency_only"}"#,
        // A batch with a repeated block (exercises in-batch deduplication).
        r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2", "addq %rax, %rbx", "xorl %eax, %eax"], "source": "matrix"}"#,
        // Other simulators and microarchitectures fall back to defaults.
        r#"{"block": "addq %rbx, %rcx", "sim": "uop", "uarch": "skylake"}"#,
        r#"{"blocks": ["mulsd %xmm1, %xmm2"], "sim": "mca", "uarch": "zen2"}"#,
        // The surrogate fast path (invariant #7: same bytes as everything
        // above — across shards, cache states, and batching).
        r#"{"block": "addq %rax, %rbx", "source": "surrogate"}"#,
        r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2", "addq %rax, %rbx"], "source": "surrogate"}"#,
    ]
}

fn post_all(client: &mut HttpClient, bodies: &[&str]) -> Vec<String> {
    bodies
        .iter()
        .map(|body| {
            let response = client
                .post_json("/predict", body)
                .expect("request succeeds");
            assert_eq!(response.status, 200, "{body} -> {}", response.body_text());
            response.body_text()
        })
        .collect()
}

#[test]
fn predict_bodies_are_byte_identical_across_shards_and_cache_states() {
    let dir = fresh_dir("determinism");
    let bodies = predict_bodies();

    // The serving analogue of the training suite's width selection: always
    // compare 1 vs 4 shards, plus whatever DIFFTUNE_THREADS pins (so the CI
    // determinism legs exercise their widths here too).
    let mut widths = vec![1usize, 4];
    match threads_from_env() {
        Ok(0) => {}
        Ok(n) if widths.contains(&n) => {}
        Ok(n) => widths.push(n),
        Err(error) => panic!("invalid DIFFTUNE_THREADS: {error}"),
    }

    let mut reference: Option<Vec<String>> = None;
    for &shards in &widths {
        let handle = serve(&dir, shards, 4096);
        let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let cold = post_all(&mut client, &bodies);
        let warm = post_all(&mut client, &bodies);
        assert_eq!(cold, warm, "{shards} shard(s): warm cache changed bytes");
        match &reference {
            None => reference = Some(cold),
            Some(reference) => assert_eq!(
                &cold, reference,
                "responses diverged between 1 and {shards} shard(s)"
            ),
        }
        drop(client);
        handle.shutdown();
    }

    // A one-entry cache (constant eviction churn) and a disabled cache must
    // serve the same bytes as the roomy one.
    for capacity in [1, 0] {
        let handle = serve(&dir, 2, capacity);
        let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let churned = post_all(&mut client, &bodies);
        assert_eq!(
            Some(churned),
            reference,
            "cache capacity {capacity} changed response bytes"
        );
        drop(client);
        handle.shutdown();
    }

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn responses_carry_the_resolved_backend_and_exact_simulator_output() {
    let dir = fresh_dir("values");
    let matrix_table = perturbed_table(Microarch::Haswell, 2);
    let checkpoint_table = perturbed_table(Microarch::Haswell, 1);
    let handle = serve(&dir, 2, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let block: BasicBlock = "addq %rax, %rbx".parse().unwrap();
    let simulator = McaSimulator::default();
    for (body, backend_id, table) in [
        (
            r#"{"block": "addq %rax, %rbx", "source": "default"}"#,
            "default:mca:haswell",
            default_params(Microarch::Haswell),
        ),
        (
            // Sourceless: the policy answers, echoing the learned table's
            // digest and (at budget 0) its exact simulator values.
            r#"{"block": "addq %rax, %rbx"}"#,
            "policy:mca:haswell:llvm_mca",
            matrix_table.clone(),
        ),
        (
            r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#,
            "matrix:mca:haswell:llvm_mca",
            matrix_table.clone(),
        ),
        (
            r#"{"block": "addq %rax, %rbx", "source": "checkpoint", "spec": "write_latency_only"}"#,
            "checkpoint:mca:haswell:write_latency_only",
            checkpoint_table.clone(),
        ),
    ] {
        let response = client
            .post_json("/predict", body)
            .expect("request succeeds");
        assert_eq!(response.status, 200);
        let text = response.body_text();
        let expected = simulator.predict(&table, &block);
        assert!(
            text.contains(&format!("\"backend\":\"{backend_id}\"")),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "\"table_fingerprint\":\"{}\"",
                table.fingerprint_hex()
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!("\"predictions\":[{expected:?}]")),
            "expected prediction {expected:?} in {text}"
        );
    }

    // The checkpoint and matrix tables really differ from the defaults —
    // otherwise the three assertions above would not distinguish sources.
    assert_ne!(matrix_table, default_params(Microarch::Haswell));
    assert_ne!(checkpoint_table, matrix_table);

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_and_application_errors_answer_4xx_and_the_server_survives() {
    let dir = fresh_dir("errors");
    let handle = spawn(
        ServeConfig {
            shards: 1,
            max_blocks_per_request: 4,
            limits: HttpLimits {
                max_body_bytes: 512,
                ..HttpLimits::default()
            },
            ..ServeConfig::default()
        },
        registry(&dir),
    )
    .expect("server binds");
    let addr = handle.addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connects");

    for (body, status, needle) in [
        ("not json", 400, "not JSON"),
        ("[1,2,3]", 400, "JSON object"),
        (
            r#"{"sim": "mca"}"#,
            400,
            "`block` string or a `blocks` array",
        ),
        (
            r#"{"block": "addq %rax, %rbx", "blocks": []}"#,
            400,
            "not both",
        ),
        (r#"{"blocks": []}"#, 400, "must not be empty"),
        (r#"{"blocks": [7]}"#, 400, "only strings"),
        (r#"{"block": "frobnicate %zz9"}"#, 400, "does not parse"),
        (r#"{"block": ""}"#, 400, "no instructions"),
        (
            r#"{"block": "addq %rax, %rbx", "sim": "qemu"}"#,
            400,
            "unknown simulator",
        ),
        (
            r#"{"block": "addq %rax, %rbx", "uarch": "pentium"}"#,
            400,
            "unknown microarchitecture",
        ),
        (
            r#"{"block": "addq %rax, %rbx", "source": "s3"}"#,
            400,
            "unknown source",
        ),
        // A loaded source but an unloaded cell: 404 listing what exists.
        (
            r#"{"block": "addq %rax, %rbx", "uarch": "zen2", "source": "matrix"}"#,
            404,
            "matrix:mca:zen2",
        ),
        // One block over the per-request cap.
        (
            r#"{"blocks": ["addq %rax, %rbx", "addq %rax, %rbx", "addq %rax, %rbx", "addq %rax, %rbx", "addq %rax, %rbx"]}"#,
            413,
            "per-request limit",
        ),
    ] {
        let response = client
            .post_json("/predict", body)
            .expect("request succeeds");
        assert_eq!(
            response.status,
            status,
            "{body} -> {}",
            response.body_text()
        );
        assert!(
            response.body_text().contains(needle),
            "{body}: expected {needle:?} in {}",
            response.body_text()
        );
    }

    // Wrong method / unknown path.
    assert_eq!(client.get("/predict").expect("answers").status, 405);
    assert_eq!(client.get("/nope").expect("answers").status, 404);

    // An oversized declared body is refused (and the connection closes, so
    // use a throwaway client).
    let mut oversized = HttpClient::connect(&addr).expect("connects");
    let big = format!(
        r#"{{"block": "addq %rax, %rbx", "padding": "{}"}}"#,
        "x".repeat(600)
    );
    let response = oversized.post_json("/predict", &big).expect("answers");
    assert_eq!(response.status, 413);

    // A malformed request line also answers 400 before closing.
    let mut garbage = HttpClient::connect(&addr).expect("connects");
    let responses = garbage
        .send_raw(b"NONSENSE\r\n\r\n", 1)
        .expect("a 400 comes back");
    assert_eq!(responses[0].status, 400);

    // After all that abuse the server still answers.
    let health = client.get("/healthz").expect("still alive");
    assert_eq!(health.status, 200);
    assert!(
        health.body_text().contains("\"backends\":13"),
        "{}",
        health.body_text()
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_requests_on_one_connection_all_answer_in_order() {
    let dir = fresh_dir("pipeline");
    let handle = serve(&dir, 2, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let predict = r#"{"block": "addq %rax, %rbx", "source": "default"}"#;
    let raw = format!(
        "GET /healthz HTTP/1.1\r\n\r\nPOST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}GET /metrics HTTP/1.1\r\n\r\n",
        predict.len(),
        predict
    );
    let responses = client
        .send_raw(raw.as_bytes(), 3)
        .expect("all three pipelined responses arrive");
    assert_eq!(responses[0].status, 200);
    assert!(responses[0].body_text().contains("\"status\":\"ok\""));
    assert_eq!(responses[1].status, 200);
    assert!(responses[1].body_text().contains("default:mca:haswell"));
    assert_eq!(responses[2].status, 200);
    assert!(responses[2].body_text().contains("difftune_requests_total"));

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// A defaults-plus-matrix server whose `POST /reload` rescans `dir`.
fn serve_reloadable(dir: &std::path::Path) -> ServerHandle {
    let mut registry = BackendRegistry::with_defaults();
    registry.add_matrix_dir(dir).expect("matrix dir loads");
    spawn(
        ServeConfig {
            shards: 2,
            read_timeout: std::time::Duration::from_millis(400),
            reload_spec: Some(ReloadSpec {
                defaults: true,
                table_dirs: vec![dir.to_path_buf()],
                checkpoints: Vec::new(),
                error_budget: 0.0,
                cell_budgets: Vec::new(),
            }),
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("server binds")
}

#[test]
fn hot_reload_rejections_leave_the_old_registry_serving() {
    let dir = fresh_dir("reload-reject");
    write_matrix_cell(&dir);
    let handle = serve_reloadable(&dir);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let body = r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#;
    let before = client.post_json("/predict", body).expect("answers");
    assert_eq!(before.status, 200);
    let before = before.body_text();

    let cell_path = dir.join(difftune_bench::record::matrix_cell_file_name(
        "mca", "haswell", "llvm_mca",
    ));
    let good_json = fs::read_to_string(&cell_path).expect("cell is on disk");

    // Three corrupt artifact states. Every reload must answer a structured
    // 409, and the old registry must keep serving the same bytes.
    write_cell_record(&dir, 4, MATRIX_SCHEMA, Some("0".repeat(16)), None);
    let tampered = fs::read_to_string(&cell_path).expect("tampered cell is on disk");
    for (label, contents, needle) in [
        ("tampered fingerprint", tampered.as_str(), "fingerprints as"),
        (
            "truncated JSON",
            &good_json[..good_json.len() / 2],
            "not a matrix cell record",
        ),
        ("pre-/2 schema", "", "unservable records"),
    ] {
        if label == "pre-/2 schema" {
            write_cell_record(&dir, 4, "difftune-matrix/1", None, None);
        } else {
            fs::write(&cell_path, contents).expect("cell rewrites");
        }
        let rejected = client.post_json("/reload", "").expect("reload answers");
        assert_eq!(rejected.status, 409, "{label}: {}", rejected.body_text());
        assert!(
            rejected
                .body_text()
                .contains("reload rejected, old tables still serving"),
            "{label}: {}",
            rejected.body_text()
        );
        assert!(
            rejected.body_text().contains(needle),
            "{label}: expected {needle:?} in {}",
            rejected.body_text()
        );
        let after = client.post_json("/predict", body).expect("still serving");
        assert_eq!(after.status, 200, "{label} killed the old registry");
        assert_eq!(
            after.body_text(),
            before,
            "{label} changed served bytes without a successful reload"
        );
    }

    // A server started without reload sources refuses outright.
    let bare = spawn(
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
        BackendRegistry::with_defaults(),
    )
    .expect("server binds");
    let mut bare_client = HttpClient::connect(&bare.addr().to_string()).expect("connects");
    let refused = bare_client.post_json("/reload", "").expect("answers");
    assert_eq!(refused.status, 409);
    assert!(refused.body_text().contains("no reload sources"));
    drop(bare_client);
    bare.shutdown();

    // No rejection counted as a reload.
    let metrics = client.get("/metrics").expect("answers").body_text();
    assert!(
        metrics.contains("difftune_backend_reloads_total 0"),
        "{metrics}"
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_swaps_tables_and_purges_only_the_stale_backend() {
    let dir = fresh_dir("reload-swap");
    let old_table = write_matrix_cell(&dir);
    let handle = serve_reloadable(&dir);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    // Warm the cache so the purge has something to drop.
    let body = r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#;
    let before = client.post_json("/predict", body).expect("answers");
    assert_eq!(before.status, 200);
    let before = before.body_text();
    assert!(before.contains(&old_table.fingerprint_hex()), "{before}");
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);

    // A new learned table lands in the same cell; reload swaps it in.
    let new_table = write_cell_record(&dir, 5, MATRIX_SCHEMA, None, None);
    let reloaded = client.post_json("/reload", "").expect("reload answers");
    assert_eq!(reloaded.status, 200, "{}", reloaded.body_text());
    let text = reloaded.body_text();
    assert!(text.contains("\"status\":\"reloaded\""), "{text}");
    assert!(
        text.contains("\"purged_backends\":2"),
        "the old matrix table and the policy derived from it are stale: {text}"
    );
    assert!(
        text.contains("\"purged_entries\":1"),
        "the warmed cache entry is dropped: {text}"
    );

    let after = client.post_json("/predict", body).expect("answers");
    assert_eq!(after.status, 200);
    let after = after.body_text();
    assert_ne!(after, before, "the reload changed the served table");
    assert!(after.contains(&new_table.fingerprint_hex()), "{after}");

    // An idempotent second reload swaps nothing and purges nothing.
    let again = client.post_json("/reload", "").expect("answers");
    assert_eq!(again.status, 200);
    assert!(again.body_text().contains("\"purged_backends\":0"));

    let metrics = client.get("/metrics").expect("answers").body_text();
    assert!(
        metrics.contains("difftune_backend_reloads_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("difftune_endpoint_requests_total{endpoint=\"reload\"} 2"),
        "{metrics}"
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_finishes_in_flight_connections_then_stops_accepting() {
    let dir = fresh_dir("drain");
    let handle = serve_reloadable(&dir);
    let addr = handle.addr();

    let mut draining = HttpClient::connect(&addr.to_string()).expect("connects");
    let mut in_flight = HttpClient::connect(&addr.to_string()).expect("connects");
    assert_eq!(in_flight.get("/healthz").expect("answers").status, 200);
    assert!(!handle.drain_requested());

    let response = draining.post_json("/drain", "").expect("drain answers");
    assert_eq!(response.status, 200);
    assert!(response.body_text().contains("\"status\":\"draining\""));
    assert!(response.body_text().contains("\"already_draining\":false"));
    assert!(
        response.wants_close(),
        "a drain response closes its connection"
    );
    assert!(handle.drain_requested());

    // Deterministic ordering: the connection loop checks the drain flag
    // both before *and* after its blocking read, so a request sent after
    // the drain response came back is never answered — the connection is
    // closed unanswered and the client retries against the next process.
    // (Before the post-read check this raced: whether the in-flight
    // connection got one more answer depended on whether its read returned
    // before or after the flag flipped.)
    assert!(
        in_flight.get("/healthz").is_err(),
        "a request sent after the drain must be closed unanswered"
    );

    // New connections stop being accepted once the acceptor exits. The
    // acceptor observes the flag on its next wakeup, so the harness retries
    // with a bounded budget instead of asserting on the first attempt: a
    // post-drain connection either fails to connect or is closed without an
    // answer — it is never served.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut refused = false;
    for _ in 0..250 {
        match HttpClient::connect(&addr.to_string()) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(mut late) => {
                assert!(
                    late.get("/healthz").is_err(),
                    "a connection accepted mid-drain must be closed unanswered"
                );
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the drained server kept accepting connections"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(refused, "the acceptor never stopped accepting");

    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn connection_cap_negotiates_close_after_the_limit() {
    let dir = fresh_dir("conn-cap");
    let handle = spawn(
        ServeConfig {
            shards: 1,
            max_requests_per_connection: 2,
            ..ServeConfig::default()
        },
        registry(&dir),
    )
    .expect("server binds");
    let addr = handle.addr().to_string();

    let mut client = HttpClient::connect(&addr).expect("connects");
    let first = client.get("/healthz").expect("answers");
    assert_eq!(first.status, 200);
    assert!(
        !first.wants_close(),
        "below the cap the connection stays open"
    );
    let second = client.get("/healthz").expect("answers");
    assert_eq!(second.status, 200);
    assert!(
        second.wants_close(),
        "the capped request negotiates Connection: close"
    );
    assert!(
        client.get("/healthz").is_err(),
        "the server closed at the cap"
    );

    // A fresh connection gets a fresh budget.
    let mut again = HttpClient::connect(&addr).expect("reconnects");
    assert_eq!(again.get("/healthz").expect("answers").status, 200);

    drop(again);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_observe_requests_and_cache_hits() {
    let dir = fresh_dir("metrics");
    let handle = serve(&dir, 1, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let body = r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2"], "source": "default"}"#;
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);

    let metrics = handle.metrics();
    assert_eq!(
        metrics.cache_misses(),
        2,
        "first request simulates both blocks"
    );
    assert_eq!(metrics.cache_hits(), 2, "second request is fully cached");

    let text = client.get("/metrics").unwrap().body_text();
    assert!(text.contains("difftune_predict_requests_total 2"), "{text}");
    assert!(text.contains("difftune_predict_blocks_total 4"), "{text}");
    assert!(text.contains("difftune_cache_hits_total 2"), "{text}");

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn surrogate_responses_match_the_in_process_forward_pass_and_v1_aliases() {
    let dir = fresh_dir("surrogate");
    let handle = serve(&dir, 2, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    // The same artifact bytes registry() loaded, read back for the
    // reference pass.
    let artifact = SurrogateArtifact::from_json(
        &fs::read_to_string(dir.join(difftune_repro::surrogate::surrogate_file_name(
            "mca:haswell:llvm_mca",
        )))
        .expect("artifact is on disk"),
    )
    .expect("artifact verifies");

    for block in ["addq %rax, %rbx", "imulq %rbx, %rcx\naddq %rcx, %rax"] {
        let expected = in_process_prediction(&artifact, block);
        let body = format!(
            r#"{{"block": "{}", "source": "surrogate"}}"#,
            block.replace('\n', "\\n")
        );
        let response = client.post_json("/predict", &body).expect("answers");
        assert_eq!(response.status, 200, "{}", response.body_text());
        let text = response.body_text();
        // Invariant #7: the served float is bit-equal to the in-process
        // forward pass ({:?} is shortest-exact, so string equality here is
        // bit equality).
        assert!(
            text.contains(&format!("\"predictions\":[{expected:?}]")),
            "expected in-process prediction {expected:?} in {text}"
        );
        assert!(
            text.contains("\"backend\":\"surrogate:mca:haswell:llvm_mca\""),
            "{text}"
        );
        assert!(text.contains("\"source_kind\":\"surrogate\""), "{text}");
        assert!(
            text.contains(&format!(
                "\"table_fingerprint\":\"{}\"",
                artifact.fingerprint
            )),
            "{text}"
        );

        // The /v1 alias answers byte-identically.
        let v1 = client.post_json("/v1/predict", &body).expect("answers");
        assert_eq!(v1.status, 200);
        assert_eq!(v1.body_text(), text, "/v1/predict diverged from /predict");
    }

    // Table responses advertise their kind too.
    let table = client
        .post_json(
            "/predict",
            r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#,
        )
        .expect("answers");
    assert!(
        table.body_text().contains("\"source_kind\":\"table\""),
        "{}",
        table.body_text()
    );

    // /backends (and its /v1 alias, byte-identically) lists every predictor
    // with kind and fingerprint, id-sorted.
    let backends = client.get("/backends").expect("answers").body_text();
    assert!(
        backends.contains(&format!(
            "{{\"id\":\"surrogate:mca:haswell:llvm_mca\",\"kind\":\"surrogate\",\"fingerprint\":\"{}\"}}",
            artifact.fingerprint
        )),
        "{backends}"
    );
    assert!(
        backends.contains("\"id\":\"default:mca:haswell\",\"kind\":\"table\""),
        "{backends}"
    );
    let ids: Vec<&str> = backends
        .split("{\"id\":\"")
        .skip(1)
        .map(|entry| entry.split('"').next().unwrap())
        .collect();
    assert!(!ids.is_empty(), "{backends}");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "/backends is id-sorted: {backends}");
    let v1_backends = client.get("/v1/backends").expect("answers").body_text();
    assert_eq!(
        v1_backends, backends,
        "/v1/backends diverged from /backends"
    );

    // /v1 aliases cover the ops surface as well.
    assert_eq!(client.get("/v1/healthz").expect("answers").status, 200);
    assert_eq!(client.get("/v1/metrics").expect("answers").status, 200);

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_swaps_the_surrogate_under_inflight_traffic_byte_identically() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dir = fresh_dir("surrogate-reload");
    let old_artifact = write_surrogate_artifact(&dir, 1);
    let handle = serve_reloadable(&dir);
    let addr = handle.addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connects");

    let body = r#"{"block": "addq %rax, %rbx", "source": "surrogate"}"#;
    let expected_old = in_process_prediction(&old_artifact, "addq %rax, %rbx");
    let before = client.post_json("/predict", body).expect("answers");
    assert_eq!(before.status, 200, "{}", before.body_text());
    let before = before.body_text();
    assert!(
        before.contains(&format!("\"predictions\":[{expected_old:?}]")),
        "{before}"
    );
    // Warm the cache and the compiled-program cache.
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);

    // Hammer the surrogate backend from two connections while the artifact
    // is swapped underneath them.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).expect("connects");
                let mut seen = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let response = client
                        .post_json(
                            "/predict",
                            r#"{"block": "addq %rax, %rbx", "source": "surrogate"}"#,
                        )
                        .expect("in-flight request answers");
                    assert_eq!(response.status, 200);
                    seen.push(response.body_text());
                }
                seen
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // A re-tuned surrogate lands in the same cell; one reload swaps it in
    // and purges exactly the stale backend's cache (and with it the only
    // reachable compiled programs of the old engine).
    let new_artifact = write_surrogate_artifact(&dir, 6);
    assert_ne!(new_artifact.fingerprint, old_artifact.fingerprint);
    let reloaded = client.post_json("/reload", "").expect("reload answers");
    assert_eq!(reloaded.status, 200, "{}", reloaded.body_text());
    let text = reloaded.body_text();
    assert!(text.contains("\"status\":\"reloaded\""), "{text}");
    assert!(
        text.contains("\"purged_backends\":1"),
        "exactly the old surrogate backend is stale: {text}"
    );

    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);

    let expected_new = in_process_prediction(&new_artifact, "addq %rax, %rbx");
    let after = client.post_json("/predict", body).expect("answers");
    assert_eq!(after.status, 200);
    let after = after.body_text();
    assert!(
        after.contains(&format!("\"predictions\":[{expected_new:?}]")),
        "{after}"
    );
    assert_ne!(after, before, "the reload swapped the surrogate");

    // Every in-flight response was one of the two artifacts' exact bytes —
    // never a torn state, never a stale-program answer under the new
    // fingerprint.
    for worker in workers {
        let seen = worker.join().expect("worker thread finished");
        assert!(!seen.is_empty(), "the worker observed traffic");
        for response in seen {
            assert!(
                response == before || response == after,
                "an in-flight response matched neither artifact: {response}"
            );
        }
    }

    // Idempotent second reload: nothing left to purge.
    let again = client.post_json("/reload", "").expect("answers");
    assert_eq!(again.status, 200);
    assert!(
        again.body_text().contains("\"purged_backends\":0"),
        "{}",
        again.body_text()
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// A defaults-plus-`dir` server with a chosen `--error-budget`. The policy
/// budget tests write the cell's record with a measured
/// `surrogate_vs_sim_mape` of 2.0, so budgets at or above 2.0 open tier 2
/// and budgets below it pin tier 3.
fn serve_with_budget(dir: &std::path::Path, shards: usize, budget: f64) -> ServerHandle {
    let mut registry = BackendRegistry::with_defaults();
    registry.add_matrix_dir(dir).expect("matrix dir loads");
    registry.set_error_budget(budget);
    spawn(
        ServeConfig {
            shards,
            cache_capacity: 4096,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("server binds")
}

#[test]
fn policy_tiers_answer_by_budget_and_stay_byte_identical_across_shards() {
    let dir = fresh_dir("policy-budget");
    let matrix_table = write_cell_record(&dir, 2, MATRIX_SCHEMA, None, Some(2.0));
    let artifact = write_surrogate_artifact(&dir, 1);

    let block = "addq %rax, %rbx";
    let sourceless = r#"{"block": "addq %rax, %rbx"}"#;
    let pinned = [
        r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "surrogate"}"#,
    ];

    let parsed: BasicBlock = block.parse().unwrap();
    let tier3 = McaSimulator::default().predict(&matrix_table, &parsed);
    let tier2 = in_process_prediction(&artifact, block);
    assert_ne!(
        tier3.to_bits(),
        tier2.to_bits(),
        "the two tiers must be distinguishable"
    );

    // Pinned-source responses bypass the policy, so they must not move with
    // the budget; this reference spans every server below.
    let mut pinned_reference: Option<Vec<String>> = None;
    for (budget, source_kind, expected) in [
        // 0.0 is below the recorded MAPE of 2.0: every block takes tier 3
        // and the response carries the matrix table's exact values.
        (0.0, "table", tier3),
        // 10.0 clears the MAPE: tier 2 opens and the response is bit-equal
        // to the in-process surrogate forward pass.
        (10.0, "surrogate", tier2),
    ] {
        // Determinism invariant #8: the same budget serves the same bytes
        // across shard counts and across cold/warm caches.
        let mut reference: Option<String> = None;
        for shards in [1usize, 4] {
            let handle = serve_with_budget(&dir, shards, budget);
            let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
            let cold = post_all(&mut client, &[sourceless]).remove(0);
            let warm = post_all(&mut client, &[sourceless]).remove(0);
            assert_eq!(
                cold, warm,
                "budget {budget}, {shards} shard(s): warm cache changed bytes"
            );
            assert!(
                cold.contains("\"backend\":\"policy:mca:haswell:llvm_mca\""),
                "{cold}"
            );
            assert!(
                cold.contains(&format!("\"source_kind\":\"{source_kind}\"")),
                "budget {budget}: {cold}"
            );
            assert!(
                cold.contains(&format!("\"predictions\":[{expected:?}]")),
                "budget {budget}: expected {expected:?} in {cold}"
            );
            // Whichever tier answers, the response advertises the learned
            // table's digest — the cell being served.
            assert!(
                cold.contains(&format!(
                    "\"table_fingerprint\":\"{}\"",
                    matrix_table.fingerprint_hex()
                )),
                "{cold}"
            );
            match &reference {
                None => reference = Some(cold),
                Some(reference) => assert_eq!(
                    &cold, reference,
                    "budget {budget}: bytes diverged across shard counts"
                ),
            }

            let pinned_now = post_all(&mut client, &pinned);
            match &pinned_reference {
                None => pinned_reference = Some(pinned_now),
                Some(reference) => assert_eq!(
                    &pinned_now, reference,
                    "budget {budget} changed pinned-source bytes"
                ),
            }
            drop(client);
            handle.shutdown();
        }
    }

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_corrupt_artifact_degrades_the_policy_to_table_only_and_never_500s() {
    let dir = fresh_dir("policy-corrupt");
    let matrix_table = write_cell_record(&dir, 2, MATRIX_SCHEMA, None, Some(2.0));

    // An artifact whose embedded table was bit-flipped after fingerprinting:
    // the content fingerprint no longer verifies.
    let config = FeatureMlpConfig {
        hidden_dim: 8,
        parameter_inputs: true,
        seed: 3,
    };
    let model = FeatureMlpModel::new(config);
    let mut artifact = SurrogateArtifact::new(
        "mca:haswell:llvm_mca",
        ModelConfig::Mlp(config),
        &model,
        &perturbed_table(Microarch::Haswell, 1),
    );
    artifact.learned_table[0] += 1.0;
    fs::write(dir.join(artifact.file_name()), artifact.to_json()).expect("artifact writes");

    // The lenient startup load skips the artifact with a structured warning
    // naming the degradation; the cell still loads its table.
    let mut registry = BackendRegistry::with_defaults();
    let added = registry
        .add_matrix_dir(&dir)
        .expect("the lenient load survives a corrupt artifact");
    assert_eq!(added, 1, "only the record loads");
    registry.set_error_budget(1000.0);
    assert!(
        !registry.warnings().is_empty(),
        "the skipped artifact leaves a structured warning"
    );
    assert!(
        registry.warnings()[0].contains("tier 3"),
        "{:?}",
        registry.warnings()
    );

    let handle = spawn(
        ServeConfig {
            shards: 2,
            cache_capacity: 4096,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("server binds");
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    // Sourceless requests still answer 200 through the policy — tier 3 with
    // the table's exact values, never a 500 — even under a budget that
    // would have opened tier 2.
    let response = client
        .post_json("/predict", r#"{"block": "addq %rax, %rbx"}"#)
        .expect("answers");
    assert_eq!(response.status, 200, "{}", response.body_text());
    let text = response.body_text();
    assert!(
        text.contains("\"backend\":\"policy:mca:haswell:llvm_mca\""),
        "{text}"
    );
    assert!(text.contains("\"source_kind\":\"table\""), "{text}");
    let parsed: BasicBlock = "addq %rax, %rbx".parse().unwrap();
    let expected = McaSimulator::default().predict(&matrix_table, &parsed);
    assert!(
        text.contains(&format!("\"predictions\":[{expected:?}]")),
        "{text}"
    );

    // Pinning the never-loaded surrogate is a structured 404, and the
    // server stays healthy throughout.
    let pinned = client
        .post_json(
            "/predict",
            r#"{"block": "addq %rax, %rbx", "source": "surrogate"}"#,
        )
        .expect("answers");
    assert_eq!(pinned.status, 404, "{}", pinned.body_text());
    assert_eq!(client.get("/healthz").expect("answers").status, 200);

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn policy_tier_metrics_attribute_blocks_to_cache_surrogate_and_simulator() {
    let dir = fresh_dir("policy-metrics");
    write_cell_record(&dir, 2, MATRIX_SCHEMA, None, Some(2.0));
    write_surrogate_artifact(&dir, 1);
    let body = r#"{"block": "addq %rax, %rbx"}"#;

    // Generous budget: the first pass misses into tier 2, the repeat is a
    // tier-1 cache hit.
    let handle = serve_with_budget(&dir, 1, 10.0);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    let metrics = client.get("/metrics").unwrap().body_text();
    for needle in [
        "difftune_policy_tier_total{tier=\"cache\"} 1",
        "difftune_policy_tier_total{tier=\"surrogate\"} 1",
        "difftune_policy_tier_total{tier=\"simulator\"} 0",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }
    drop(client);
    handle.shutdown();

    // Budget 0: the same block routes to tier 3.
    let handle = serve_with_budget(&dir, 1, 0.0);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    let metrics = client.get("/metrics").unwrap().body_text();
    for needle in [
        "difftune_policy_tier_total{tier=\"simulator\"} 1",
        "difftune_policy_tier_total{tier=\"surrogate\"} 0",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }
    drop(client);
    handle.shutdown();

    fs::remove_dir_all(&dir).ok();
}
