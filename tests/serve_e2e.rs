//! End-to-end tests for `difftune-serve`: the serving extension of the
//! repository's determinism contract.
//!
//! The core assertion mirrors `tests/determinism.rs` and `tests/matrix.rs`:
//! a `/predict` response body is a pure function of `(blocks, backend)` —
//! byte-identical across shard counts (the serving meaning of
//! `DIFFTUNE_THREADS`), across cold and warm caches, and across cache
//! capacities small enough to force eviction churn. The suite also proves
//! the three backend sources load and resolve (defaults, a hand-written but
//! fingerprint-consistent `MATRIX_*.json` cell, a session checkpoint's θ),
//! and that the HTTP surface degrades into 4xx responses, never a dead
//! server.

use std::fs;
use std::path::PathBuf;

use difftune_bench::matrix::CellKey;
use difftune_bench::record::{fingerprint_table, MatrixRecord, MATRIX_SCHEMA};
use difftune_repro::core::{threads_from_env, RunCheckpoint, Stage, ThetaTable};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::isa::BasicBlock;
use difftune_repro::sim::{McaSimulator, SimParams, Simulator};
use difftune_serve::backend::{BackendRegistry, ReloadSpec};
use difftune_serve::client::HttpClient;
use difftune_serve::http::HttpLimits;
use difftune_serve::server::{spawn, ServeConfig, ServerHandle};

/// A fresh per-test artifact directory under the temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftune-serve-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// A learned-looking table: the uarch defaults with a deterministic nudge.
fn perturbed_table(uarch: Microarch, nudge: u32) -> SimParams {
    let mut table = default_params(uarch);
    table.per_inst[3].write_latency += nudge;
    table.per_inst[11].port_map[1] += nudge;
    table.dispatch_width += 1;
    table
}

/// Writes a fingerprint-consistent matrix cell record for
/// `mca:haswell:llvm_mca` into `dir`.
fn write_matrix_cell(dir: &std::path::Path) -> SimParams {
    write_cell_record(dir, 2, MATRIX_SCHEMA, None)
}

/// Writes the `mca:haswell:llvm_mca` cell with a chosen table nudge, schema
/// string, and (optionally) a deliberately wrong fingerprint — the knobs the
/// hot-reload rejection tests turn.
fn write_cell_record(
    dir: &std::path::Path,
    nudge: u32,
    schema: &str,
    fake_fingerprint: Option<String>,
) -> SimParams {
    let table = perturbed_table(Microarch::Haswell, nudge);
    let record = MatrixRecord {
        schema: schema.to_string(),
        cell: "mca:haswell:llvm_mca".to_string(),
        simulator: "mca".to_string(),
        uarch: "haswell".to_string(),
        spec: "llvm_mca".to_string(),
        scale: "smoke".to_string(),
        seed: 7,
        train_blocks: 1,
        heldout_blocks: 1,
        simulated_samples: 1,
        num_learned_parameters: 1,
        default_mape: 0.3,
        default_tau: 0.7,
        learned_mape: 0.25,
        learned_tau: 0.75,
        by_category: Vec::new(),
        table_fingerprint: fake_fingerprint.unwrap_or_else(|| fingerprint_table(&table)),
        learned_table: table.to_flat(),
    };
    fs::write(dir.join(record.file_name()), record.to_json()).expect("record writes");
    table
}

/// Writes a finished-run checkpoint whose θ is a perturbed Haswell table.
fn write_checkpoint(dir: &std::path::Path) -> (PathBuf, SimParams) {
    let table = perturbed_table(Microarch::Haswell, 1);
    let checkpoint = RunCheckpoint {
        stage: Stage::Finished,
        seed: 3,
        train_blocks: 1,
        train_fingerprint: 0,
        table_learning_rate_bits: 0f32.to_bits(),
        table_epochs: 1,
        table_batch_size: 1,
        clamp_to_sampling: false,
        surrogate_params: None,
        surrogate_report: None,
        theta: Some(ThetaTable::from_table(&table)),
        initial: Some(default_params(Microarch::Haswell)),
        table_losses: vec![0.5],
    };
    let path = dir.join("run.ckpt.json");
    fs::write(&path, checkpoint.to_json().expect("finite checkpoint")).expect("checkpoint writes");
    (path, table)
}

/// Builds the three-source registry every test serves from.
fn registry(dir: &std::path::Path) -> BackendRegistry {
    let mut registry = BackendRegistry::with_defaults();
    write_matrix_cell(dir);
    let added = registry.add_matrix_dir(dir).expect("matrix dir loads");
    assert_eq!(added, 1, "exactly the hand-written cell loads");
    let (checkpoint_path, _) = write_checkpoint(dir);
    registry
        .add_checkpoint(
            &CellKey::parse("mca:haswell:write_latency_only").unwrap(),
            &checkpoint_path,
        )
        .expect("checkpoint loads");
    registry
}

fn serve(dir: &std::path::Path, shards: usize, cache_capacity: usize) -> ServerHandle {
    spawn(
        ServeConfig {
            shards,
            cache_capacity,
            ..ServeConfig::default()
        },
        registry(dir),
    )
    .expect("server binds an ephemeral port")
}

/// The request mix: single and batched blocks over every backend source.
fn predict_bodies() -> Vec<&'static str> {
    vec![
        // No source: learned-first resolution picks the matrix cell.
        r#"{"block": "addq %rax, %rbx"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "default"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "checkpoint", "spec": "write_latency_only"}"#,
        // A batch with a repeated block (exercises in-batch deduplication).
        r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2", "addq %rax, %rbx", "xorl %eax, %eax"], "source": "matrix"}"#,
        // Other simulators and microarchitectures fall back to defaults.
        r#"{"block": "addq %rbx, %rcx", "sim": "uop", "uarch": "skylake"}"#,
        r#"{"blocks": ["mulsd %xmm1, %xmm2"], "sim": "mca", "uarch": "zen2"}"#,
    ]
}

fn post_all(client: &mut HttpClient, bodies: &[&str]) -> Vec<String> {
    bodies
        .iter()
        .map(|body| {
            let response = client
                .post_json("/predict", body)
                .expect("request succeeds");
            assert_eq!(response.status, 200, "{body} -> {}", response.body_text());
            response.body_text()
        })
        .collect()
}

#[test]
fn predict_bodies_are_byte_identical_across_shards_and_cache_states() {
    let dir = fresh_dir("determinism");
    let bodies = predict_bodies();

    // The serving analogue of the training suite's width selection: always
    // compare 1 vs 4 shards, plus whatever DIFFTUNE_THREADS pins (so the CI
    // determinism legs exercise their widths here too).
    let mut widths = vec![1usize, 4];
    match threads_from_env() {
        Ok(0) => {}
        Ok(n) if widths.contains(&n) => {}
        Ok(n) => widths.push(n),
        Err(error) => panic!("invalid DIFFTUNE_THREADS: {error}"),
    }

    let mut reference: Option<Vec<String>> = None;
    for &shards in &widths {
        let handle = serve(&dir, shards, 4096);
        let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let cold = post_all(&mut client, &bodies);
        let warm = post_all(&mut client, &bodies);
        assert_eq!(cold, warm, "{shards} shard(s): warm cache changed bytes");
        match &reference {
            None => reference = Some(cold),
            Some(reference) => assert_eq!(
                &cold, reference,
                "responses diverged between 1 and {shards} shard(s)"
            ),
        }
        drop(client);
        handle.shutdown();
    }

    // A one-entry cache (constant eviction churn) and a disabled cache must
    // serve the same bytes as the roomy one.
    for capacity in [1, 0] {
        let handle = serve(&dir, 2, capacity);
        let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let churned = post_all(&mut client, &bodies);
        assert_eq!(
            Some(churned),
            reference,
            "cache capacity {capacity} changed response bytes"
        );
        drop(client);
        handle.shutdown();
    }

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn responses_carry_the_resolved_backend_and_exact_simulator_output() {
    let dir = fresh_dir("values");
    let matrix_table = perturbed_table(Microarch::Haswell, 2);
    let checkpoint_table = perturbed_table(Microarch::Haswell, 1);
    let handle = serve(&dir, 2, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let block: BasicBlock = "addq %rax, %rbx".parse().unwrap();
    let simulator = McaSimulator::default();
    for (body, backend_id, table) in [
        (
            r#"{"block": "addq %rax, %rbx", "source": "default"}"#,
            "default:mca:haswell",
            default_params(Microarch::Haswell),
        ),
        (
            r#"{"block": "addq %rax, %rbx"}"#,
            "matrix:mca:haswell:llvm_mca",
            matrix_table.clone(),
        ),
        (
            r#"{"block": "addq %rax, %rbx", "source": "checkpoint", "spec": "write_latency_only"}"#,
            "checkpoint:mca:haswell:write_latency_only",
            checkpoint_table.clone(),
        ),
    ] {
        let response = client
            .post_json("/predict", body)
            .expect("request succeeds");
        assert_eq!(response.status, 200);
        let text = response.body_text();
        let expected = simulator.predict(&table, &block);
        assert!(
            text.contains(&format!("\"backend\":\"{backend_id}\"")),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "\"table_fingerprint\":\"{}\"",
                table.fingerprint_hex()
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!("\"predictions\":[{expected:?}]")),
            "expected prediction {expected:?} in {text}"
        );
    }

    // The checkpoint and matrix tables really differ from the defaults —
    // otherwise the three assertions above would not distinguish sources.
    assert_ne!(matrix_table, default_params(Microarch::Haswell));
    assert_ne!(checkpoint_table, matrix_table);

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_and_application_errors_answer_4xx_and_the_server_survives() {
    let dir = fresh_dir("errors");
    let handle = spawn(
        ServeConfig {
            shards: 1,
            max_blocks_per_request: 4,
            limits: HttpLimits {
                max_body_bytes: 512,
                ..HttpLimits::default()
            },
            ..ServeConfig::default()
        },
        registry(&dir),
    )
    .expect("server binds");
    let addr = handle.addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connects");

    for (body, status, needle) in [
        ("not json", 400, "not JSON"),
        ("[1,2,3]", 400, "JSON object"),
        (
            r#"{"sim": "mca"}"#,
            400,
            "`block` string or a `blocks` array",
        ),
        (
            r#"{"block": "addq %rax, %rbx", "blocks": []}"#,
            400,
            "not both",
        ),
        (r#"{"blocks": []}"#, 400, "must not be empty"),
        (r#"{"blocks": [7]}"#, 400, "only strings"),
        (r#"{"block": "frobnicate %zz9"}"#, 400, "does not parse"),
        (r#"{"block": ""}"#, 400, "no instructions"),
        (
            r#"{"block": "addq %rax, %rbx", "sim": "qemu"}"#,
            400,
            "unknown simulator",
        ),
        (
            r#"{"block": "addq %rax, %rbx", "uarch": "pentium"}"#,
            400,
            "unknown microarchitecture",
        ),
        (
            r#"{"block": "addq %rax, %rbx", "source": "s3"}"#,
            400,
            "unknown source",
        ),
        // A loaded source but an unloaded cell: 404 listing what exists.
        (
            r#"{"block": "addq %rax, %rbx", "uarch": "zen2", "source": "matrix"}"#,
            404,
            "matrix:mca:zen2",
        ),
        // One block over the per-request cap.
        (
            r#"{"blocks": ["addq %rax, %rbx", "addq %rax, %rbx", "addq %rax, %rbx", "addq %rax, %rbx", "addq %rax, %rbx"]}"#,
            413,
            "per-request limit",
        ),
    ] {
        let response = client
            .post_json("/predict", body)
            .expect("request succeeds");
        assert_eq!(
            response.status,
            status,
            "{body} -> {}",
            response.body_text()
        );
        assert!(
            response.body_text().contains(needle),
            "{body}: expected {needle:?} in {}",
            response.body_text()
        );
    }

    // Wrong method / unknown path.
    assert_eq!(client.get("/predict").expect("answers").status, 405);
    assert_eq!(client.get("/nope").expect("answers").status, 404);

    // An oversized declared body is refused (and the connection closes, so
    // use a throwaway client).
    let mut oversized = HttpClient::connect(&addr).expect("connects");
    let big = format!(
        r#"{{"block": "addq %rax, %rbx", "padding": "{}"}}"#,
        "x".repeat(600)
    );
    let response = oversized.post_json("/predict", &big).expect("answers");
    assert_eq!(response.status, 413);

    // A malformed request line also answers 400 before closing.
    let mut garbage = HttpClient::connect(&addr).expect("connects");
    let responses = garbage
        .send_raw(b"NONSENSE\r\n\r\n", 1)
        .expect("a 400 comes back");
    assert_eq!(responses[0].status, 400);

    // After all that abuse the server still answers.
    let health = client.get("/healthz").expect("still alive");
    assert_eq!(health.status, 200);
    assert!(
        health.body_text().contains("\"backends\":10"),
        "{}",
        health.body_text()
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_requests_on_one_connection_all_answer_in_order() {
    let dir = fresh_dir("pipeline");
    let handle = serve(&dir, 2, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let predict = r#"{"block": "addq %rax, %rbx", "source": "default"}"#;
    let raw = format!(
        "GET /healthz HTTP/1.1\r\n\r\nPOST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}GET /metrics HTTP/1.1\r\n\r\n",
        predict.len(),
        predict
    );
    let responses = client
        .send_raw(raw.as_bytes(), 3)
        .expect("all three pipelined responses arrive");
    assert_eq!(responses[0].status, 200);
    assert!(responses[0].body_text().contains("\"status\":\"ok\""));
    assert_eq!(responses[1].status, 200);
    assert!(responses[1].body_text().contains("default:mca:haswell"));
    assert_eq!(responses[2].status, 200);
    assert!(responses[2].body_text().contains("difftune_requests_total"));

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// A defaults-plus-matrix server whose `POST /reload` rescans `dir`.
fn serve_reloadable(dir: &std::path::Path) -> ServerHandle {
    let mut registry = BackendRegistry::with_defaults();
    registry.add_matrix_dir(dir).expect("matrix dir loads");
    spawn(
        ServeConfig {
            shards: 2,
            read_timeout: std::time::Duration::from_millis(400),
            reload_spec: Some(ReloadSpec {
                defaults: true,
                table_dirs: vec![dir.to_path_buf()],
                checkpoints: Vec::new(),
            }),
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("server binds")
}

#[test]
fn hot_reload_rejections_leave_the_old_registry_serving() {
    let dir = fresh_dir("reload-reject");
    write_matrix_cell(&dir);
    let handle = serve_reloadable(&dir);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let body = r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#;
    let before = client.post_json("/predict", body).expect("answers");
    assert_eq!(before.status, 200);
    let before = before.body_text();

    let cell_path = dir.join(difftune_bench::record::matrix_cell_file_name(
        "mca", "haswell", "llvm_mca",
    ));
    let good_json = fs::read_to_string(&cell_path).expect("cell is on disk");

    // Three corrupt artifact states. Every reload must answer a structured
    // 409, and the old registry must keep serving the same bytes.
    write_cell_record(&dir, 4, MATRIX_SCHEMA, Some("0".repeat(16)));
    let tampered = fs::read_to_string(&cell_path).expect("tampered cell is on disk");
    for (label, contents, needle) in [
        ("tampered fingerprint", tampered.as_str(), "fingerprints as"),
        (
            "truncated JSON",
            &good_json[..good_json.len() / 2],
            "not a matrix cell record",
        ),
        ("pre-/2 schema", "", "unservable records"),
    ] {
        if label == "pre-/2 schema" {
            write_cell_record(&dir, 4, "difftune-matrix/1", None);
        } else {
            fs::write(&cell_path, contents).expect("cell rewrites");
        }
        let rejected = client.post_json("/reload", "").expect("reload answers");
        assert_eq!(rejected.status, 409, "{label}: {}", rejected.body_text());
        assert!(
            rejected
                .body_text()
                .contains("reload rejected, old tables still serving"),
            "{label}: {}",
            rejected.body_text()
        );
        assert!(
            rejected.body_text().contains(needle),
            "{label}: expected {needle:?} in {}",
            rejected.body_text()
        );
        let after = client.post_json("/predict", body).expect("still serving");
        assert_eq!(after.status, 200, "{label} killed the old registry");
        assert_eq!(
            after.body_text(),
            before,
            "{label} changed served bytes without a successful reload"
        );
    }

    // A server started without reload sources refuses outright.
    let bare = spawn(
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
        BackendRegistry::with_defaults(),
    )
    .expect("server binds");
    let mut bare_client = HttpClient::connect(&bare.addr().to_string()).expect("connects");
    let refused = bare_client.post_json("/reload", "").expect("answers");
    assert_eq!(refused.status, 409);
    assert!(refused.body_text().contains("no reload sources"));
    drop(bare_client);
    bare.shutdown();

    // No rejection counted as a reload.
    let metrics = client.get("/metrics").expect("answers").body_text();
    assert!(
        metrics.contains("difftune_backend_reloads_total 0"),
        "{metrics}"
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_swaps_tables_and_purges_only_the_stale_backend() {
    let dir = fresh_dir("reload-swap");
    let old_table = write_matrix_cell(&dir);
    let handle = serve_reloadable(&dir);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    // Warm the cache so the purge has something to drop.
    let body = r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#;
    let before = client.post_json("/predict", body).expect("answers");
    assert_eq!(before.status, 200);
    let before = before.body_text();
    assert!(before.contains(&old_table.fingerprint_hex()), "{before}");
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);

    // A new learned table lands in the same cell; reload swaps it in.
    let new_table = write_cell_record(&dir, 5, MATRIX_SCHEMA, None);
    let reloaded = client.post_json("/reload", "").expect("reload answers");
    assert_eq!(reloaded.status, 200, "{}", reloaded.body_text());
    let text = reloaded.body_text();
    assert!(text.contains("\"status\":\"reloaded\""), "{text}");
    assert!(
        text.contains("\"purged_backends\":1"),
        "exactly the old matrix table is stale: {text}"
    );
    assert!(
        text.contains("\"purged_entries\":1"),
        "the warmed cache entry is dropped: {text}"
    );

    let after = client.post_json("/predict", body).expect("answers");
    assert_eq!(after.status, 200);
    let after = after.body_text();
    assert_ne!(after, before, "the reload changed the served table");
    assert!(after.contains(&new_table.fingerprint_hex()), "{after}");

    // An idempotent second reload swaps nothing and purges nothing.
    let again = client.post_json("/reload", "").expect("answers");
    assert_eq!(again.status, 200);
    assert!(again.body_text().contains("\"purged_backends\":0"));

    let metrics = client.get("/metrics").expect("answers").body_text();
    assert!(
        metrics.contains("difftune_backend_reloads_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("difftune_endpoint_requests_total{endpoint=\"reload\"} 2"),
        "{metrics}"
    );

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_finishes_in_flight_connections_then_stops_accepting() {
    let dir = fresh_dir("drain");
    let handle = serve_reloadable(&dir);
    let addr = handle.addr();

    let mut draining = HttpClient::connect(&addr.to_string()).expect("connects");
    let mut in_flight = HttpClient::connect(&addr.to_string()).expect("connects");
    assert_eq!(in_flight.get("/healthz").expect("answers").status, 200);
    assert!(!handle.drain_requested());

    let response = draining.post_json("/drain", "").expect("drain answers");
    assert_eq!(response.status, 200);
    assert!(response.body_text().contains("\"status\":\"draining\""));
    assert!(response.body_text().contains("\"already_draining\":false"));
    assert!(
        response.wants_close(),
        "a drain response closes its connection"
    );
    assert!(handle.drain_requested());

    // The already-open connection gets its in-flight request answered (with
    // the draining health state) before the server closes it.
    let health = in_flight
        .get("/healthz")
        .expect("in-flight request answers");
    assert_eq!(health.status, 503);
    assert!(health.body_text().contains("draining"));
    assert!(
        in_flight.get("/healthz").is_err(),
        "the drained server closed the connection after the in-flight request"
    );

    // New connections are refused once the acceptor exits.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if HttpClient::connect(&addr.to_string()).is_err() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the drained server kept accepting connections"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn connection_cap_negotiates_close_after_the_limit() {
    let dir = fresh_dir("conn-cap");
    let handle = spawn(
        ServeConfig {
            shards: 1,
            max_requests_per_connection: 2,
            ..ServeConfig::default()
        },
        registry(&dir),
    )
    .expect("server binds");
    let addr = handle.addr().to_string();

    let mut client = HttpClient::connect(&addr).expect("connects");
    let first = client.get("/healthz").expect("answers");
    assert_eq!(first.status, 200);
    assert!(
        !first.wants_close(),
        "below the cap the connection stays open"
    );
    let second = client.get("/healthz").expect("answers");
    assert_eq!(second.status, 200);
    assert!(
        second.wants_close(),
        "the capped request negotiates Connection: close"
    );
    assert!(
        client.get("/healthz").is_err(),
        "the server closed at the cap"
    );

    // A fresh connection gets a fresh budget.
    let mut again = HttpClient::connect(&addr).expect("reconnects");
    assert_eq!(again.get("/healthz").expect("answers").status, 200);

    drop(again);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_observe_requests_and_cache_hits() {
    let dir = fresh_dir("metrics");
    let handle = serve(&dir, 1, 4096);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");

    let body = r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2"], "source": "default"}"#;
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);

    let metrics = handle.metrics();
    assert_eq!(
        metrics.cache_misses(),
        2,
        "first request simulates both blocks"
    );
    assert_eq!(metrics.cache_hits(), 2, "second request is fully cached");

    let text = client.get("/metrics").unwrap().body_text();
    assert!(text.contains("difftune_predict_requests_total 2"), "{text}");
    assert!(text.contains("difftune_predict_blocks_total 4"), "{text}");
    assert!(text.contains("difftune_cache_hits_total 2"), "{text}");

    drop(client);
    handle.shutdown();
    fs::remove_dir_all(&dir).ok();
}
