//! Deterministic fault schedules for chaos-testing the serving fleet.
//!
//! A [`ChaosSchedule`] is a list of faults pinned to request indices:
//! "kill upstream 0 after request 24, start a rollout after request 40".
//! Schedules come from an explicit spec string (`kill@24,rollout@40`) or
//! from a seed (`seed:42:3` — three events drawn from a seeded RNG), and
//! both forms are pure functions of their inputs, so a schedule replays
//! bit-identically across runs, machines, and CI legs.
//!
//! The module is shared by `tests/fleet_e2e.rs` (in-process fleets, faults
//! applied through handles) and `difftune-loadtest --chaos` (child-process
//! fleets, faults applied with signals), via `#[path]` includes. To stay
//! includable from both it depends only on `std` and the vendored `rand`.
//!
//! The invariant every consumer asserts is determinism invariant #6 in its
//! scripted, exhaustive form: because `/predict` bodies are pure functions
//! of `(blocks, backend)`, the *pre-fault* and *post-fault* canonical bytes
//! are the same bytes — so every client-visible response under any schedule
//! must be byte-identical to a clean, fault-free baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// SIGKILL one upstream (in-process: drop its handle without shutdown).
    KillUpstream,
    /// SIGSTOP one upstream for a beat, then SIGCONT it — a stall, not a
    /// death: the router's read timeout must fail over around it.
    StallUpstream,
    /// Overwrite one upstream's artifact dir with garbage, then broadcast
    /// `POST /reload` — strict reload must refuse (409) and keep serving
    /// the old registry.
    CorruptReload,
    /// `POST /rollout` on a router: quiesce/reload/verify each upstream in
    /// turn while traffic continues.
    Rollout,
    /// Kill one router; clients move to a surviving router.
    KillRouter,
}

impl FaultKind {
    /// The spec-grammar name of this fault.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::KillUpstream => "kill",
            FaultKind::StallUpstream => "stall",
            FaultKind::CorruptReload => "corrupt",
            FaultKind::Rollout => "rollout",
            FaultKind::KillRouter => "kill-router",
        }
    }

    fn parse(name: &str) -> Option<FaultKind> {
        match name {
            "kill" => Some(FaultKind::KillUpstream),
            "stall" => Some(FaultKind::StallUpstream),
            "corrupt" => Some(FaultKind::CorruptReload),
            "rollout" => Some(FaultKind::Rollout),
            "kill-router" => Some(FaultKind::KillRouter),
            _ => None,
        }
    }
}

/// One fault, scheduled to fire after `at_request` requests have completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// Fires once the request with this (0-based) index has completed.
    pub at_request: usize,
}

/// A deterministic, replayable list of faults, sorted by request index.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// The faults, sorted by `at_request` (stable for equal indices).
    pub faults: Vec<Fault>,
    /// Canonical spec string: parsing or printing it reproduces the
    /// schedule exactly (`kill@24,rollout@40`).
    pub spec: String,
}

impl ChaosSchedule {
    /// Parses a schedule spec.
    ///
    /// Two forms:
    ///
    /// * explicit — comma-separated `FAULT@REQUEST` events, where FAULT is
    ///   one of `kill`, `stall`, `corrupt`, `rollout`, `kill-router`:
    ///   `kill@24,rollout@40`;
    /// * seeded — `seed:<u64>[:<events>]` draws `events` (default 3) events
    ///   from a seeded RNG over the first `total` requests.
    ///
    /// `total` bounds the request indices; an explicit event at or past it
    /// is an error (it would never fire). `allow_router_kill` gates
    /// `kill-router` events: seeded schedules never draw them when it is
    /// false, and explicit ones are rejected (a single-router consumer
    /// cannot survive applying one).
    pub fn parse(
        spec: &str,
        total: usize,
        allow_router_kill: bool,
    ) -> Result<ChaosSchedule, String> {
        if let Some(rest) = spec.strip_prefix("seed:") {
            let mut parts = rest.splitn(2, ':');
            let seed: u64 = parts
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| format!("chaos spec {spec:?}: seed is not a u64"))?;
            let events = match parts.next() {
                None => 3,
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("chaos spec {spec:?}: event count is not a number"))?,
            };
            return Ok(ChaosSchedule::from_seed(
                seed,
                events,
                total,
                allow_router_kill,
            ));
        }
        let mut faults = Vec::new();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (name, at) = token
                .split_once('@')
                .ok_or_else(|| format!("chaos event {token:?}: expected FAULT@REQUEST"))?;
            let kind = FaultKind::parse(name).ok_or_else(|| {
                format!(
                    "chaos event {token:?}: unknown fault {name:?} \
                     (kill, stall, corrupt, rollout, kill-router)"
                )
            })?;
            if kind == FaultKind::KillRouter && !allow_router_kill {
                return Err(format!(
                    "chaos event {token:?}: kill-router needs at least two routers"
                ));
            }
            let at_request: usize = at
                .parse()
                .map_err(|_| format!("chaos event {token:?}: request index is not a number"))?;
            if at_request >= total {
                return Err(format!(
                    "chaos event {token:?}: fires at request {at_request} but only \
                     {total} requests are scheduled"
                ));
            }
            faults.push(Fault { kind, at_request });
        }
        if faults.is_empty() {
            return Err(format!("chaos spec {spec:?}: no events"));
        }
        faults.sort_by_key(|fault| fault.at_request);
        let spec = canonical_spec(&faults);
        Ok(ChaosSchedule { faults, spec })
    }

    /// Draws `events` faults from a seeded RNG, spread over the middle of
    /// the run (`[total/8, 7*total/8)`) so every fault has pre-fault and
    /// post-fault traffic to compare. Pure function of its arguments.
    ///
    /// `allow_router_kill` gates [`FaultKind::KillRouter`] so single-router
    /// consumers can draw schedules they can actually apply.
    pub fn from_seed(
        seed: u64,
        events: usize,
        total: usize,
        allow_router_kill: bool,
    ) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(0xc4a0_5000_0000_0000 ^ seed);
        let lo = (total / 8).max(1);
        let hi = (total * 7 / 8).max(lo + 1);
        let menu: &[FaultKind] = if allow_router_kill {
            &[
                FaultKind::KillUpstream,
                FaultKind::StallUpstream,
                FaultKind::CorruptReload,
                FaultKind::Rollout,
                FaultKind::KillRouter,
            ]
        } else {
            &[
                FaultKind::KillUpstream,
                FaultKind::StallUpstream,
                FaultKind::CorruptReload,
                FaultKind::Rollout,
            ]
        };
        let mut faults = Vec::with_capacity(events.max(1));
        let mut killed_router = false;
        let mut disrupted_upstream = false;
        for _ in 0..events.max(1) {
            let mut kind = menu[rng.gen_range(0..menu.len())];
            // At most one router death and one upstream *disruption* (kill
            // OR stall) per schedule: a kill takes one upstream out for
            // good and a stall freezes another for a window, so drawing
            // both could leave a 2-upstream fleet with nothing alive to
            // answer. Later draws degrade to rollouts, which any fleet
            // survives.
            if kind == FaultKind::KillRouter && killed_router {
                kind = FaultKind::Rollout;
            }
            if matches!(kind, FaultKind::KillUpstream | FaultKind::StallUpstream)
                && disrupted_upstream
            {
                kind = FaultKind::Rollout;
            }
            killed_router |= kind == FaultKind::KillRouter;
            disrupted_upstream |=
                matches!(kind, FaultKind::KillUpstream | FaultKind::StallUpstream);
            faults.push(Fault {
                kind,
                at_request: rng.gen_range(lo..hi),
            });
        }
        faults.sort_by_key(|fault| fault.at_request);
        let spec = canonical_spec(&faults);
        ChaosSchedule { faults, spec }
    }

    /// The faults that fire once request `request` has completed.
    #[allow(dead_code)] // part of the shared harness API; not every consumer segments this way
    pub fn faults_at(&self, request: usize) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |fault| fault.at_request == request)
    }

    /// True when the schedule kills a router at some point.
    #[allow(dead_code)] // part of the shared harness API
    pub fn kills_a_router(&self) -> bool {
        self.faults
            .iter()
            .any(|fault| fault.kind == FaultKind::KillRouter)
    }
}

fn canonical_spec(faults: &[Fault]) -> String {
    faults
        .iter()
        .map(|fault| format!("{}@{}", fault.kind.name(), fault.at_request))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_specs_round_trip_through_their_canonical_form() {
        let schedule = ChaosSchedule::parse("rollout@40, kill@24", 64, true).unwrap();
        assert_eq!(schedule.spec, "kill@24,rollout@40");
        assert_eq!(
            schedule.faults,
            vec![
                Fault {
                    kind: FaultKind::KillUpstream,
                    at_request: 24
                },
                Fault {
                    kind: FaultKind::Rollout,
                    at_request: 40
                },
            ]
        );
        let reparsed = ChaosSchedule::parse(&schedule.spec, 64, true).unwrap();
        assert_eq!(reparsed.faults, schedule.faults);
    }

    #[test]
    fn malformed_specs_are_rejected_with_a_reason() {
        for bad in [
            "",
            "kill",
            "frobnicate@3",
            "kill@banana",
            "kill@64",
            "seed:banana",
        ] {
            assert!(
                ChaosSchedule::parse(bad, 64, true).is_err(),
                "spec {bad:?} should not parse"
            );
        }
        assert!(
            ChaosSchedule::parse("kill-router@9", 64, false).is_err(),
            "explicit router kills need a second router"
        );
    }

    #[test]
    fn seeded_schedules_replay_bit_identically() {
        let a = ChaosSchedule::parse("seed:42:4", 64, true).unwrap();
        let b = ChaosSchedule::from_seed(42, 4, 64, true);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.spec, b.spec);
        let c = ChaosSchedule::from_seed(43, 4, 64, true);
        assert_ne!(a.spec, c.spec, "different seeds draw different schedules");
    }

    #[test]
    fn seeded_schedules_stay_survivable_and_inside_the_run() {
        for seed in 0..200u64 {
            let schedule = ChaosSchedule::from_seed(seed, 5, 64, true);
            assert!(schedule.faults.len() == 5);
            let disruptions = schedule
                .faults
                .iter()
                .filter(|fault| {
                    matches!(
                        fault.kind,
                        FaultKind::KillUpstream | FaultKind::StallUpstream
                    )
                })
                .count();
            let router_kills = schedule
                .faults
                .iter()
                .filter(|fault| fault.kind == FaultKind::KillRouter)
                .count();
            // Kills and stalls share one budget: a kill plus a stall could
            // leave a 2-upstream fleet with zero live upstreams.
            assert!(
                disruptions <= 1,
                "seed {seed} disrupts {disruptions} upstreams"
            );
            assert!(
                router_kills <= 1,
                "seed {seed} kills {router_kills} routers"
            );
            for fault in &schedule.faults {
                assert!(fault.at_request >= 8 && fault.at_request < 56);
            }
            let no_router = ChaosSchedule::from_seed(seed, 5, 64, false);
            assert!(!no_router.kills_a_router());
        }
    }
}
