//! Serial-vs-parallel bit-equality of full DiffTune runs.
//!
//! The training engine reduces per-sample gradients in fixed sample order
//! (`difftune_tensor::Batch`), so a run's learned table, losses, and
//! surrogate weights must be **bit-identical** for every thread count. These
//! tests drive the whole pipeline (dataset generation → surrogate fit →
//! table optimization) for both simulator families at smoke scale and
//! compare a one-thread run against a multi-thread run bit for bit.
//!
//! CI's `determinism` job runs this suite twice — `DIFFTUNE_THREADS=1` and
//! `DIFFTUNE_THREADS=4` — which selects the parallel side's widths here:
//! `=1` compares the serial baseline against 2-worker runs, `=N` against
//! `N`-worker runs, and unset covers both 2 and 4. The knob therefore
//! varies the worker widths under test; the two CI legs exercise disjoint
//! width sets rather than repeating one comparison.

use difftune_repro::bhive::{CorpusConfig, Dataset};
use difftune_repro::core::{
    threads_from_env, DiffTuneBuilder, DiffTuneConfig, DiffTuneResult, ParamSpec, SurrogateKind,
};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::sim::{McaSimulator, Simulator, UopSimulator};
use difftune_repro::surrogate::{train::TrainConfig, FeatureMlpConfig};

/// The worker widths compared against the one-thread baseline:
/// `DIFFTUNE_THREADS` when it names a parallel width, 2 when it pins one
/// thread (so the `=1` CI leg still buys coverage), and both 2 and 4 when
/// unset.
fn parallel_widths() -> Vec<usize> {
    match threads_from_env() {
        Ok(0) => vec![2, 4],
        Ok(1) => vec![2],
        Ok(n) => vec![n],
        Err(error) => panic!("invalid DIFFTUNE_THREADS: {error}"),
    }
}

fn smoke_config(seed: u64, threads: usize) -> DiffTuneConfig {
    DiffTuneConfig {
        surrogate: SurrogateKind::Mlp(FeatureMlpConfig {
            hidden_dim: 24,
            seed,
            ..FeatureMlpConfig::default()
        }),
        simulated_multiplier: 4.0,
        max_simulated: 600,
        surrogate_train: TrainConfig {
            epochs: 2,
            batch_size: 32,
            threads,
            ..TrainConfig::default()
        },
        table_learning_rate: 0.1,
        table_epochs: 2,
        table_batch_size: 32,
        clamp_to_sampling: true,
        seed,
        threads,
    }
}

fn run(simulator: &dyn Simulator, spec: &ParamSpec, seed: u64, threads: usize) -> DiffTuneResult {
    let dataset = Dataset::build(
        Microarch::Haswell,
        &CorpusConfig {
            num_blocks: 300,
            seed,
            ..CorpusConfig::default()
        },
    );
    let train: Vec<_> = dataset
        .train()
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect();
    DiffTuneBuilder::new(smoke_config(seed, threads))
        .build(simulator, spec, &default_params(Microarch::Haswell), &train)
        .expect("inputs are valid")
        .run_to_completion()
        .expect("the run completes")
}

fn assert_bit_identical(serial: &DiffTuneResult, parallel: &DiffTuneResult, threads: usize) {
    assert_eq!(
        serial.learned, parallel.learned,
        "learned table diverged with {threads} threads"
    );
    assert_eq!(
        serial.initial, parallel.initial,
        "initial table diverged with {threads} threads"
    );
    let bits = |losses: &[f64]| -> Vec<u64> { losses.iter().map(|l| l.to_bits()).collect() };
    assert_eq!(
        bits(&serial.table_losses),
        bits(&parallel.table_losses),
        "table losses diverged with {threads} threads"
    );
    assert_eq!(
        bits(&serial.surrogate_report.epoch_losses),
        bits(&parallel.surrogate_report.epoch_losses),
        "surrogate losses diverged with {threads} threads"
    );
    for ((_, name, serial_weights), (_, _, parallel_weights)) in serial
        .surrogate
        .params()
        .iter()
        .zip(parallel.surrogate.params().iter())
    {
        let serial_bits: Vec<u32> = serial_weights.data().iter().map(|v| v.to_bits()).collect();
        let parallel_bits: Vec<u32> = parallel_weights
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            serial_bits, parallel_bits,
            "surrogate weight {name} diverged with {threads} threads"
        );
    }
}

#[test]
fn mca_pipeline_is_bit_identical_across_thread_counts() {
    let simulator = McaSimulator::default();
    let spec = ParamSpec::llvm_mca();
    let serial = run(&simulator, &spec, 11, 1);
    for threads in parallel_widths() {
        let parallel = run(&simulator, &spec, 11, threads);
        assert_bit_identical(&serial, &parallel, threads);
    }
}

#[test]
fn uop_pipeline_is_bit_identical_across_thread_counts() {
    let simulator = UopSimulator::default();
    let spec = ParamSpec::llvm_sim();
    let serial = run(&simulator, &spec, 5, 1);
    for threads in parallel_widths() {
        let parallel = run(&simulator, &spec, 5, threads);
        assert_bit_identical(&serial, &parallel, threads);
    }
}
