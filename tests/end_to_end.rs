//! End-to-end DiffTune runs at smoke scale.

use difftune_repro::bhive::{CorpusConfig, Dataset};
use difftune_repro::core::{DiffTuneBuilder, DiffTuneConfig, ParamSpec, SurrogateKind};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::sim::{McaSimulator, Simulator, UopSimulator};
use difftune_repro::surrogate::{train::TrainConfig, IthemalConfig};

fn smoke_config(seed: u64) -> DiffTuneConfig {
    // A scaled-down version of the configuration the benchmark harness uses:
    // the LSTM surrogate attributes parameter effects to individual opcodes,
    // which the pooled feature-MLP surrogate cannot do reliably.
    DiffTuneConfig {
        surrogate: SurrogateKind::Lstm(IthemalConfig {
            embed_dim: 16,
            hidden_dim: 32,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed,
        }),
        simulated_multiplier: 6.0,
        max_simulated: 6_000,
        surrogate_train: TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
        table_epochs: 2,
        table_batch_size: 64,
        // The paper's table learning rate (0.05) assumes a full-size training
        // set; at this smoke scale the table only sees ~30 optimizer steps, so
        // a larger step size is needed to cover the same distance.
        table_learning_rate: 0.1,
        seed,
        ..DiffTuneConfig::default()
    }
}

#[test]
fn difftune_beats_its_random_initialization_on_haswell() {
    let uarch = Microarch::Haswell;
    let dataset = Dataset::build(
        uarch,
        &CorpusConfig {
            num_blocks: 1200,
            seed: 21,
            ..CorpusConfig::default()
        },
    );
    let simulator = McaSimulator::default();
    let defaults = default_params(uarch);
    let train: Vec<_> = dataset
        .train()
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect();

    let result = DiffTuneBuilder::new(smoke_config(21))
        .build(&simulator, &ParamSpec::llvm_mca(), &defaults, &train)
        .expect("inputs are valid")
        .run_to_completion()
        .expect("the run completes");

    let test = dataset.test();
    let test_blocks: Vec<_> = test.iter().map(|r| r.block.clone()).collect();
    let (initial_error, _) = Dataset::evaluate_predictions(
        &test,
        &simulator.predict_batch(&result.initial, &test_blocks),
    );
    let (learned_error, learned_tau) = Dataset::evaluate_predictions(
        &test,
        &simulator.predict_batch(&result.learned, &test_blocks),
    );

    // The random initialization sits around the paper's "random table" error
    // band; training the table through the surrogate must recover a large part
    // of that gap. (The full-scale version of this check is the Table IV
    // benchmark, where the learned table matches or beats the defaults.)
    assert!(
        learned_error < initial_error,
        "learned ({learned_error}) must improve on the random initialization ({initial_error})"
    );
    assert!(
        learned_error < 1.2,
        "learned error should approach the default band, got {learned_error}"
    );
    assert!(
        learned_tau > 0.3,
        "learned parameters should preserve ranking, got {learned_tau}"
    );
}

#[test]
fn difftune_learns_the_uop_simulator_too() {
    // Appendix A: the same implementation drives the llvm_sim-style simulator.
    let uarch = Microarch::Haswell;
    let dataset = Dataset::build(
        uarch,
        &CorpusConfig {
            num_blocks: 500,
            seed: 8,
            ..CorpusConfig::default()
        },
    );
    let simulator = UopSimulator::default();
    let defaults = default_params(uarch);
    let train: Vec<_> = dataset
        .train()
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect();

    let result = DiffTuneBuilder::new(smoke_config(8))
        .build(&simulator, &ParamSpec::llvm_sim(), &defaults, &train)
        .expect("inputs are valid")
        .run_to_completion()
        .expect("the run completes");

    // The spec freezes everything except WriteLatency and PortMap.
    assert_eq!(result.learned.dispatch_width, defaults.dispatch_width);
    assert_eq!(
        result.learned.reorder_buffer_size,
        defaults.reorder_buffer_size
    );
    for (learned, default) in result.learned.per_inst.iter().zip(&defaults.per_inst) {
        assert_eq!(learned.num_micro_ops, default.num_micro_ops);
        assert_eq!(learned.read_advance_cycles, default.read_advance_cycles);
    }

    let test = dataset.test();
    let test_blocks: Vec<_> = test.iter().map(|r| r.block.clone()).collect();
    let (initial_error, _) = Dataset::evaluate_predictions(
        &test,
        &simulator.predict_batch(&result.initial, &test_blocks),
    );
    let (learned_error, _) = Dataset::evaluate_predictions(
        &test,
        &simulator.predict_batch(&result.learned, &test_blocks),
    );
    assert!(
        learned_error <= initial_error * 1.1,
        "learned {learned_error} vs initial {initial_error}"
    );
}

#[test]
fn learned_tables_respect_all_integer_constraints() {
    let uarch = Microarch::IvyBridge;
    let dataset = Dataset::build(
        uarch,
        &CorpusConfig {
            num_blocks: 400,
            seed: 3,
            ..CorpusConfig::default()
        },
    );
    let simulator = McaSimulator::default();
    let defaults = default_params(uarch);
    let train: Vec<_> = dataset
        .train()
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect();
    let result = DiffTuneBuilder::new(smoke_config(3))
        .build(&simulator, &ParamSpec::llvm_mca(), &defaults, &train)
        .expect("inputs are valid")
        .run_to_completion()
        .expect("the run completes");

    assert!(result.learned.dispatch_width >= 1);
    assert!(result.learned.reorder_buffer_size >= 1);
    for entry in &result.learned.per_inst {
        assert!(entry.num_micro_ops >= 1, "NumMicroOps lower bound violated");
    }
    assert_eq!(result.learned.num_opcodes(), defaults.num_opcodes());
}
