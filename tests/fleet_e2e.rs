//! Fleet-level end-to-end tests: multi-router deployments, rolling
//! restarts, request coalescing, and the deterministic chaos harness.
//!
//! `tests/router_e2e.rs` proves determinism invariant #6 for one router;
//! this suite extends it to the full fleet story. Because the hash ring is
//! a pure function of `(upstream addresses, vnodes)`, N shared-nothing
//! routers over the same upstream set agree on every routing decision with
//! no coordination — so `/predict` bytes must be identical through *any*
//! router, while a rolling restart is in flight, and across a scripted
//! chaos schedule (`tests/chaos/mod.rs`) that kills an upstream, corrupts
//! artifacts, and kills a router mid-sequence. The chaos schedules are
//! seeded and replay bit-identically, which makes every failure in this
//! file reproducible from its test name alone.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use difftune_bench::record::{fingerprint_table, MatrixRecord, MATRIX_SCHEMA};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::sim::SimParams;
use difftune_router::server::{spawn_router, RouterConfig};
use difftune_router::RouterHandle;
use difftune_serve::backend::{BackendRegistry, ReloadSpec};
use difftune_serve::client::HttpClient;
use difftune_serve::server::{spawn, ServeConfig, ServerHandle};

#[path = "chaos/mod.rs"]
mod chaos;

use chaos::{ChaosSchedule, FaultKind};

/// A fresh per-test artifact directory under the temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftune-fleet-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// A learned-looking table: the Haswell defaults with a deterministic nudge.
fn perturbed_table(nudge: u32) -> SimParams {
    let mut table = default_params(Microarch::Haswell);
    table.per_inst[3].write_latency += nudge;
    table.per_inst[11].port_map[1] += nudge;
    table.dispatch_width += 1;
    table
}

/// Writes a fingerprint-consistent `mca:haswell:llvm_mca` cell into `dir`.
fn write_matrix_cell(dir: &Path, nudge: u32) -> SimParams {
    let table = perturbed_table(nudge);
    let record = MatrixRecord {
        schema: MATRIX_SCHEMA.to_string(),
        cell: "mca:haswell:llvm_mca".to_string(),
        simulator: "mca".to_string(),
        uarch: "haswell".to_string(),
        spec: "llvm_mca".to_string(),
        scale: "smoke".to_string(),
        seed: 7,
        train_blocks: 1,
        heldout_blocks: 1,
        simulated_samples: 1,
        num_learned_parameters: 1,
        default_mape: 0.3,
        default_tau: 0.7,
        learned_mape: 0.25,
        learned_tau: 0.75,
        surrogate_mape: None,
        surrogate_tau: None,
        surrogate_vs_sim_mape: None,
        surrogate_vs_sim_tau: None,
        surrogate_fingerprint: None,
        surrogate_blocks_per_second: None,
        simulator_blocks_per_second: None,
        by_category: Vec::new(),
        table_fingerprint: fingerprint_table(&table),
        learned_table: table.to_flat(),
    };
    fs::write(dir.join(record.file_name()), record.to_json()).expect("record writes");
    table
}

/// One upstream: defaults plus the matrix cell in `dir`, reloadable from
/// `dir`, with a short idle timeout so shutdowns never wait on the routers'
/// pooled keep-alive connections.
fn spawn_upstream(dir: &Path) -> ServerHandle {
    let mut registry = BackendRegistry::with_defaults();
    registry.add_matrix_dir(dir).expect("matrix dir loads");
    spawn(
        ServeConfig {
            shards: 2,
            read_timeout: Duration::from_millis(300),
            reload_spec: Some(ReloadSpec {
                defaults: true,
                table_dirs: vec![dir.to_path_buf()],
                checkpoints: Vec::new(),
                error_budget: 0.0,
                cell_budgets: Vec::new(),
            }),
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("upstream binds an ephemeral port")
}

/// A router over the given upstream handles, tuned for fast tests.
fn spawn_fleet_router(upstreams: &[ServerHandle]) -> RouterHandle {
    spawn_router(RouterConfig {
        upstreams: upstreams
            .iter()
            .map(|handle| handle.addr().to_string())
            .collect(),
        read_timeout: Duration::from_millis(300),
        upstream_timeout: Duration::from_secs(5),
        health_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("router binds an ephemeral port")
}

/// The request sequence: every backend source, singles and batches, plus a
/// malformed body (error bytes must round-trip through the proxy too),
/// cycled out to `total` requests.
fn request_sequence(total: usize) -> Vec<&'static str> {
    let bodies = [
        r#"{"block": "addq %rax, %rbx"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "default"}"#,
        r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2", "xorl %eax, %eax"], "source": "matrix"}"#,
        r#"{"block": "addq %rbx, %rcx", "sim": "uop", "uarch": "skylake"}"#,
        r#"{"blocks": ["mulsd %xmm1, %xmm2"], "sim": "mca", "uarch": "zen2"}"#,
        r#"{"block": "frobnicate %zz9"}"#,
    ];
    (0..total).map(|i| bodies[i % bodies.len()]).collect()
}

/// Posts every body in order; returns `(status, body)` pairs so error
/// responses are compared byte-for-byte as well.
fn post_all(client: &mut HttpClient, bodies: &[&str]) -> Vec<(u16, String)> {
    bodies
        .iter()
        .map(|body| {
            let response = client
                .post_json("/predict", body)
                .expect("request succeeds");
            (response.status, response.body_text())
        })
        .collect()
}

/// The canonical stream from one direct `difftune-serve`, the reference
/// every routed stream must equal byte-for-byte.
fn direct_reference(dir: &Path, bodies: &[&str]) -> Vec<(u16, String)> {
    let handle = spawn_upstream(dir);
    let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
    let reference = post_all(&mut client, bodies);
    drop(client);
    handle.shutdown();
    reference
}

#[test]
fn every_router_in_a_fleet_serves_byte_identical_predictions() {
    let dir = fresh_dir("any-router");
    write_matrix_cell(&dir, 2);
    let bodies = request_sequence(12);
    let reference = direct_reference(&dir, &bodies);
    assert!(reference.iter().any(|(status, _)| *status != 200));

    // 3 upstreams, 3 shared-nothing routers over the same addresses.
    let upstreams: Vec<ServerHandle> = (0..3).map(|_| spawn_upstream(&dir)).collect();
    let routers: Vec<RouterHandle> = (0..3).map(|_| spawn_fleet_router(&upstreams)).collect();

    for (index, router) in routers.iter().enumerate() {
        let mut client = HttpClient::connect(&router.addr().to_string()).expect("connects");
        let cold = post_all(&mut client, &bodies);
        assert_eq!(
            cold, reference,
            "router {index}: routed bytes diverged from direct serving"
        );
        let warm = post_all(&mut client, &bodies);
        assert_eq!(warm, reference, "router {index}: warm caches changed bytes");
        // The /v1 alias proxies byte-identically through any replica too.
        let v1: Vec<(u16, String)> = bodies
            .iter()
            .map(|body| {
                let response = client
                    .post_json("/v1/predict", body)
                    .expect("request succeeds");
                (response.status, response.body_text())
            })
            .collect();
        assert_eq!(v1, reference, "router {index}: /v1/predict diverged");
    }

    for router in routers {
        router.shutdown();
    }
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_rollout_under_load_completes_with_zero_failed_requests() {
    let dir = fresh_dir("rollout");
    write_matrix_cell(&dir, 2);
    let bodies = request_sequence(6);
    let reference = direct_reference(&dir, &bodies);

    let upstreams: Vec<ServerHandle> = (0..3).map(|_| spawn_upstream(&dir)).collect();
    let router = spawn_fleet_router(&upstreams);
    let router_addr = router.addr().to_string();

    // Closed-loop traffic hammers the router for the whole rollout; every
    // response must be a 200-or-canonical-error byte-identical to direct
    // serving — zero failures, zero divergence.
    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    let rollout_body = std::thread::scope(|scope| {
        let traffic: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = HttpClient::connect(&router_addr).expect("traffic connects");
                    while !stop.load(Ordering::Relaxed) {
                        for (index, body) in bodies.iter().enumerate() {
                            let response = client
                                .post_json("/predict", body)
                                .expect("request survives the rollout");
                            assert_eq!(
                                (response.status, response.body_text()),
                                reference[index].clone(),
                                "request diverged mid-rollout"
                            );
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        // Let the traffic warm up, then roll the whole fleet.
        while served.load(Ordering::Relaxed) < bodies.len() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut client = HttpClient::connect(&router_addr).expect("connects");
        let response = client
            .request("POST", "/rollout", b"")
            .expect("rollout answers");
        assert_eq!(response.status, 200, "{}", response.body_text());
        stop.store(true, Ordering::Relaxed);
        for handle in traffic {
            handle.join().expect("traffic thread survives");
        }
        response.body_text()
    });

    assert!(
        rollout_body.contains("\"status\":\"completed\""),
        "{rollout_body}"
    );
    for upstream in &upstreams {
        let addr = upstream.addr().to_string();
        assert!(
            rollout_body.contains(&addr),
            "every upstream reports progress: {rollout_body}"
        );
    }
    assert_eq!(
        rollout_body.matches("\"status\":\"ok\"").count(),
        3,
        "all three upstreams rolled: {rollout_body}"
    );
    assert!(
        rollout_body.contains("\"quiesced\"") && rollout_body.contains("\"verified\""),
        "structured per-upstream steps: {rollout_body}"
    );

    // The fleet is fully back in rotation and still byte-identical.
    let mut client = HttpClient::connect(&router_addr).expect("connects");
    wait_for_healthy_upstreams(&mut client, 3);
    assert_eq!(post_all(&mut client, &bodies), reference);

    drop(client);
    router.shutdown();
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

/// Polls `/metrics` until the router reports `count` healthy upstreams.
fn wait_for_healthy_upstreams(client: &mut HttpClient, count: usize) {
    let needle = format!("difftune_router_healthy_upstreams {count}");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = client.get("/metrics").expect("answers").body_text();
        if metrics.contains(&needle) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the router never reported {count} healthy upstreams: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Overwrites every artifact in `dir` with garbage, so the next strict
/// reload must refuse and keep the old registry serving.
fn corrupt_artifacts(dir: &Path) {
    for entry in fs::read_dir(dir).expect("artifact dir lists") {
        let path = entry.expect("artifact dir lists").path();
        if path.is_file() {
            fs::write(&path, b"this is not a difftune artifact").expect("corruption writes");
        }
    }
}

#[test]
fn an_aborted_rollout_leaves_every_upstream_healthy_and_serving() {
    let dir = fresh_dir("abort");
    write_matrix_cell(&dir, 2);
    let bodies = request_sequence(6);
    let reference = direct_reference(&dir, &bodies);

    let upstreams: Vec<ServerHandle> = (0..3).map(|_| spawn_upstream(&dir)).collect();
    let router = spawn_fleet_router(&upstreams);
    let mut client = HttpClient::connect(&router.addr().to_string()).expect("connects");
    assert_eq!(post_all(&mut client, &bodies), reference);

    // Corrupt the artifacts: the first upstream's reload refuses (strict
    // reload keeps its old registry), and the rollout must abort there —
    // never touching the remaining upstreams.
    corrupt_artifacts(&dir);
    let response = client
        .request("POST", "/rollout", b"")
        .expect("rollout answers");
    let body = response.body_text();
    assert_eq!(response.status, 502, "{body}");
    assert!(body.contains("\"status\":\"aborted\""), "{body}");
    assert!(body.contains("reload refused"), "{body}");
    assert_eq!(
        body.matches("\"status\":\"skipped\"").count(),
        2,
        "the rollout stopped at the first failure: {body}"
    );

    // Abort-on-first-failure leaves the fleet serving: all three upstreams
    // stay in rotation and the bytes never changed.
    wait_for_healthy_upstreams(&mut client, 3);
    assert_eq!(
        post_all(&mut client, &bodies),
        reference,
        "an aborted rollout changed routed bytes"
    );

    drop(client);
    router.shutdown();
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

/// The in-process fleet a chaos schedule runs against. Killed upstreams
/// and routers leave `None` holes so indices stay stable mid-schedule.
struct ChaosFleet {
    dir: PathBuf,
    upstreams: Vec<Option<ServerHandle>>,
    routers: Vec<Option<RouterHandle>>,
    active_router: usize,
}

impl ChaosFleet {
    fn router_addr(&self) -> String {
        self.routers[self.active_router]
            .as_ref()
            .expect("the active router is alive")
            .addr()
            .to_string()
    }

    /// Applies one fault with its in-process analog. `StallUpstream` has no
    /// in-process analog (threads cannot be SIGSTOPped); seeds are chosen
    /// below so schedules never draw it — the loadtest binary covers stalls
    /// against real child processes.
    fn apply(&mut self, kind: FaultKind, client: &mut HttpClient) {
        match kind {
            FaultKind::KillUpstream => {
                let victim = self
                    .upstreams
                    .iter()
                    .position(Option::is_some)
                    .expect("an upstream is still alive");
                self.upstreams[victim]
                    .take()
                    .expect("victim is alive")
                    .shutdown();
            }
            FaultKind::StallUpstream => {
                unreachable!("stall has no in-process analog; seeds exclude it")
            }
            FaultKind::CorruptReload => {
                corrupt_artifacts(&self.dir);
                // The broadcast reload must refuse on every live upstream
                // and keep the old registries serving.
                let response = client
                    .request("POST", "/reload", b"")
                    .expect("reload answers");
                assert_ne!(
                    response.status,
                    200,
                    "a corrupt reload must refuse: {}",
                    response.body_text()
                );
            }
            FaultKind::Rollout => {
                // After a corrupt fault the rollout aborts; before one it
                // completes. Either way it must answer and leave the fleet
                // serving — the byte assertions below are the real check.
                client
                    .request("POST", "/rollout", b"")
                    .expect("rollout answers");
            }
            FaultKind::KillRouter => {
                self.routers[self.active_router]
                    .take()
                    .expect("active router is alive")
                    .shutdown();
                self.active_router = self
                    .routers
                    .iter()
                    .position(Option::is_some)
                    .expect("a router survives");
                *client = HttpClient::connect(&self.router_addr()).expect("reconnects");
            }
        }
    }
}

#[test]
fn a_seeded_chaos_schedule_replays_byte_identically() {
    let total = 24usize;
    // The smallest seed whose 4-event draw has no stall (no in-process
    // analog) and at most one upstream kill — deterministic, so the chosen
    // schedule is as reproducible as a hard-coded one.
    let seed = (0u64..)
        .find(|&seed| {
            ChaosSchedule::from_seed(seed, 4, total, true)
                .faults
                .iter()
                .all(|fault| fault.kind != FaultKind::StallUpstream)
        })
        .expect("some seed avoids stalls");
    let schedule = ChaosSchedule::from_seed(seed, 4, total, true);

    // The schedule replays bit-identically: its canonical spec reparses to
    // the same faults, twice.
    let reparsed =
        ChaosSchedule::parse(&schedule.spec, total, true).expect("canonical spec parses");
    assert_eq!(reparsed.faults, schedule.faults);
    assert_eq!(
        ChaosSchedule::from_seed(seed, 4, total, true).faults,
        schedule.faults
    );

    let dir = fresh_dir("chaos");
    write_matrix_cell(&dir, 2);
    let bodies = request_sequence(total);
    let reference = direct_reference(&dir, &bodies);

    let mut fleet = ChaosFleet {
        upstreams: (0..3).map(|_| Some(spawn_upstream(&dir))).collect(),
        routers: Vec::new(),
        active_router: 0,
        dir: dir.clone(),
    };
    fleet.routers = (0..2)
        .map(|_| {
            let upstreams: Vec<String> = fleet
                .upstreams
                .iter()
                .map(|slot| slot.as_ref().expect("alive").addr().to_string())
                .collect();
            Some(
                spawn_router(RouterConfig {
                    upstreams,
                    read_timeout: Duration::from_millis(300),
                    upstream_timeout: Duration::from_secs(5),
                    health_interval: Duration::from_millis(50),
                    ..RouterConfig::default()
                })
                .expect("router binds"),
            )
        })
        .collect();

    let mut client = HttpClient::connect(&fleet.router_addr()).expect("connects");

    // Clean baseline through the router, then the same requests with the
    // schedule's faults injected at their request boundaries. Invariant #6
    // in scripted form: pre-fault and post-fault canonical bytes are the
    // same bytes, so the chaos pass must equal both the baseline and the
    // direct reference.
    let baseline = post_all(&mut client, &bodies);
    assert_eq!(baseline, reference);

    let mut streamed: Vec<(u16, String)> = Vec::with_capacity(total);
    let mut next = 0usize;
    for fault in &schedule.faults {
        let boundary = (fault.at_request + 1).min(total);
        if boundary > next {
            streamed.extend(post_all(&mut client, &bodies[next..boundary]));
            next = boundary;
        }
        fleet.apply(fault.kind, &mut client);
    }
    if next < total {
        streamed.extend(post_all(&mut client, &bodies[next..]));
    }
    assert_eq!(
        streamed, reference,
        "chaos schedule [{}] (seed {seed}) changed client-visible bytes",
        schedule.spec
    );

    // A full replay over the degraded fleet is still byte-identical.
    let replay = post_all(&mut client, &bodies);
    assert_eq!(
        replay, reference,
        "the post-chaos replay diverged under schedule [{}]",
        schedule.spec
    );

    drop(client);
    for router in fleet.routers.iter_mut().filter_map(Option::take) {
        router.shutdown();
    }
    for upstream in fleet.upstreams.iter_mut().filter_map(Option::take) {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn identical_inflight_requests_coalesce_into_one_upstream_call() {
    let dir = fresh_dir("coalesce");
    write_matrix_cell(&dir, 2);

    let upstreams: Vec<ServerHandle> = (0..2).map(|_| spawn_upstream(&dir)).collect();
    let router = spawn_fleet_router(&upstreams);
    let router_addr = router.addr().to_string();
    let mut metrics_client = HttpClient::connect(&router_addr).expect("connects");

    // Rounds of C connections racing one *cold* body each (a barrier aligns
    // the sends), until the router reports a coalesced request. Responses
    // across colliding connections must agree byte-for-byte every round.
    let connections = 4usize;
    let mut coalesced = 0u64;
    for round in 0..200usize {
        let body = format!(
            r#"{{"blocks": ["addq ${round}, %rbx", "mulsd %xmm1, %xmm2", "addq ${round}, %rcx", "xorl %eax, %eax"], "source": "matrix"}}"#
        );
        let barrier = Barrier::new(connections);
        let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|_| {
                    let body = &body;
                    let barrier = &barrier;
                    let router_addr = &router_addr;
                    scope.spawn(move || {
                        let mut client = HttpClient::connect(router_addr).expect("connects");
                        barrier.wait();
                        let response = client.post_json("/predict", body).expect("answers");
                        (response.status, response.body_text())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("collider survives"))
                .collect()
        });
        for response in &responses[1..] {
            assert_eq!(
                response, &responses[0],
                "colliding connections saw different bytes in round {round}"
            );
        }
        assert_eq!(responses[0].0, 200);

        let metrics = metrics_client.get("/metrics").expect("answers").body_text();
        coalesced = metrics
            .lines()
            .find_map(|line| line.strip_prefix("difftune_router_coalesced_total "))
            .and_then(|value| value.trim().parse().ok())
            .expect("the router exports difftune_router_coalesced_total");
        if coalesced > 0 {
            break;
        }
    }
    assert!(
        coalesced > 0,
        "200 rounds of {connections} colliding connections never coalesced"
    );

    drop(metrics_client);
    router.shutdown();
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}
