//! End-to-end tests for `difftune-router`: determinism invariant #6.
//!
//! Routing changes *where* a `/predict` request is answered, never *what*
//! the answer is. The suite asserts cross-process byte-identity: the
//! response stream through a router fronting 1, 2, or 4 upstreams equals
//! the stream from a direct `difftune-serve` — before and after killing an
//! upstream mid-sequence, and after a hot table reload broadcast through
//! the router. It also covers the router's aggregation surface (`/metrics`,
//! `/backends`), the `/route` debug endpoint, and failover accounting.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use difftune_bench::record::{fingerprint_table, MatrixRecord, MATRIX_SCHEMA};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::sim::SimParams;
use difftune_repro::surrogate::{
    FeatureMlpConfig, FeatureMlpModel, ModelConfig, SurrogateArtifact,
};
use difftune_router::server::{spawn_router, RouterConfig};
use difftune_serve::backend::{BackendRegistry, ReloadSpec};
use difftune_serve::client::HttpClient;
use difftune_serve::server::{spawn, ServeConfig, ServerHandle};
use serde::Value;

/// A fresh per-test artifact directory under the temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftune-router-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// A learned-looking table: the Haswell defaults with a deterministic nudge.
fn perturbed_table(nudge: u32) -> SimParams {
    let mut table = default_params(Microarch::Haswell);
    table.per_inst[3].write_latency += nudge;
    table.per_inst[11].port_map[1] += nudge;
    table.dispatch_width += 1;
    table
}

/// Writes a fingerprint-consistent `mca:haswell:llvm_mca` cell into `dir`.
fn write_matrix_cell(dir: &Path, nudge: u32) -> SimParams {
    let table = perturbed_table(nudge);
    let record = MatrixRecord {
        schema: MATRIX_SCHEMA.to_string(),
        cell: "mca:haswell:llvm_mca".to_string(),
        simulator: "mca".to_string(),
        uarch: "haswell".to_string(),
        spec: "llvm_mca".to_string(),
        scale: "smoke".to_string(),
        seed: 7,
        train_blocks: 1,
        heldout_blocks: 1,
        simulated_samples: 1,
        num_learned_parameters: 1,
        default_mape: 0.3,
        default_tau: 0.7,
        learned_mape: 0.25,
        learned_tau: 0.75,
        surrogate_mape: None,
        surrogate_tau: None,
        surrogate_vs_sim_mape: None,
        surrogate_vs_sim_tau: None,
        surrogate_fingerprint: None,
        surrogate_blocks_per_second: None,
        simulator_blocks_per_second: None,
        by_category: Vec::new(),
        table_fingerprint: fingerprint_table(&table),
        learned_table: table.to_flat(),
    };
    fs::write(dir.join(record.file_name()), record.to_json()).expect("record writes");
    table
}

/// Writes a `SURROGATE_*.json` artifact for `mca:haswell:llvm_mca` into
/// `dir` (a small feature-MLP over a perturbed table), so upstreams also
/// serve a `surrogate:` backend.
fn write_surrogate_artifact(dir: &Path) -> SurrogateArtifact {
    let config = FeatureMlpConfig {
        hidden_dim: 8,
        parameter_inputs: true,
        seed: 5,
    };
    let model = FeatureMlpModel::new(config);
    let table = perturbed_table(3);
    let artifact = SurrogateArtifact::new(
        "mca:haswell:llvm_mca",
        ModelConfig::Mlp(config),
        &model,
        &table,
    );
    fs::write(dir.join(artifact.file_name()), artifact.to_json()).expect("artifact writes");
    artifact
}

/// One upstream: defaults plus the matrix cell in `dir`, reloadable from
/// `dir`, with a short idle timeout so shutdowns never wait on the router's
/// pooled keep-alive connections.
fn spawn_upstream(dir: &Path) -> ServerHandle {
    let mut registry = BackendRegistry::with_defaults();
    registry.add_matrix_dir(dir).expect("matrix dir loads");
    spawn(
        ServeConfig {
            shards: 2,
            read_timeout: Duration::from_millis(300),
            reload_spec: Some(ReloadSpec {
                defaults: true,
                table_dirs: vec![dir.to_path_buf()],
                checkpoints: Vec::new(),
                error_budget: 0.0,
                cell_budgets: Vec::new(),
            }),
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("upstream binds an ephemeral port")
}

/// A router over the given upstream handles, tuned for fast tests.
fn spawn_fleet_router(upstreams: &[ServerHandle]) -> difftune_router::RouterHandle {
    spawn_router(RouterConfig {
        upstreams: upstreams
            .iter()
            .map(|handle| handle.addr().to_string())
            .collect(),
        read_timeout: Duration::from_millis(300),
        upstream_timeout: Duration::from_secs(5),
        health_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("router binds an ephemeral port")
}

/// The request sequence: every backend source, singles and batches, plus a
/// malformed body (error bytes must round-trip through the proxy too).
fn request_bodies() -> Vec<&'static str> {
    vec![
        r#"{"block": "addq %rax, %rbx"}"#,
        r#"{"block": "addq %rax, %rbx", "source": "default"}"#,
        r#"{"blocks": ["addq %rax, %rbx", "mulsd %xmm1, %xmm2", "xorl %eax, %eax"], "source": "matrix"}"#,
        r#"{"block": "addq %rbx, %rcx", "sim": "uop", "uarch": "skylake"}"#,
        r#"{"blocks": ["mulsd %xmm1, %xmm2"], "sim": "mca", "uarch": "zen2"}"#,
        // The surrogate fast path routes like any other backend id.
        r#"{"block": "addq %rax, %rbx", "source": "surrogate"}"#,
        r#"{"block": "frobnicate %zz9"}"#,
    ]
}

/// Posts every body in order; returns `(status, body)` pairs so error
/// responses are compared byte-for-byte as well.
fn post_all(client: &mut HttpClient, bodies: &[&str]) -> Vec<(u16, String)> {
    bodies
        .iter()
        .map(|body| {
            let response = client
                .post_json("/predict", body)
                .expect("request succeeds");
            (response.status, response.body_text())
        })
        .collect()
}

#[test]
fn routed_responses_are_byte_identical_to_direct_serving_across_fleet_sizes() {
    let dir = fresh_dir("identity");
    write_matrix_cell(&dir, 2);
    write_surrogate_artifact(&dir);
    let bodies = request_bodies();

    // The direct-serve reference stream.
    let reference = {
        let handle = spawn_upstream(&dir);
        let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let reference = post_all(&mut client, &bodies);
        drop(client);
        handle.shutdown();
        reference
    };
    assert!(reference.iter().any(|(status, _)| *status != 200));

    for fleet_size in [1usize, 2, 4] {
        let upstreams: Vec<ServerHandle> = (0..fleet_size).map(|_| spawn_upstream(&dir)).collect();
        let router = spawn_fleet_router(&upstreams);
        let mut client = HttpClient::connect(&router.addr().to_string()).expect("connects");

        let cold = post_all(&mut client, &bodies);
        assert_eq!(
            cold, reference,
            "{fleet_size} upstream(s): routed bytes diverged from direct serving"
        );
        let warm = post_all(&mut client, &bodies);
        assert_eq!(
            warm, reference,
            "{fleet_size} upstream(s): warm caches changed routed bytes"
        );

        // The /v1 alias proxies byte-identically too.
        let v1: Vec<(u16, String)> = bodies
            .iter()
            .map(|body| {
                let response = client
                    .post_json("/v1/predict", body)
                    .expect("request succeeds");
                (response.status, response.body_text())
            })
            .collect();
        assert_eq!(
            v1, reference,
            "{fleet_size} upstream(s): /v1/predict diverged from /predict"
        );

        drop(client);
        router.shutdown();
        for upstream in upstreams {
            upstream.shutdown();
        }
    }
    fs::remove_dir_all(&dir).ok();
}

/// Asks the router which upstream is primary for `body`.
fn primary_for(client: &mut HttpClient, body: &str) -> String {
    let response = client
        .request("POST", "/route", body.as_bytes())
        .expect("answers");
    assert_eq!(response.status, 200, "{}", response.body_text());
    serde_json::from_str_value(&response.body_text())
        .expect("/route answers JSON")
        .get("primary")
        .and_then(|primary| primary.as_str().map(String::from))
        .expect("a healthy ring names a primary")
}

#[test]
fn killing_the_primary_upstream_mid_sequence_keeps_bytes_identical() {
    let dir = fresh_dir("failover");
    write_matrix_cell(&dir, 2);
    write_surrogate_artifact(&dir);
    let bodies = request_bodies();

    let reference = {
        let handle = spawn_upstream(&dir);
        let mut client = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let reference = post_all(&mut client, &bodies);
        drop(client);
        handle.shutdown();
        reference
    };

    let mut upstreams: Vec<ServerHandle> = (0..2).map(|_| spawn_upstream(&dir)).collect();
    let router = spawn_fleet_router(&upstreams);
    let mut client = HttpClient::connect(&router.addr().to_string()).expect("connects");

    // Half the sequence against the full fleet…
    let split = bodies.len() / 2;
    let mut streamed = post_all(&mut client, &bodies[..split]);

    // …then the primary upstream for this stream dies mid-load.
    let victim = primary_for(&mut client, bodies[0]);
    let index = upstreams
        .iter()
        .position(|handle| handle.addr().to_string() == victim)
        .expect("the primary is one of ours");
    upstreams.remove(index).shutdown();

    // The rest of the sequence fails over and the bytes never change.
    streamed.extend(post_all(&mut client, &bodies[split..]));
    assert_eq!(
        streamed, reference,
        "a mid-sequence upstream kill changed routed bytes"
    );

    // A full replay against the reduced fleet is still byte-identical.
    let replay = post_all(&mut client, &bodies);
    assert_eq!(replay, reference, "the post-kill replay diverged");

    // The dead upstream leaves rotation (either a request failed over or
    // the health loop noticed first — both end with one healthy upstream).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = client.get("/metrics").expect("answers").body_text();
        assert!(
            metrics.contains("difftune_router_failovers_total"),
            "{metrics}"
        );
        if metrics.contains("difftune_router_healthy_upstreams 1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the router never took the killed upstream out of rotation: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    drop(client);
    router.shutdown();
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_broadcast_swaps_every_upstream_and_stays_byte_identical() {
    let dir = fresh_dir("reload");
    let old_table = write_matrix_cell(&dir, 2);
    write_surrogate_artifact(&dir);
    let bodies = request_bodies();

    let upstreams: Vec<ServerHandle> = (0..2).map(|_| spawn_upstream(&dir)).collect();
    let router = spawn_fleet_router(&upstreams);
    let mut client = HttpClient::connect(&router.addr().to_string()).expect("connects");

    let before = post_all(&mut client, &bodies);
    assert!(before[0].1.contains(&old_table.fingerprint_hex()));

    // A new learned table lands; one broadcast reloads the whole fleet.
    let new_table = write_matrix_cell(&dir, 9);
    let reloaded = client.request("POST", "/reload", b"").expect("answers");
    assert_eq!(reloaded.status, 200, "{}", reloaded.body_text());
    let text = reloaded.body_text();
    assert!(text.contains("\"status\":\"reloaded\""), "{text}");
    for upstream in &upstreams {
        assert!(
            text.contains(&upstream.addr().to_string()),
            "every upstream reports its reload: {text}"
        );
    }

    // After the reload the routed stream equals a direct post-reload serve.
    let reference = {
        let handle = spawn_upstream(&dir);
        let mut direct = HttpClient::connect(&handle.addr().to_string()).expect("connects");
        let reference = post_all(&mut direct, &bodies);
        drop(direct);
        handle.shutdown();
        reference
    };
    let after = post_all(&mut client, &bodies);
    assert_eq!(after, reference, "routed bytes diverged after the reload");
    assert!(after[0].1.contains(&new_table.fingerprint_hex()));
    assert_ne!(after[0].1, before[0].1, "the reload swapped the table");

    drop(client);
    router.shutdown();
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_aggregates_backends_and_metrics_and_explains_routes() {
    let dir = fresh_dir("aggregate");
    write_matrix_cell(&dir, 2);
    let artifact = write_surrogate_artifact(&dir);
    let upstreams: Vec<ServerHandle> = (0..2).map(|_| spawn_upstream(&dir)).collect();
    let router = spawn_fleet_router(&upstreams);
    let mut client = HttpClient::connect(&router.addr().to_string()).expect("connects");

    // /healthz reflects the fleet.
    let health = client.get("/healthz").expect("answers");
    assert_eq!(health.status, 200);
    assert!(health.body_text().contains("\"upstreams\":2"));

    // /backends is the union of every upstream's list, and the structured
    // entries (id/kind/fingerprint) survive aggregation intact.
    let backends = client.get("/backends").expect("answers").body_text();
    assert!(
        backends.contains("matrix:mca:haswell:llvm_mca"),
        "{backends}"
    );
    assert!(backends.contains("default:mca:haswell"), "{backends}");
    assert!(
        backends.contains("\"id\":\"surrogate:mca:haswell:llvm_mca\",\"kind\":\"surrogate\""),
        "{backends}"
    );
    assert!(
        backends.contains(&format!("\"fingerprint\":\"{}\"", artifact.fingerprint)),
        "{backends}"
    );
    let v1_backends = client.get("/v1/backends").expect("answers").body_text();
    assert_eq!(backends, v1_backends, "/v1/backends aliases /backends");

    // Two predictions, then /metrics: upstream samples are summed and the
    // router appends its own series.
    let body = r#"{"block": "addq %rax, %rbx", "source": "matrix"}"#;
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    assert_eq!(client.post_json("/predict", body).unwrap().status, 200);
    let metrics = client.get("/metrics").expect("answers").body_text();
    assert!(
        metrics.contains("difftune_predict_requests_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("difftune_router_requests_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("difftune_router_healthy_upstreams 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("difftune_router_proxied_total{upstream="),
        "{metrics}"
    );

    // /route explains the hash placement without proxying.
    let explained = client
        .request("POST", "/route", body.as_bytes())
        .expect("answers");
    assert_eq!(explained.status, 200);
    let value = serde_json::from_str_value(&explained.body_text()).expect("JSON");
    assert_eq!(
        value.get("backend").and_then(Value::as_str),
        Some("matrix:mca:haswell:llvm_mca"),
        "{}",
        explained.body_text()
    );
    let order = value
        .get("order")
        .and_then(Value::as_seq)
        .expect("an order list");
    assert_eq!(order.len(), 2, "both upstreams appear in failover order");

    drop(client);
    router.shutdown();
    for upstream in upstreams {
        upstream.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}
