//! Compiled-vs-taped bit-equality of full DiffTune runs.
//!
//! The compiled execution engine (`difftune_tensor::CompiledProgram`)
//! records one schedule per graph structure and replays samples against it;
//! the taped engine rebuilds an autodiff tape per sample. Both drive the
//! same fused kernels through the same deterministic reduction, so a full
//! pipeline run — dataset generation → surrogate fit → table optimization —
//! must produce **bit-identical** learned tables, losses, and surrogate
//! weights under either engine, at every thread count.
//!
//! CI's `determinism` job runs this suite in both its legs
//! (`DIFFTUNE_THREADS=1` and `=4`), so engine equality is enforced at
//! multiple worker widths.

use difftune_repro::bhive::{CorpusConfig, Dataset};
use difftune_repro::core::{
    threads_from_env, DiffTuneBuilder, DiffTuneConfig, DiffTuneResult, ParamSpec, SurrogateKind,
};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::sim::{McaSimulator, Simulator};
use difftune_repro::surrogate::{
    train::{Engine, TrainConfig},
    FeatureMlpConfig, IthemalConfig,
};

/// The worker width under test: `DIFFTUNE_THREADS` when set to a parallel
/// width, 2 when it pins one thread, and 2 when unset (the engines are
/// already compared serially by the tensor crate's unit tests).
fn parallel_width() -> usize {
    match threads_from_env() {
        Ok(0) | Ok(1) => 2,
        Ok(n) => n,
        Err(error) => panic!("invalid DIFFTUNE_THREADS: {error}"),
    }
}

fn smoke_config(
    surrogate: SurrogateKind,
    max_simulated: usize,
    seed: u64,
    threads: usize,
    engine: Engine,
) -> DiffTuneConfig {
    DiffTuneConfig {
        surrogate,
        simulated_multiplier: 4.0,
        max_simulated,
        surrogate_train: TrainConfig {
            epochs: 2,
            batch_size: 32,
            threads,
            engine,
            ..TrainConfig::default()
        },
        table_learning_rate: 0.1,
        table_epochs: 2,
        table_batch_size: 32,
        clamp_to_sampling: true,
        seed,
        threads,
    }
}

fn run(config: DiffTuneConfig, num_blocks: usize, seed: u64) -> DiffTuneResult {
    let simulator = McaSimulator::default();
    let dataset = Dataset::build(
        Microarch::Haswell,
        &CorpusConfig {
            num_blocks,
            seed,
            ..CorpusConfig::default()
        },
    );
    let train: Vec<_> = dataset
        .train()
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect();
    DiffTuneBuilder::new(config)
        .build(
            &simulator as &dyn Simulator,
            &ParamSpec::llvm_mca(),
            &default_params(Microarch::Haswell),
            &train,
        )
        .expect("inputs are valid")
        .run_to_completion()
        .expect("the run completes")
}

fn assert_bit_identical(taped: &DiffTuneResult, compiled: &DiffTuneResult, label: &str) {
    assert_eq!(
        taped.learned, compiled.learned,
        "learned table diverged across engines ({label})"
    );
    assert_eq!(
        taped.initial, compiled.initial,
        "initial table diverged across engines ({label})"
    );
    let bits = |losses: &[f64]| -> Vec<u64> { losses.iter().map(|l| l.to_bits()).collect() };
    assert_eq!(
        bits(&taped.table_losses),
        bits(&compiled.table_losses),
        "table losses diverged across engines ({label})"
    );
    assert_eq!(
        bits(&taped.surrogate_report.epoch_losses),
        bits(&compiled.surrogate_report.epoch_losses),
        "surrogate losses diverged across engines ({label})"
    );
    for ((_, name, taped_weights), (_, _, compiled_weights)) in taped
        .surrogate
        .params()
        .iter()
        .zip(compiled.surrogate.params().iter())
    {
        let taped_bits: Vec<u32> = taped_weights.data().iter().map(|v| v.to_bits()).collect();
        let compiled_bits: Vec<u32> = compiled_weights
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            taped_bits, compiled_bits,
            "surrogate weight {name} diverged across engines ({label})"
        );
    }
}

#[test]
fn mlp_pipeline_is_bit_identical_across_engines() {
    let threads = parallel_width();
    let surrogate = |seed: u64| {
        SurrogateKind::Mlp(FeatureMlpConfig {
            hidden_dim: 24,
            seed,
            ..FeatureMlpConfig::default()
        })
    };
    let taped = run(
        smoke_config(surrogate(13), 600, 13, threads, Engine::Taped),
        300,
        13,
    );
    let compiled = run(
        smoke_config(surrogate(13), 600, 13, threads, Engine::Compiled),
        300,
        13,
    );
    assert_bit_identical(&taped, &compiled, "mlp");

    // The compiled engine must also stay thread-count independent: a serial
    // compiled run reproduces the parallel compiled run bit for bit.
    let serial_compiled = run(
        smoke_config(surrogate(13), 600, 13, 1, Engine::Compiled),
        300,
        13,
    );
    assert_bit_identical(&serial_compiled, &compiled, "mlp, serial-vs-parallel");
}

#[test]
fn lstm_pipeline_is_bit_identical_across_engines() {
    // The LSTM surrogate exercises the fused LSTM-step and embedding-row
    // replay paths; a reduced scale keeps the double pipeline run fast.
    let threads = parallel_width();
    let surrogate = |seed: u64| {
        SurrogateKind::Lstm(IthemalConfig {
            embed_dim: 8,
            hidden_dim: 12,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed,
        })
    };
    let taped = run(
        smoke_config(surrogate(7), 150, 7, threads, Engine::Taped),
        80,
        7,
    );
    let compiled = run(
        smoke_config(surrogate(7), 150, 7, threads, Engine::Compiled),
        80,
        7,
    );
    assert_bit_identical(&taped, &compiled, "lstm");
}
