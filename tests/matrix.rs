//! Integration tests for the scenario-matrix runner: a 2-cell smoke matrix
//! end to end, byte-identical cell JSON across thread counts (the matrix
//! extension of the PR 3 determinism suite — CI runs this file under
//! `DIFFTUNE_THREADS=1` and `=4`), and kill/resume producing a bit-identical
//! `MATRIX_summary.json`.

use std::fs;
use std::path::{Path, PathBuf};

use difftune_bench::matrix::{run_matrix, CellKey, MatrixOptions};
use difftune_bench::record::{MatrixRecord, MatrixSummary, MATRIX_SCHEMA, MATRIX_SUMMARY_FILE};
use difftune_bench::Scale;
use difftune_repro::core::{threads_from_env, Stage};
use difftune_repro::sim::{ParamBounds, SimParams};
use difftune_repro::surrogate::{surrogate_file_name, SurrogateArtifact, SurrogateForward};

/// The 2-cell smoke plan: one llvm-mca cell and one llvm_sim cell.
fn smoke_cells() -> Vec<CellKey> {
    vec![
        CellKey::parse("mca:haswell:llvm_mca").expect("valid cell"),
        CellKey::parse("uop:haswell:llvm_sim").expect("valid cell"),
    ]
}

/// A fresh per-test output directory under the target temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftune-matrix-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(dir: &Path, threads: usize) -> MatrixOptions {
    MatrixOptions {
        scale: Scale::Smoke,
        threads,
        out_dir: dir.to_path_buf(),
        cells: Some(smoke_cells()),
        max_cells: None,
        stop_after: None,
        measure_throughput: false,
    }
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn two_cell_smoke_matrix_runs_end_to_end_and_its_artifacts_parse_back() {
    let dir = fresh_dir("e2e");
    let outcome = run_matrix(&options(&dir, 1)).expect("the sweep completes");

    // The summary on disk parses back to the in-memory roll-up.
    let summary = MatrixSummary::from_json(&read(&dir.join(MATRIX_SUMMARY_FILE)))
        .expect("summary JSON parses back to MatrixSummary");
    assert_eq!(summary, outcome.summary);
    assert_eq!(summary.schema, MATRIX_SCHEMA);
    assert_eq!(summary.cells_total, 2);
    assert_eq!(summary.cells_completed, 2);
    assert_eq!(summary.cells_skipped, 0);

    for key in smoke_cells() {
        let record = MatrixRecord::from_json(&read(&dir.join(key.file_name())))
            .expect("cell JSON parses back to MatrixRecord");
        assert_eq!(record.schema, MATRIX_SCHEMA);
        assert_eq!(record.cell, key.id());
        assert_eq!(record.seed, key.seed(), "seed comes from the key hash");
        assert!(record.train_blocks > 0 && record.heldout_blocks > 0);
        assert!(record.simulated_samples > 0);
        assert!(record.num_learned_parameters > 0);

        // Learned-table quality vs. the expert defaults, seed-pinned. At
        // smoke scale (tiny corpus, fast MLP surrogate) the learned table
        // does not yet match the defaults the way the paper-scale runs do,
        // so the threshold is deliberately generous: training must land the
        // table in the defaults' error band, not at the random-table band
        // (several hundred percent MAPE), and must preserve ranking.
        assert!(
            record.learned_mape.is_finite() && record.learned_mape > 0.0,
            "{}: learned MAPE must be a real error, got {}",
            record.cell,
            record.learned_mape
        );
        assert!(
            record.learned_mape <= record.default_mape * 2.5,
            "{}: learned MAPE {} too far above the default table's {}",
            record.cell,
            record.learned_mape,
            record.default_mape
        );
        assert!(
            record.learned_tau > 0.3,
            "{}: learned tau {} lost the ranking",
            record.cell,
            record.learned_tau
        );

        // The per-category breakdown partitions the held-out blocks.
        assert!(!record.by_category.is_empty());
        let category_blocks: usize = record.by_category.iter().map(|c| c.blocks).sum();
        assert_eq!(category_blocks, record.heldout_blocks);

        // The cell record is servable: its learned table reconstructs to the
        // recorded fingerprint.
        assert!(!record.learned_table.is_empty());
        let table = SimParams::from_flat(&record.learned_table, &ParamBounds::default());
        assert_eq!(table.fingerprint_hex(), record.table_fingerprint);

        // Schema /3: the surrogate column is populated, throughput is not
        // (blocks/s only exists under --measure-throughput, so default runs
        // stay wall-clock-free and bit-reproducible).
        let surrogate_mape = record.surrogate_mape.expect("surrogate MAPE recorded");
        assert!(
            surrogate_mape.is_finite() && surrogate_mape > 0.0,
            "{}: surrogate MAPE must be a real error, got {surrogate_mape}",
            record.cell
        );
        assert!(record.surrogate_tau.is_some());
        assert!(record.surrogate_vs_sim_mape.is_some());
        assert!(record.surrogate_vs_sim_tau.is_some());
        assert!(record.surrogate_blocks_per_second.is_none());
        assert!(record.simulator_blocks_per_second.is_none());

        // The exported surrogate artifact sits next to the cell record, loads
        // back through the strict verifier, and matches the recorded
        // fingerprint and learned table.
        let artifact =
            SurrogateArtifact::from_json(&read(&dir.join(surrogate_file_name(&key.id()))))
                .expect("surrogate artifact parses and verifies");
        assert_eq!(
            Some(&artifact.fingerprint),
            record.surrogate_fingerprint.as_ref()
        );
        assert_eq!(artifact.table().fingerprint_hex(), record.table_fingerprint);
        SurrogateForward::from_artifact(&artifact).expect("artifact is servable");

        // The record also appears in the summary — minus the learned table,
        // which the roll-up omits rather than duplicating every per-cell
        // file's.
        let summary_row = MatrixRecord {
            learned_table: Vec::new(),
            ..record.clone()
        };
        assert!(summary.records.contains(&summary_row));
    }

    fs::remove_dir_all(&dir).ok();
}

/// The worker widths this file compares, chosen exactly like
/// `tests/determinism.rs`: `DIFFTUNE_THREADS=1` compares against 2-wide
/// sweeps, `=N` against `N`-wide, unset against 2 and 4.
fn parallel_widths() -> Vec<usize> {
    match threads_from_env() {
        Ok(0) => vec![2, 4],
        Ok(1) => vec![2],
        Ok(n) => vec![n],
        Err(error) => panic!("invalid DIFFTUNE_THREADS: {error}"),
    }
}

#[test]
fn matrix_artifacts_are_byte_identical_across_thread_counts() {
    let serial_dir = fresh_dir("serial");
    run_matrix(&options(&serial_dir, 1)).expect("serial sweep completes");

    for width in parallel_widths() {
        let parallel_dir = fresh_dir(&format!("parallel{width}"));
        run_matrix(&options(&parallel_dir, width)).expect("parallel sweep completes");

        for file in smoke_cells()
            .iter()
            .flat_map(|key| [key.file_name(), surrogate_file_name(&key.id())])
            .chain([MATRIX_SUMMARY_FILE.to_string()])
        {
            let serial = read(&serial_dir.join(&file));
            let parallel = read(&parallel_dir.join(&file));
            assert_eq!(
                serial, parallel,
                "{file} diverged between 1 and {width} concurrent cells"
            );
        }
        fs::remove_dir_all(&parallel_dir).ok();
    }
    fs::remove_dir_all(&serial_dir).ok();
}

#[test]
fn a_killed_sweep_resumes_to_a_bit_identical_summary() {
    // The uninterrupted reference run.
    let reference_dir = fresh_dir("reference");
    run_matrix(&options(&reference_dir, 1)).expect("reference sweep completes");
    let reference_summary = read(&reference_dir.join(MATRIX_SUMMARY_FILE));

    // The "killed" run: cell 1 of 2 completes, then the sweep dies — and to
    // make it harder, cell 2 dies *mid-pipeline*, after its surrogate-fit
    // stage wrote a session checkpoint.
    let resumed_dir = fresh_dir("resumed");
    let cells = smoke_cells();
    let first_only = MatrixOptions {
        cells: Some(vec![cells[0]]),
        ..options(&resumed_dir, 1)
    };
    run_matrix(&first_only).expect("first cell completes");
    let second_partial = MatrixOptions {
        cells: Some(vec![cells[1]]),
        stop_after: Some(Stage::FitSurrogate),
        ..options(&resumed_dir, 1)
    };
    let partial = run_matrix(&second_partial).expect("partial cell checkpoints");
    assert_eq!(partial.interrupted, 1, "cell 2 must stop at its checkpoint");
    assert!(
        resumed_dir.join(cells[1].checkpoint_file_name()).exists(),
        "the mid-run checkpoint must be on disk"
    );

    // Resume the full sweep: cell 1 is reused from its record, cell 2 resumes
    // from its checkpoint (only the table-optimization stage runs).
    let outcome = run_matrix(&options(&resumed_dir, 1)).expect("resumed sweep completes");
    assert_eq!(outcome.reused, 1, "the completed cell must not re-run");
    assert_eq!(outcome.summary.cells_completed, 2);
    assert!(
        !resumed_dir.join(cells[1].checkpoint_file_name()).exists(),
        "a completed cell removes its checkpoint"
    );

    assert_eq!(
        read(&resumed_dir.join(MATRIX_SUMMARY_FILE)),
        reference_summary,
        "the resumed sweep's summary must be bit-identical to an uninterrupted run's"
    );

    fs::remove_dir_all(&reference_dir).ok();
    fs::remove_dir_all(&resumed_dir).ok();
}
