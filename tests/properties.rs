//! Property-based integration tests over generated blocks and parameter tables.

use difftune_repro::bhive::metrics::{kendall_tau, mape};
use difftune_repro::core::{BackendId, SimulatorKind, Source, SpecKind};
use difftune_repro::cpu::{default_params, Machine, MeasurementConfig, Microarch};
use difftune_repro::isa::{BasicBlock, BlockGenerator};
use difftune_repro::sim::{McaSimulator, ParamBounds, SimParams, Simulator, UopSimulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn generated_block(seed: u64, len: usize) -> BasicBlock {
    let generator = BlockGenerator::default();
    let mut rng = StdRng::seed_from_u64(seed);
    generator.generate_with_len(&mut rng, len.max(1))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any generated block prints to text that parses back to the same block.
    #[test]
    fn block_text_round_trip(seed in 0u64..5_000, len in 1usize..12) {
        let block = generated_block(seed, len);
        let reparsed: BasicBlock = block.to_string().parse().expect("parse generated block");
        prop_assert_eq!(reparsed, block);
    }

    /// The simulator's prediction is finite, non-negative, and monotone in the
    /// number of unrolled iterations being amortized (longer blocks of the
    /// same instructions never get faster).
    #[test]
    fn simulator_predictions_are_sane(seed in 0u64..5_000, len in 1usize..10) {
        let block = generated_block(seed, len);
        let sim = McaSimulator::default();
        let params = default_params(Microarch::Haswell);
        let timing = sim.predict(&params, &block);
        prop_assert!(timing.is_finite() && timing >= 0.0);

        // Duplicating the block's instructions cannot make it faster.
        let doubled: BasicBlock = block.iter().cloned().chain(block.iter().cloned()).collect();
        let doubled_timing = sim.predict(&params, &doubled);
        prop_assert!(doubled_timing >= timing - 1e-9, "{doubled_timing} < {timing}");
    }

    /// Raising every write latency never speeds up a block.
    #[test]
    fn higher_latencies_never_speed_things_up(seed in 0u64..5_000, len in 1usize..8, bump in 1u32..6) {
        let block = generated_block(seed, len);
        let sim = McaSimulator::default();
        let base = default_params(Microarch::Haswell);
        let mut slower = base.clone();
        for entry in &mut slower.per_inst {
            entry.write_latency += bump;
        }
        prop_assert!(sim.predict(&slower, &block) >= sim.predict(&base, &block) - 1e-9);
    }

    /// The reference machine is deterministic and its noise is bounded.
    #[test]
    fn reference_measurements_are_stable(seed in 0u64..2_000, len in 1usize..8) {
        let block = generated_block(seed, len);
        let machine = Machine::new(Microarch::Zen2);
        let exact = Machine::with_measurement(Microarch::Zen2, MeasurementConfig { iterations: 100, apply_noise: false });
        let a = machine.measure(&block);
        prop_assert_eq!(a, machine.measure(&block));
        let e = exact.measure_exact(&block);
        if e > 0.0 {
            prop_assert!((a - e).abs() / e < 0.06);
        }
    }

    /// Flattening a parameter table and reconstructing it is the identity.
    #[test]
    fn sim_params_flat_round_trip(dispatch in 1u32..10, rob in 1u32..400, latency in 0u32..30, port in 0usize..10) {
        let mut params = SimParams::uniform_default();
        params.dispatch_width = dispatch;
        params.reorder_buffer_size = rob;
        params.per_inst[3].write_latency = latency;
        params.per_inst[3].port_map[port] = 2;
        let back = SimParams::from_flat(&params.to_flat(), &ParamBounds::default());
        prop_assert_eq!(back, params);
    }

    /// Batched prediction agrees exactly with the per-block loop for both
    /// simulators, at sizes below and above the parallel-dispatch threshold.
    #[test]
    fn predict_batch_matches_per_block_predictions(seed in 0u64..2_000, count in 0usize..70) {
        let blocks: Vec<BasicBlock> = (0..count)
            .map(|i| generated_block(seed.wrapping_add(i as u64), 1 + (i % 7)))
            .collect();
        let params = default_params(Microarch::Haswell);
        let mca = McaSimulator::default();
        let uop = UopSimulator::default();
        for sim in [&mca as &dyn Simulator, &uop as &dyn Simulator] {
            let batched = sim.predict_batch(&params, &blocks);
            prop_assert_eq!(batched.len(), blocks.len());
            for (block, prediction) in blocks.iter().zip(&batched) {
                // Bit-exact: the default implementation runs the same pure
                // function, only on a different thread.
                prop_assert_eq!(sim.predict(&params, block).to_bits(), prediction.to_bits());
            }
        }
    }

    /// Every constructible backend id renders to a wire string that parses
    /// back to the same id — the grammar `/predict` echoes, `/backends`
    /// lists, and the router hashes has no ambiguous corner.
    #[test]
    fn backend_ids_round_trip_through_the_wire_format(
        source in 0usize..4,
        simulator in 0usize..SimulatorKind::ALL.len(),
        uarch in 0usize..Microarch::ALL.len(),
        spec in 0usize..=SpecKind::ALL.len(),
    ) {
        let sources = [Source::Default, Source::Checkpoint, Source::Matrix, Source::Surrogate];
        let id = BackendId {
            source: sources[source],
            simulator: SimulatorKind::ALL[simulator],
            uarch: Microarch::ALL[uarch],
            spec: spec.checked_sub(1).map(|i| SpecKind::ALL[i]),
        };
        let wire = id.to_string();
        prop_assert_eq!(wire.parse::<BackendId>(), Ok(id), "{}", wire);
        // The wire format is canonical: re-rendering the parse is the identity.
        prop_assert_eq!(wire.parse::<BackendId>().unwrap().to_string(), wire);
    }

    /// MAPE is zero only for perfect predictions and scales linearly with
    /// over-prediction; Kendall's tau is bounded in [-1, 1] and equals 1 for
    /// any strictly increasing transformation of the actuals.
    #[test]
    fn metric_properties(values in proptest::collection::vec(0.1f64..100.0, 2..40)) {
        prop_assert!(mape(&values, &values) < 1e-12);
        let doubled: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
        prop_assert!((mape(&doubled, &values) - 1.0).abs() < 1e-9);
        let monotone: Vec<f64> = values.iter().map(|v| v.powi(2) + 1.0).collect();
        let tau = kendall_tau(&monotone, &values);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&tau));
    }
}
