//! Cross-crate integration tests: ISA ↔ simulators ↔ dataset ↔ surrogate.

use difftune_repro::bhive::{CorpusConfig, Dataset};
use difftune_repro::cpu::{default_params, AnalyticalModel, Machine, MeasurementConfig, Microarch};
use difftune_repro::isa::{BasicBlock, BlockGenerator};
use difftune_repro::sim::{McaSimulator, SimParams, Simulator, UopSimulator};
use difftune_repro::surrogate::{block_param_features, global_features, Vocab};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn generated_blocks_flow_through_every_component() {
    let generator = BlockGenerator::default();
    let mut rng = StdRng::seed_from_u64(42);
    let machine = Machine::new(Microarch::Haswell);
    let mca = McaSimulator::default();
    let uop = UopSimulator::default();
    let analytical = AnalyticalModel::new(Microarch::Haswell).unwrap();
    let params = default_params(Microarch::Haswell);
    let vocab = Vocab::new();

    for _ in 0..50 {
        let block = generator.generate(&mut rng);
        // Text round trip.
        let reparsed: BasicBlock = block.to_string().parse().expect("round trip");
        assert_eq!(reparsed.len(), block.len());
        // Every predictor produces a finite, non-negative timing.
        for timing in [
            machine.measure(&block),
            mca.predict(&params, &block),
            uop.predict(&params, &block),
            analytical.predict(&block),
        ] {
            assert!(
                timing.is_finite() && timing >= 0.0,
                "bad timing {timing} for block:\n{block}"
            );
        }
        // The surrogate encoding covers every instruction.
        let tokenized = vocab.tokenize_block(&block);
        assert_eq!(tokenized.len(), block.len());
        let features = block_param_features(&params, &tokenized);
        assert_eq!(features.len(), block.len());
        assert_eq!(global_features(&params).len(), 2);
    }
}

#[test]
fn default_parameters_differ_per_microarchitecture_and_change_predictions() {
    let block: BasicBlock = "mulsd %xmm1, %xmm0\naddsd %xmm0, %xmm2\ndivsd %xmm3, %xmm4"
        .parse()
        .unwrap();
    let sim = McaSimulator::default();
    let timings: Vec<f64> = Microarch::ALL
        .iter()
        .map(|&uarch| sim.predict(&default_params(uarch), &block))
        .collect();
    assert!(
        timings.iter().any(|&t| (t - timings[0]).abs() > 1e-9),
        "per-microarchitecture defaults should produce different predictions: {timings:?}"
    );
}

#[test]
fn measurements_are_reproducible_and_noise_bounded() {
    let machine = Machine::new(Microarch::Skylake);
    let exact_machine = Machine::with_measurement(
        Microarch::Skylake,
        MeasurementConfig {
            iterations: 100,
            apply_noise: false,
        },
    );
    let generator = BlockGenerator::default();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let block = generator.generate_with_len(&mut rng, 4);
        let a = machine.measure(&block);
        let b = machine.measure(&block);
        assert_eq!(a, b);
        let exact = exact_machine.measure_exact(&block);
        if exact > 0.0 {
            assert!((a - exact).abs() / exact < 0.05);
        }
    }
}

#[test]
fn dataset_default_error_matches_paper_ballpark_on_haswell() {
    // The expert defaults should land in a 20-60% error band (the paper
    // reports 25%; the exact number depends on the synthetic corpus), and the
    // rank correlation should be clearly positive.
    let dataset = Dataset::build(
        Microarch::Haswell,
        &CorpusConfig {
            num_blocks: 1200,
            seed: 9,
            ..CorpusConfig::default()
        },
    );
    let sim = McaSimulator::default();
    let defaults = default_params(Microarch::Haswell);
    let (error, tau) = Dataset::evaluate(&dataset.test(), |b| sim.predict(&defaults, b));
    assert!(error > 0.10 && error < 0.60, "default error {error}");
    assert!(tau > 0.5, "default tau {tau}");
}

#[test]
fn random_parameter_tables_are_much_worse_than_defaults() {
    // Mirrors the paper's observation that a random sample from the sampling
    // distribution has ~171% error while the defaults have ~25-35%.
    use difftune_repro::core::{sample_table, ParamSpec};
    let dataset = Dataset::build(
        Microarch::Haswell,
        &CorpusConfig {
            num_blocks: 600,
            seed: 5,
            ..CorpusConfig::default()
        },
    );
    let sim = McaSimulator::default();
    let defaults = default_params(Microarch::Haswell);
    let mut rng = StdRng::seed_from_u64(11);
    let random = sample_table(&mut rng, &ParamSpec::llvm_mca(), &defaults);
    let test = dataset.test();
    let (default_error, _) = Dataset::evaluate(&test, |b| sim.predict(&defaults, b));
    let (random_error, _) = Dataset::evaluate(&test, |b| sim.predict(&random, b));
    assert!(
        random_error > default_error * 1.5,
        "random table ({random_error}) should be far worse than defaults ({default_error})"
    );
}

#[test]
fn simulator_is_a_pure_function_of_its_parameters() {
    let block: BasicBlock = "addq %rax, %rbx\nmovq (%rdi), %rcx\naddq %rcx, %rbx"
        .parse()
        .unwrap();
    let sim = McaSimulator::default();
    let a = SimParams::uniform_default();
    let mut b = SimParams::uniform_default();
    assert_eq!(sim.predict(&a, &block), sim.predict(&b, &block));
    b.per_inst[block.insts()[0].opcode().index()].write_latency = 9;
    assert_ne!(sim.predict(&a, &block), sim.predict(&b, &block));
}
