//! Workspace smoke test: every facade re-export resolves and the core flow
//! (parse → simulate → surrogate forward) runs. A manifest regression that
//! drops a crate from the `difftune_repro` facade fails here immediately,
//! before any heavier test binary is reached.

use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::isa::BasicBlock;
use difftune_repro::sim::{McaSimulator, Simulator, UopSimulator};
use difftune_repro::surrogate::{
    block_param_features, global_features, IthemalConfig, IthemalModel,
};

#[test]
fn facade_parse_simulate_and_surrogate_forward() {
    // Parse a block through the facade's `isa` re-export.
    let block: BasicBlock = "addq %rax, %rbx\nmovq (%rdi), %rcx"
        .parse()
        .expect("parse block");
    assert_eq!(block.len(), 2);

    // One simulator prediction through `cpu` (parameters) + `sim` (simulator).
    let params = default_params(Microarch::Haswell);
    let timing = McaSimulator::default().predict(&params, &block);
    assert!(timing.is_finite() && timing > 0.0, "mca timing {timing}");
    let uop_timing = UopSimulator::default().predict(&params, &block);
    assert!(
        uop_timing.is_finite() && uop_timing > 0.0,
        "uop timing {uop_timing}"
    );

    // One surrogate forward pass through `surrogate` (+ `tensor` underneath).
    let model = IthemalModel::new(IthemalConfig {
        embed_dim: 8,
        hidden_dim: 12,
        instr_layers: 1,
        block_layers: 1,
        parameter_inputs: true,
        seed: 0,
    });
    let tokenized = model.vocab().tokenize_block(&block);
    let features = block_param_features(&params, &tokenized);
    let global = global_features(&params);
    let prediction = model.predict(&tokenized, Some(&features), Some(&global));
    assert!(
        prediction.is_finite() && prediction >= 0.0,
        "surrogate prediction {prediction}"
    );
}

#[test]
fn facade_modules_cover_every_workspace_crate() {
    // Touch one item per facade module so a missing re-export cannot compile.
    let _spec = difftune_repro::core::ParamSpec::llvm_mca();
    let _config = difftune_repro::bhive::CorpusConfig::default();
    let _space = difftune_repro::opentuner::SearchSpace::uniform(4, 0.0, 1.0);
    let _tensor = difftune_repro::tensor::Tensor::scalar(1.0);
    let _bounds = difftune_repro::sim::ParamBounds::default();
}
