//! Integration tests for the staged session API: checkpoint/resume
//! determinism, observer coverage, and typed error handling.

use std::cell::RefCell;
use std::rc::Rc;

use difftune_repro::core::{
    DiffTuneBuilder, DiffTuneConfig, DiffTuneError, ParamSpec, ProgressEvent, RunCheckpoint, Stage,
    SurrogateKind,
};
use difftune_repro::sim::{McaSimulator, SimParams, Simulator};
use difftune_repro::surrogate::{train::TrainConfig, FeatureMlpConfig};

use difftune_repro::isa::BasicBlock;

fn train_set(simulator: &McaSimulator, truth: &SimParams) -> Vec<(BasicBlock, f64)> {
    [
        "addq %rax, %rbx",
        "addq %rax, %rbx\naddq %rbx, %rcx",
        "imulq %rbx, %rcx\naddq %rcx, %rax",
        "movq (%rdi), %rax\naddq %rax, %rbx",
        "pushq %rbx\ntestl %r8d, %r8d",
        "xorl %eax, %eax\naddl %eax, %ebx",
        "mulsd %xmm0, %xmm1\naddsd %xmm1, %xmm2",
        "subq %rdx, %rsi\nleaq 8(%rsi), %rdi",
        "shrq $3, %rax\norq %rax, %rbx",
        "movq %rax, 8(%rsp)\nmovq 8(%rsp), %rbx",
    ]
    .iter()
    .map(|text| {
        let block: BasicBlock = text.parse().unwrap();
        (block.clone(), simulator.predict(truth, &block))
    })
    .collect()
}

/// A deterministic single-threaded configuration (multi-threaded gradient
/// reduction is order-sensitive in floating point, which would defeat the
/// bit-identical resume check).
fn config(seed: u64) -> DiffTuneConfig {
    DiffTuneConfig {
        surrogate: SurrogateKind::Mlp(FeatureMlpConfig {
            hidden_dim: 16,
            ..FeatureMlpConfig::default()
        }),
        simulated_multiplier: 20.0,
        max_simulated: 200,
        surrogate_train: TrainConfig {
            epochs: 4,
            batch_size: 32,
            threads: 1,
            ..TrainConfig::default()
        },
        table_learning_rate: 0.05,
        table_epochs: 3,
        table_batch_size: 10,
        clamp_to_sampling: true,
        seed,
        threads: 1,
    }
}

#[test]
fn resuming_from_a_json_checkpoint_reproduces_the_run_bit_for_bit() {
    let simulator = McaSimulator::new(16);
    let mut truth = SimParams::uniform_default();
    for entry in &mut truth.per_inst {
        entry.write_latency = 4;
    }
    let train = train_set(&simulator, &truth);
    let defaults = SimParams::uniform_default();
    let spec = ParamSpec::llvm_mca();
    let builder = DiffTuneBuilder::new(config(11));

    // The uninterrupted run.
    let uninterrupted = builder
        .build(&simulator, &spec, &defaults, &train)
        .unwrap()
        .run_to_completion()
        .unwrap();

    // The interrupted run: stop after surrogate training, checkpoint through
    // JSON (simulating a kill + restart), and resume.
    let mut session = builder.build(&simulator, &spec, &defaults, &train).unwrap();
    session.generate_dataset().unwrap();
    session.fit_surrogate().unwrap();
    let json = session.checkpoint().to_json().unwrap();
    drop(session);

    let checkpoint = RunCheckpoint::from_json(&json).unwrap();
    assert_eq!(checkpoint.stage, Stage::OptimizeTable);
    let resumed_session = builder
        .resume(&simulator, &spec, &defaults, &train, &checkpoint)
        .unwrap();
    assert_eq!(resumed_session.stage(), Stage::OptimizeTable);
    let resumed = resumed_session.run_to_completion().unwrap();

    assert_eq!(
        resumed.learned, uninterrupted.learned,
        "the resumed run must learn a bit-identical parameter table"
    );
    assert_eq!(resumed.initial, uninterrupted.initial);
    assert_eq!(resumed.table_losses, uninterrupted.table_losses);
    assert_eq!(
        resumed.surrogate_report.epoch_losses,
        uninterrupted.surrogate_report.epoch_losses
    );
}

#[test]
fn a_finished_checkpoint_resumes_straight_to_the_result() {
    let simulator = McaSimulator::new(16);
    let truth = SimParams::uniform_default();
    let train = train_set(&simulator, &truth);
    let defaults = SimParams::uniform_default();
    let spec = ParamSpec::llvm_mca();
    let builder = DiffTuneBuilder::new(config(5));

    let mut session = builder.build(&simulator, &spec, &defaults, &train).unwrap();
    session.generate_dataset().unwrap();
    session.fit_surrogate().unwrap();
    session.optimize_table().unwrap();
    let checkpoint = session.checkpoint();
    let direct = session.finish().unwrap();

    let json = checkpoint.to_json().unwrap();
    let resumed = builder
        .resume(
            &simulator,
            &spec,
            &defaults,
            &train,
            &RunCheckpoint::from_json(&json).unwrap(),
        )
        .unwrap()
        .finish()
        .unwrap();
    assert_eq!(resumed.learned, direct.learned);
    assert_eq!(resumed.table_losses, direct.table_losses);
}

#[test]
fn observers_see_every_stage_and_losses_from_every_training_stage() {
    let simulator = McaSimulator::new(16);
    let truth = SimParams::uniform_default();
    let train = train_set(&simulator, &truth);
    let defaults = SimParams::uniform_default();

    let events: Rc<RefCell<Vec<ProgressEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&events);
    let mut session = DiffTuneBuilder::new(config(2))
        .build(&simulator, &ParamSpec::llvm_mca(), &defaults, &train)
        .unwrap();
    session.add_observer(Box::new(move |event: &ProgressEvent| {
        sink.borrow_mut().push(event.clone());
    }));
    session.run_to_completion().unwrap();

    let events = events.borrow();
    for stage in [
        Stage::GenerateDataset,
        Stage::FitSurrogate,
        Stage::OptimizeTable,
    ] {
        assert!(
            events.contains(&ProgressEvent::StageStarted { stage }),
            "missing StageStarted for {stage:?}"
        );
        assert!(
            events.contains(&ProgressEvent::StageFinished { stage }),
            "missing StageFinished for {stage:?}"
        );
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::DatasetProgress { generated, total } if generated == total)),
        "dataset generation must report completion"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::SurrogateEpoch { mean_loss, .. } if mean_loss.is_finite())),
        "surrogate training must report at least one loss"
    );
    assert!(
        events.iter().any(
            |e| matches!(e, ProgressEvent::TableBatch { mean_loss, .. } if mean_loss.is_finite())
        ),
        "table training must report at least one per-batch loss"
    );
    assert!(
        events.iter().any(
            |e| matches!(e, ProgressEvent::TableEpoch { mean_loss, .. } if mean_loss.is_finite())
        ),
        "table training must report at least one per-epoch loss"
    );

    // Events arrive in pipeline order: the last event closes the last stage.
    assert_eq!(
        events.last(),
        Some(&ProgressEvent::StageFinished {
            stage: Stage::OptimizeTable
        })
    );
}

#[test]
fn malformed_input_comes_back_as_typed_errors_not_panics() {
    let simulator = McaSimulator::new(16);
    let defaults = SimParams::uniform_default();
    let spec = ParamSpec::llvm_mca();
    let builder = DiffTuneBuilder::new(config(0));

    // Empty training set.
    assert_eq!(
        builder
            .build(&simulator, &spec, &defaults, &[])
            .err()
            .unwrap(),
        DiffTuneError::EmptyTrainSet
    );

    // A training set of only empty blocks is just as unusable.
    let empty_only = vec![(BasicBlock::new(), 1.0), (BasicBlock::new(), 2.0)];
    assert_eq!(
        builder
            .build(&simulator, &spec, &defaults, &empty_only)
            .err()
            .unwrap(),
        DiffTuneError::EmptyTrainSet
    );

    // Bad configuration fields.
    let mut bad = config(0);
    bad.simulated_multiplier = f64::NAN;
    assert!(matches!(
        DiffTuneBuilder::new(bad).build(&simulator, &spec, &defaults, &[]),
        Err(DiffTuneError::InvalidConfig { .. })
    ));
    let mut bad = config(0);
    bad.surrogate_train.batch_size = 0;
    assert!(matches!(
        DiffTuneBuilder::new(bad).build(&simulator, &spec, &defaults, &[]),
        Err(DiffTuneError::Surrogate(_))
    ));

    // An empty sampling range.
    let mut bad_spec = spec;
    bad_spec.sampling.write_latency = (7, 2);
    let truth = SimParams::uniform_default();
    let train = train_set(&simulator, &truth);
    assert!(matches!(
        builder.build(&simulator, &bad_spec, &defaults, &train),
        Err(DiffTuneError::InvalidConfig {
            field: "sampling.write_latency",
            ..
        })
    ));
}

#[test]
fn empty_blocks_are_skipped_and_reported() {
    let simulator = McaSimulator::new(16);
    let truth = SimParams::uniform_default();
    let mut train = train_set(&simulator, &truth);
    train.push((BasicBlock::new(), 1.0));
    train.push((BasicBlock::new(), 2.0));
    let session = DiffTuneBuilder::new(config(1))
        .build(
            &simulator,
            &ParamSpec::llvm_mca(),
            &SimParams::uniform_default(),
            &train,
        )
        .unwrap();
    assert_eq!(session.skipped_blocks(), 2);
    let result = session.run_to_completion().unwrap();
    assert_eq!(result.skipped_blocks, 2);
}

#[test]
fn stages_out_of_order_are_rejected() {
    let simulator = McaSimulator::new(16);
    let truth = SimParams::uniform_default();
    let train = train_set(&simulator, &truth);
    let mut session = DiffTuneBuilder::new(config(0))
        .build(
            &simulator,
            &ParamSpec::llvm_mca(),
            &SimParams::uniform_default(),
            &train,
        )
        .unwrap();
    assert_eq!(session.stage(), Stage::GenerateDataset);
    assert_eq!(
        session.fit_surrogate().err().unwrap(),
        DiffTuneError::StageOrder {
            current: Stage::GenerateDataset,
            requested: Stage::FitSurrogate,
        }
    );
    assert_eq!(
        session.optimize_table().err().unwrap(),
        DiffTuneError::StageOrder {
            current: Stage::GenerateDataset,
            requested: Stage::OptimizeTable,
        }
    );
    session.generate_dataset().unwrap();
    assert_eq!(
        session.generate_dataset().err().unwrap(),
        DiffTuneError::StageOrder {
            current: Stage::FitSurrogate,
            requested: Stage::GenerateDataset,
        }
    );
    // finish() before the table is optimized is also a stage error.
    assert!(matches!(
        session.finish(),
        Err(DiffTuneError::StageOrder {
            requested: Stage::Finished,
            ..
        })
    ));
}

#[test]
fn checkpoints_from_a_different_setup_are_rejected() {
    let simulator = McaSimulator::new(16);
    let truth = SimParams::uniform_default();
    let train = train_set(&simulator, &truth);
    let defaults = SimParams::uniform_default();
    let spec = ParamSpec::llvm_mca();

    let builder = DiffTuneBuilder::new(config(3));
    let mut session = builder.build(&simulator, &spec, &defaults, &train).unwrap();
    session.generate_dataset().unwrap();
    session.fit_surrogate().unwrap();
    let checkpoint = session.checkpoint();

    // Wrong seed.
    assert!(matches!(
        DiffTuneBuilder::new(config(4)).resume(&simulator, &spec, &defaults, &train, &checkpoint),
        Err(DiffTuneError::Checkpoint { .. })
    ));

    // Different training set (one timing perturbed).
    let mut other_train = train.clone();
    other_train[0].1 += 0.5;
    assert!(matches!(
        builder.resume(&simulator, &spec, &defaults, &other_train, &checkpoint),
        Err(DiffTuneError::Checkpoint { .. })
    ));

    // Different table-optimization hyperparameters.
    let mut other = config(3);
    other.table_learning_rate = 0.2;
    assert!(matches!(
        DiffTuneBuilder::new(other).resume(&simulator, &spec, &defaults, &train, &checkpoint),
        Err(DiffTuneError::Checkpoint { .. })
    ));

    // Wrong surrogate architecture.
    let mut other = config(3);
    other.surrogate = SurrogateKind::Mlp(FeatureMlpConfig {
        hidden_dim: 48,
        ..FeatureMlpConfig::default()
    });
    assert!(matches!(
        DiffTuneBuilder::new(other).resume(&simulator, &spec, &defaults, &train, &checkpoint),
        Err(DiffTuneError::Checkpoint { .. })
    ));

    // A checkpoint claiming a later stage than its contents support.
    let mut truncated = checkpoint.clone();
    truncated.stage = Stage::Finished;
    assert!(matches!(
        builder.resume(&simulator, &spec, &defaults, &train, &truncated),
        Err(DiffTuneError::Checkpoint { .. })
    ));

    // Garbage JSON.
    assert!(matches!(
        RunCheckpoint::from_json("{not json"),
        Err(DiffTuneError::Checkpoint { .. })
    ));

    // A diverged run (non-finite learned state) is rejected at save time —
    // JSON cannot represent NaN, so the snapshot would otherwise save fine
    // and fail to reload.
    let mut diverged = checkpoint.clone();
    diverged.table_losses = vec![f64::NAN];
    assert!(matches!(
        diverged.to_json(),
        Err(DiffTuneError::Checkpoint { .. })
    ));
}

#[test]
fn absurd_thread_counts_are_rejected_by_validation() {
    let mut bad = config(0);
    bad.threads = 1_000_000;
    assert!(matches!(
        bad.validate(),
        Err(DiffTuneError::InvalidConfig {
            field: "threads",
            ..
        })
    ));
    let mut bad = config(0);
    bad.surrogate_train.threads = 1_000_000;
    assert!(matches!(bad.validate(), Err(DiffTuneError::Surrogate(_))));
}
