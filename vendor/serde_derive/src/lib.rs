//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim. The build environment has no registry access, so `syn`/`quote` are
//! unavailable; instead this crate walks the raw [`TokenStream`] directly.
//!
//! Supported shapes — exactly what the workspace derives on:
//! non-generic structs (named, tuple, unit) and non-generic enums whose
//! variants are unit, tuple, or struct-like (explicit discriminants allowed).
//! Generic items produce a compile error naming the limitation.
//!
//! The generated code targets the shim's value-tree model and follows serde's
//! externally-tagged enum encoding: unit variants serialize as a string,
//! newtype variants as `{"Variant": value}`, tuple variants as
//! `{"Variant": [..]}`, and struct variants as `{"Variant": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod codegen;
mod parse;

use parse::{parse_item, Item};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, codegen::serialize_impl)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, codegen::deserialize_impl)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item),
        Err(message) => format!("::core::compile_error!({message:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// True when the token is the punctuation character `ch`.
fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

/// True when the token is a delimited group with the given delimiter.
fn is_group(tree: &TokenTree, delimiter: Delimiter) -> bool {
    matches!(tree, TokenTree::Group(g) if g.delimiter() == delimiter)
}
