//! String-based code generation for the shim's `Serialize`/`Deserialize`.

use std::fmt::Write;

use crate::parse::{Fields, Item, Variant};

/// Serialize a list of `(key_literal, value_expr)` pairs into a `Value::Map`.
fn map_expr(entries: &[(String, String)]) -> String {
    let mut out = String::from("::serde::Value::Map(::std::vec![");
    for (key, value) in entries {
        let _ = write!(out, "(::std::string::String::from({key:?}), {value}),");
    }
    out.push_str("])");
    out
}

fn seq_expr(items: &[String]) -> String {
    format!("::serde::Value::Seq(::std::vec![{}])", items.join(","))
}

fn ser(expr: &str) -> String {
    format!("::serde::ser::Serialize::serialize({expr})")
}

pub fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<_> = names
                        .iter()
                        .map(|f| (f.clone(), ser(&format!("&self.{f}"))))
                        .collect();
                    map_expr(&entries)
                }
                // serde convention: a newtype struct serializes as its inner value.
                Fields::Tuple(1) => ser("&self.0"),
                Fields::Tuple(n) => {
                    let items: Vec<_> = (0..*n).map(|i| ser(&format!("&self.{i}"))).collect();
                    seq_expr(&items)
                }
            };
            implement_serialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for Variant {
                name: variant,
                fields,
            } in variants
            {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from({variant:?})),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<_> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            ser("__f0")
                        } else {
                            let items: Vec<_> = binds.iter().map(|b| ser(b)).collect();
                            seq_expr(&items)
                        };
                        let tagged = map_expr(&[(variant.clone(), inner)]);
                        format!("{name}::{variant}({}) => {tagged},", binds.join(","))
                    }
                    Fields::Named(field_names) => {
                        let binds: Vec<_> = field_names
                            .iter()
                            .map(|f| format!("{f}: __b_{f}"))
                            .collect();
                        let entries: Vec<_> = field_names
                            .iter()
                            .map(|f| (f.clone(), ser(&format!("__b_{f}"))))
                            .collect();
                        let tagged = map_expr(&[(variant.clone(), map_expr(&entries))]);
                        format!("{name}::{variant}{{{}}} => {tagged},", binds.join(","))
                    }
                };
                arms.push_str(&arm);
            }
            implement_serialize(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn implement_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

pub fn deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let map = expect_map(name);
                    let inits: Vec<_> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::de::field(__map, {f:?})?"))
                        .collect();
                    format!(
                        "{map}\n::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(",")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let seq = expect_seq(name, "__v");
                    let inits: Vec<_> = (0..*n)
                        .map(|i| format!("::serde::de::element(__seq, {i})?"))
                        .collect();
                    format!(
                        "{seq}\n::std::result::Result::Ok({name}({}))",
                        inits.join(",")
                    )
                }
            };
            implement_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            implement_deserialize(name, &enum_deserialize(name, variants))
        }
    }
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for Variant {
        name: variant,
        fields,
    } in variants
    {
        if matches!(fields, Fields::Unit) {
            let _ = write!(
                unit_arms,
                "{variant:?} => ::std::result::Result::Ok({name}::{variant}),"
            );
        }
    }
    let mut tagged_arms = String::new();
    for Variant {
        name: variant,
        fields,
    } in variants
    {
        let arm = match fields {
            Fields::Unit => continue,
            Fields::Tuple(1) => format!(
                "{variant:?} => ::std::result::Result::Ok(\
                 {name}::{variant}(::serde::de::Deserialize::deserialize(__inner)?)),"
            ),
            Fields::Tuple(n) => {
                let seq = expect_seq(name, "__inner");
                let inits: Vec<_> = (0..*n)
                    .map(|i| format!("::serde::de::element(__seq, {i})?"))
                    .collect();
                format!(
                    "{variant:?} => {{ {seq} ::std::result::Result::Ok({name}::{variant}({})) }},",
                    inits.join(",")
                )
            }
            Fields::Named(field_names) => {
                let inits: Vec<_> = field_names
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(__fields, {f:?})?"))
                    .collect();
                format!(
                    "{variant:?} => {{\
                         let __fields = __inner.as_map().ok_or_else(|| \
                             ::serde::de::Error::custom(\
                                 concat!(\"expected map body for variant \", stringify!({name}::{variant}))))?;\
                         ::std::result::Result::Ok({name}::{variant} {{ {} }})\
                     }},",
                    inits.join(",")
                )
            }
        };
        tagged_arms.push_str(&arm);
    }
    format!(
        "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
             return match __s {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     format!(concat!(\"unknown unit variant `{{}}` for enum \", stringify!({name})), __other))),\n\
             }};\n\
         }}\n\
         let __map = __v.as_map().ok_or_else(|| ::serde::de::Error::custom(\
             concat!(\"expected string or single-entry map for enum \", stringify!({name}))))?;\n\
         if __map.len() != 1 {{\n\
             return ::std::result::Result::Err(::serde::de::Error::custom(\
                 concat!(\"expected single-entry map for enum \", stringify!({name}))));\n\
         }}\n\
         let (__tag, __inner) = &__map[0];\n\
         match __tag.as_str() {{\n\
             {tagged_arms}\n\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 format!(concat!(\"unknown variant `{{}}` for enum \", stringify!({name})), __other))),\n\
         }}"
    )
}

fn expect_map(name: &str) -> String {
    format!(
        "let __map = __v.as_map().ok_or_else(|| ::serde::de::Error::custom(\
             concat!(\"expected map for struct \", stringify!({name}))))?;"
    )
}

fn expect_seq(name: &str, expr: &str) -> String {
    format!(
        "let __seq = {expr}.as_seq().ok_or_else(|| ::serde::de::Error::custom(\
             concat!(\"expected sequence for \", stringify!({name}))))?;"
    )
}

fn implement_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::de::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
