//! Minimal item parser over raw token trees (no `syn` available offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

use crate::{is_group, is_punct};

pub enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

pub enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

pub fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected item keyword, found {other:?}"
            ))
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected item name, found {other:?}"
            ))
        }
    };
    if tokens.peek().map(|t| is_punct(t, '<')).unwrap_or(false) {
        return Err(format!(
            "serde shim derive does not support generic item `{name}`; \
             write the impls by hand or drop the generics"
        ));
    }

    match keyword.as_str() {
        "struct" => parse_struct_body(&mut tokens).map(|fields| Item::Struct { name, fields }),
        "enum" => parse_enum_body(&mut tokens).map(|variants| Item::Enum { name, variants }),
        other => Err(format!(
            "serde shim derive supports struct/enum, found `{other}`"
        )),
    }
}

fn parse_struct_body(tokens: &mut Tokens) -> Result<Fields, String> {
    match tokens.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
            named_fields(group.stream()).map(Fields::Named)
        }
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(group.stream())))
        }
        Some(tree) if is_punct(&tree, ';') => Ok(Fields::Unit),
        None => Ok(Fields::Unit),
        other => Err(format!(
            "serde shim derive: unexpected struct body {other:?}"
        )),
    }
}

fn parse_enum_body(tokens: &mut Tokens) -> Result<Vec<Variant>, String> {
    let group = match tokens.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group,
        other => {
            return Err(format!(
                "serde shim derive: expected enum body, found {other:?}"
            ))
        }
    };
    let mut body = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut body);
        let name = match body.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde shim derive: expected variant, found {other:?}"
                ))
            }
            None => break,
        };
        let fields = match body.peek() {
            Some(tree) if is_group(tree, Delimiter::Parenthesis) => {
                let TokenTree::Group(group) = body.next().expect("peeked") else {
                    unreachable!()
                };
                Fields::Tuple(count_tuple_fields(group.stream()))
            }
            Some(tree) if is_group(tree, Delimiter::Brace) => {
                let TokenTree::Group(group) = body.next().expect("peeked") else {
                    unreachable!()
                };
                Fields::Named(named_fields(group.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the variant separator.
        skip_until_comma(&mut body);
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

/// Parse `name: Type, ...` pairs, returning the field names in order.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde shim derive: expected field name, found {other:?}"
                ))
            }
            None => break,
        };
        match tokens.next() {
            Some(tree) if is_punct(&tree, ':') => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after `{name}`, found {other:?}"
                ))
            }
        }
        skip_until_comma(&mut tokens);
        names.push(name);
    }
    Ok(names)
}

/// Count the comma-separated fields of a tuple struct/variant. Commas nested
/// in sub-groups are invisible here; only `Foo<A, B>` style generic arguments
/// leak commas, so angle-bracket depth is tracked explicitly.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut separators = 0;
    let mut saw_tokens = false;
    let mut trailing_comma = false;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tree in stream {
        saw_tokens = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                // `->` in fn-pointer types is not a closing angle bracket.
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    separators += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
    if !saw_tokens {
        0
    } else if trailing_comma {
        // `(A, B,)`: every field has its own comma.
        separators
    } else {
        // `(A, B)`: one more field than separating commas.
        separators + 1
    }
}

/// Advance past attributes (`#[...]`) at the current position.
fn skip_attributes(tokens: &mut Tokens) {
    while tokens.peek().map(|t| is_punct(t, '#')).unwrap_or(false) {
        tokens.next();
        if tokens
            .peek()
            .map(|t| is_group(t, Delimiter::Bracket))
            .unwrap_or(false)
        {
            tokens.next();
        }
    }
}

/// Advance past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        tokens.next();
        if tokens
            .peek()
            .map(|t| is_group(t, Delimiter::Parenthesis))
            .unwrap_or(false)
        {
            tokens.next();
        }
    }
}

/// Consume tokens until a comma at angle-bracket depth zero (the comma is
/// consumed too) or the end of the stream.
fn skip_until_comma(tokens: &mut Tokens) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tree in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
}
