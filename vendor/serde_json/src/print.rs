//! Compact JSON printer for the shim's value tree.

use serde::Value;

pub fn value_to_json(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (index, (key, item)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back exactly;
        // it always contains `.` or `e`, so the reader sees a float again.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
