//! Recursive-descent JSON parser producing the shim's value tree.

use serde::Value;

use crate::Error;

pub fn json_to_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {} of JSON input (expected `{keyword}`)",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "unterminated array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "unterminated object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one shot; JSON text is valid UTF-8 here
            // because the input arrived as `&str`.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 inside JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape in JSON string"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xd800..0xdc00).contains(&first) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.parse_hex4()?;
                        if !(0xdc00..0xe000).contains(&second) {
                            return Err(Error::new("invalid low surrogate in JSON string"));
                        }
                        0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                    } else {
                        return Err(Error::new("lone surrogate in JSON string"));
                    }
                } else {
                    first
                };
                char::from_u32(code)
                    .ok_or_else(|| Error::new("invalid \\u escape in JSON string"))?
            }
            other => {
                return Err(Error::new(format!(
                    "invalid escape `\\{}` in JSON string",
                    other as char
                )))
            }
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| Error::new("truncated \\u escape in JSON string"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in JSON number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid JSON number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid JSON number `{text}`")))
        }
    }
}
