//! Vendored JSON front-end for the serde shim: `to_string` / `from_str` over
//! the shim's [`serde::Value`] tree. Floats print via Rust's shortest-exact
//! `{:?}` form, so `f32`/`f64` round-trip bit-exactly through text.

mod parse;
mod print;

use serde::{Deserialize, Serialize, Value};

/// JSON error (serialization or parsing), message-only like the serde shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::value_to_json(&value.serialize()))
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::json_to_value(text)?;
    Ok(T::deserialize(&value)?)
}

/// Parse JSON text into the generic [`Value`] tree.
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    parse::json_to_value(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}end";
        let json = to_string(original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀");
    }

    #[test]
    fn invalid_surrogate_pairs_are_rejected() {
        assert!(from_str::<String>(r#""\ud800""#).is_err());
        assert!(from_str::<String>(r#""\ud800A""#).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.25f64, -0.5, 1e300];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let pair = (3u32, 9u32);
        assert_eq!(
            from_str::<(u32, u32)>(&to_string(&pair).unwrap()).unwrap(),
            pair
        );

        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_text_is_bit_exact() {
        for &f in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 6.02214076e23] {
            assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
        }
        for &f in &[0.1f32, 1.0f32 / 3.0, f32::MIN_POSITIVE] {
            assert_eq!(from_str::<f32>(&to_string(&f).unwrap()).unwrap(), f);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("256").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }

    #[test]
    fn maps_preserve_order() {
        let value = from_str_value(r#"{"b": 1, "a": {"nested": [1, 2.5, "x"]}}"#).unwrap();
        let entries = value.as_map().unwrap();
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
    }
}
