//! Vendored, API-compatible subset of `criterion`: `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], and [`Bencher::iter`].
//!
//! Each benchmark warms up briefly, then runs timed batches until a small
//! wall-clock budget is exhausted and reports the median batch's ns/iter.
//! There is no statistical analysis or HTML report; the point is that
//! `cargo bench` compiles, runs, and prints stable per-iteration timings in
//! an environment without registry access. A positional CLI filter argument
//! (as passed by `cargo bench -- <filter>`) selects matching benchmarks.
//!
//! When the `DIFFTUNE_BENCH_JSON` environment variable names a directory,
//! each benchmark additionally writes its median as a
//! `BENCH_criterion_<id>.json` record in the `difftune-bench/2` schema (see
//! `difftune_bench::record::BenchRecord`), so criterion output and the
//! pipeline perf runner share one schema.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with flags like `--bench`; the
        // first non-flag argument is a name filter, as in real criterion.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        routine(&mut bencher);
        match median_ns(&mut bencher.samples) {
            Some(ns) => {
                println!("{id:<40} {ns:>12.1} ns/iter");
                emit_json_record(id, ns);
            }
            None => println!("{id:<40} {:>12} (no samples)", "-"),
        }
        self
    }

    /// Compatibility no-op: upstream criterion finalizes reports here.
    pub fn final_summary(&mut self) {}
}

pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also discovers a batch size that takes ~1ms per sample.
        let warmup_start = Instant::now();
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if warmup_start.elapsed() > WARMUP_BUDGET {
                break;
            }
            if elapsed < Duration::from_millis(1) && iters_per_sample < (1 << 20) {
                iters_per_sample *= 2;
            }
        }

        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Formats a benchmark median as a `difftune-bench/2` [`BenchRecord`]-shaped
/// JSON object (field order and names must match
/// `difftune_bench::record::BenchRecord`, which has a test pinning the two).
///
/// [`BenchRecord`]: https://docs.rs/difftune-bench
pub fn bench_record_json(id: &str, median_ns: f64) -> String {
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let wall_seconds = median_ns * 1e-9;
    let per_second = if median_ns > 0.0 {
        1e9 / median_ns
    } else {
        0.0
    };
    format!(
        "{{\"schema\":\"difftune-bench/2\",\"stage\":\"criterion:{escaped}\",\
         \"scale\":null,\"threads\":1,\"cpu_cores\":{cores},\"seed\":0,\
         \"wall_time_seconds\":{wall_seconds:?},\"samples\":0,\
         \"samples_per_second\":{per_second:?},\
         \"median_ns_per_iter\":{median_ns:?},\"table_fingerprint\":null,\
         \"speedup_vs_serial\":null,\"engine\":null,\
         \"speedup_vs_taped\":null}}"
    )
}

/// Writes the benchmark's JSON record into the directory named by
/// `DIFFTUNE_BENCH_JSON` (silently skipped when unset; write errors are
/// reported to stderr but never fail the benchmark run).
fn emit_json_record(id: &str, median_ns: f64) {
    let Ok(dir) = std::env::var("DIFFTUNE_BENCH_JSON") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let sanitized: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = std::path::Path::new(&dir).join(format!("BENCH_criterion_{sanitized}.json"));
    if let Err(error) = std::fs::write(&path, bench_record_json(id, median_ns)) {
        eprintln!("warning: could not write {}: {error}", path.display());
    }
}

fn median_ns(samples: &mut [f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("benchmark samples are finite"));
    Some(samples[samples.len() / 2])
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declare the benchmark harness entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness binary is invoked with `--test`;
            // benchmarks are expensive, so only smoke-run in that mode by
            // keeping the normal path (budgets are small enough to be quick).
            $( $group(); )+
        }
    };
}
