//! Vendored, API-compatible subset of `criterion`: `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], and [`Bencher::iter`].
//!
//! Each benchmark warms up briefly, then runs timed batches until a small
//! wall-clock budget is exhausted and reports the median batch's ns/iter.
//! There is no statistical analysis or HTML report; the point is that
//! `cargo bench` compiles, runs, and prints stable per-iteration timings in
//! an environment without registry access. A positional CLI filter argument
//! (as passed by `cargo bench -- <filter>`) selects matching benchmarks.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with flags like `--bench`; the
        // first non-flag argument is a name filter, as in real criterion.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        routine(&mut bencher);
        match median_ns(&mut bencher.samples) {
            Some(ns) => println!("{id:<40} {ns:>12.1} ns/iter"),
            None => println!("{id:<40} {:>12} (no samples)", "-"),
        }
        self
    }

    /// Compatibility no-op: upstream criterion finalizes reports here.
    pub fn final_summary(&mut self) {}
}

pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also discovers a batch size that takes ~1ms per sample.
        let warmup_start = Instant::now();
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if warmup_start.elapsed() > WARMUP_BUDGET {
                break;
            }
            if elapsed < Duration::from_millis(1) && iters_per_sample < (1 << 20) {
                iters_per_sample *= 2;
            }
        }

        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn median_ns(samples: &mut [f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("benchmark samples are finite"));
    Some(samples[samples.len() / 2])
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declare the benchmark harness entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness binary is invoked with `--test`;
            // benchmarks are expensive, so only smoke-run in that mode by
            // keeping the normal path (budgets are small enough to be quick).
            $( $group(); )+
        }
    };
}
