//! Deterministic generators. [`StdRng`] is xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// Drop-in stand-in for `rand::rngs::StdRng` (xoshiro256++ core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    fn from_splitmix(seed: u64) -> Self {
        let mut sm = SplitMix64 { state: seed };
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = sm.next();
        }
        // xoshiro256++ requires a non-zero state; SplitMix64 output from any
        // seed is astronomically unlikely to be all-zero, but stay total.
        if state == [0; 4] {
            state = [
                0x9e37_79b9_7f4a_7c15,
                0xd1b5_4a32_d192_ed03,
                0x8cb9_2ba7_2f3d_8dd7,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        Self { state }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self::from_splitmix(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
