//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! shim implements exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`] /
//! [`Rng::sample`], and [`seq::SliceRandom`]. The generator is xoshiro256++
//! seeded via SplitMix64: deterministic, fast, and of high enough statistical
//! quality for test-and-benchmark workloads. Streams differ from upstream
//! `rand`, which only matters to code asserting exact draw values.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::Distribution;

/// Core source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open (`a..b`) or inclusive (`a..=b`) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty inclusive range");
        T::sample_between(rng, low, high, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Inclusive range covering the full domain of a 128-bit type
                    // cannot occur for the integer widths in this workspace.
                    return low;
                }
                // Widening-multiply range reduction; bias is < 2^-64 per draw.
                let draw = rng.next_u64() as u128;
                let offset = (draw.wrapping_mul(span)) >> 64;
                (lo + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let sample = low + (high - low) * unit_f64(rng.next_u64());
        if sample < high {
            sample
        } else {
            // Guard against rounding up to the (exclusive) upper bound.
            f64::max(low, high - (high - low) * f64::EPSILON)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let sample = low + (high - low) * unit;
        if sample < high {
            sample
        } else {
            f32::max(low, high - (high - low) * f32::EPSILON)
        }
    }
}

/// Map a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}
