//! Slice sampling helpers (`choose`, `shuffle`).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniformly choose one element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut data: Vec<u32> = (0..32).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
