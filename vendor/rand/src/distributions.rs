//! The [`Distribution`] trait shared with the `rand_distr` shim.

use crate::Rng;

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}
