//! The [`Deserialize`] trait, its error type, and impls for std types.

use crate::Value;

/// Deserialization error: a message plus nothing else, like miniserde.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Extract a named struct field from a map's entries (derive-macro helper).
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => T::deserialize(value),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

/// Extract a positional element from a sequence (derive-macro helper).
pub fn element<T: Deserialize>(items: &[Value], index: usize) -> Result<T, Error> {
    match items.get(index) {
        Some(value) => T::deserialize(value),
        None => Err(Error::custom(format!("missing tuple element {index}"))),
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range for {}", stringify!($ty)))),
                    other => Err(Error::custom(format!(
                        "expected integer for {}, found {other:?}", stringify!($ty)
                    ))),
                }
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, found {value:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single-char string, found {s:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {value:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, found {value:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Deserialize + core::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected 2-tuple, found {value:?}")))?;
        Ok((element(items, 0)?, element(items, 1)?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected 3-tuple, found {value:?}")))?;
        Ok((element(items, 0)?, element(items, 1)?, element(items, 2)?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected 4-tuple, found {value:?}")))?;
        Ok((
            element(items, 0)?,
            element(items, 1)?,
            element(items, 2)?,
            element(items, 3)?,
        ))
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
