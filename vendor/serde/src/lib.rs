//! Vendored serialization framework compatible with how this workspace uses
//! `serde`: `#[derive(Serialize, Deserialize)]` plus `serde_json` round-trips.
//!
//! Instead of upstream serde's visitor architecture, values funnel through a
//! self-describing [`Value`] tree (miniserde-style). The derive macros in the
//! sibling `serde_derive` shim generate impls of the two traits below, and the
//! `serde_json` shim prints/parses `Value` as JSON text. The enum encoding
//! follows serde's externally-tagged default, so swapping the real crates back
//! in produces the same JSON for the types in this repository.

pub mod de;
pub mod ser;
mod value;

pub use de::{Deserialize, Error};
pub use ser::Serialize;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
