//! The self-describing value tree both traits funnel through.

/// A serialized value. Maps preserve insertion order so struct round-trips are
/// stable; integer and float values are kept distinct so `u64::MAX` survives.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}
