//! The [`Serialize`] trait and impls for std types used in the workspace.

use crate::Value;

pub trait Serialize {
    fn serialize(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
