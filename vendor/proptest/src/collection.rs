//! Collection strategies (`collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S: Strategy> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}
