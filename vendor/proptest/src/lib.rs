//! Vendored, API-compatible subset of `proptest`.
//!
//! The `proptest!` macro expands each property into a plain `#[test]` that
//! samples its arguments from [`Strategy`] values for a configurable number of
//! cases. Sampling is fully deterministic: case `i` of every test draws from a
//! generator seeded with `i`, so failures reproduce without a persistence
//! file. There is no shrinking — the failing case's inputs are printed
//! instead, which is enough to debug the properties in this workspace.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};

pub mod collection;

/// Subset of proptest's runner configuration honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    type Value: core::fmt::Debug;

    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for core::ops::Range<T>
where
    T: SampleUniform + core::fmt::Debug,
    core::ops::Range<T>: Clone,
{
    type Value = T;

    fn pick(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: SampleUniform + core::fmt::Debug,
    core::ops::RangeInclusive<T>: Clone + SampleRange<T>,
{
    type Value = T;

    fn pick(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategies over `Option<T>` (the subset of proptest's `option` module
/// this workspace uses).
pub mod option {
    use rand::rngs::StdRng;
    use rand::Rng;

    use super::Strategy;

    /// Yields `None` for about a quarter of cases and `Some` of the inner
    /// strategy's value otherwise (proptest's default `of` weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn pick(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.pick(rng))
            }
        }
    }
}

/// Deterministic per-case generator: every failure reproduces from the case
/// index alone.
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x7072_6f70_0000_0000 ^ case)
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Assert inside a property; failures report the failing case's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Expand properties into deterministic multi-case `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::case_rng(__case);
                    $( let $arg = $crate::Strategy::pick(&$strategy, &mut __rng); )*
                    let __inputs = format!(
                        concat!("case {}", $(" ", stringify!($arg), "={:?}",)*),
                        __case $(, $arg)*
                    );
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(__panic) = __outcome {
                        eprintln!("proptest failure in {} [{}]", stringify!($name), __inputs);
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}
