//! Vendored subset of `rand_distr`: the [`Distribution`] trait re-export and
//! the [`Geometric`] distribution used by the BHive corpus generator.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Geometric distribution: the number of failures before the first success in
/// a sequence of Bernoulli trials with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

/// Error raised for probabilities outside `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometricError;

impl core::fmt::Display for GeometricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("geometric distribution requires 0 < p <= 1")
    }
}

impl std::error::Error for GeometricError {}

impl Geometric {
    pub fn new(p: f64) -> Result<Self, GeometricError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Self { p })
        } else {
            Err(GeometricError)
        }
    }
}

impl Distribution<u64> for Geometric {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inversion: floor(ln(U) / ln(1 - p)) with U uniform in (0, 1].
        let u = 1.0 - rng.gen_range(0.0f64..1.0);
        let failures = (u.ln() / (1.0 - self.p).ln()).floor();
        if failures.is_finite() && failures >= 0.0 {
            failures.min(u64::MAX as f64) as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_probability() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
        assert!(Geometric::new(0.5).is_ok());
    }

    #[test]
    fn mean_matches_theory() {
        let dist = Geometric::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // E[failures] = (1 - p) / p = 3.
        assert!((mean - 3.0).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn p_one_is_always_zero() {
        let dist = Geometric::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| dist.sample(&mut rng) == 0));
    }
}
