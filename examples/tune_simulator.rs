//! End-to-end DiffTune: build a BHive-style dataset for Haswell, learn the
//! full llvm-mca parameter table from end-to-end measurements only, and
//! compare the simulator's test error before and after.
//!
//! Run with `cargo run --release --example tune_simulator`.
//! Set `DIFFTUNE_EXAMPLE_BLOCKS` to change the corpus size (default 1500).

use difftune_repro::bhive::{CorpusConfig, Dataset};
use difftune_repro::core::{
    DiffTuneBuilder, DiffTuneConfig, DiffTuneError, ParamSpec, ProgressEvent, SurrogateKind,
};
use difftune_repro::cpu::{default_params, Microarch};
use difftune_repro::sim::{McaSimulator, Simulator};
use difftune_repro::surrogate::FeatureMlpConfig;

fn main() -> Result<(), DiffTuneError> {
    let blocks: usize = std::env::var("DIFFTUNE_EXAMPLE_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let uarch = Microarch::Haswell;

    println!("building a {blocks}-block corpus measured on the {uarch} reference machine...");
    let dataset = Dataset::build(
        uarch,
        &CorpusConfig {
            num_blocks: blocks,
            seed: 0,
            ..CorpusConfig::default()
        },
    );
    let test = dataset.test();

    let simulator = McaSimulator::default();
    let defaults = default_params(uarch);
    let test_blocks: Vec<_> = test.iter().map(|r| r.block.clone()).collect();
    let (default_error, default_tau) =
        Dataset::evaluate_predictions(&test, &simulator.predict_batch(&defaults, &test_blocks));
    println!(
        "default parameters : error {:.1}%  tau {default_tau:.3}",
        default_error * 100.0
    );

    // A quick configuration using the fast feature-MLP surrogate; the bench
    // binaries use the paper's LSTM surrogate.
    let config = DiffTuneConfig {
        surrogate: SurrogateKind::Mlp(FeatureMlpConfig::default()),
        simulated_multiplier: 5.0,
        max_simulated: 10_000,
        table_epochs: 2,
        ..DiffTuneConfig::default()
    };
    let train: Vec<_> = dataset
        .train()
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect();
    println!(
        "running DiffTune ({} learned parameters)...",
        ParamSpec::llvm_mca().num_learned(defaults.num_opcodes())
    );
    // The staged session API: validate, observe progress, run each stage.
    let mut session = DiffTuneBuilder::new(config).build(
        &simulator,
        &ParamSpec::llvm_mca(),
        &defaults,
        &train,
    )?;
    session.add_observer(Box::new(|event: &ProgressEvent| {
        if let ProgressEvent::SurrogateEpoch {
            epoch,
            epochs,
            mean_loss,
        } = event
        {
            println!(
                "  surrogate epoch {}/{epochs}: loss {mean_loss:.4}",
                epoch + 1
            );
        }
    }));
    let samples = session.generate_dataset()?;
    println!("  simulated dataset: {samples} samples");
    session.fit_surrogate()?;
    session.optimize_table()?;
    let result = session.finish()?;

    let (initial_error, _) = Dataset::evaluate_predictions(
        &test,
        &simulator.predict_batch(&result.initial, &test_blocks),
    );
    let (learned_error, learned_tau) = Dataset::evaluate_predictions(
        &test,
        &simulator.predict_batch(&result.learned, &test_blocks),
    );
    println!("random initial table: error {:.1}%", initial_error * 100.0);
    println!(
        "learned parameters : error {:.1}%  tau {learned_tau:.3}",
        learned_error * 100.0
    );
    println!(
        "learned globals: DispatchWidth {} (default {}), ReorderBufferSize {} (default {})",
        result.learned.dispatch_width,
        defaults.dispatch_width,
        result.learned.reorder_buffer_size,
        defaults.reorder_buffer_size
    );
    Ok(())
}
