//! Inspect the llvm-mca-style pipeline: print the per-instruction timeline
//! (dispatch / issue / execute / retire cycles) of a block under the default
//! Haswell parameters, the way `llvm-mca -timeline` does.
//!
//! Run with `cargo run --release --example pipeline_timeline -- "addl %eax, 16(%rsp)"`
//! (the argument is optional; a default block is used otherwise).

use difftune_repro::cpu::{default_params, Machine, Microarch};
use difftune_repro::isa::BasicBlock;
use difftune_repro::sim::McaSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::env::args().nth(1).unwrap_or_else(|| {
        "movq (%rdi), %rax\naddq %rax, %rbx\nimulq %rbx, %rcx\nmovq %rcx, 8(%rdi)".to_string()
    });
    let block: BasicBlock = text.parse()?;

    let simulator = McaSimulator::new(4);
    let defaults = default_params(Microarch::Haswell);
    let timeline = simulator.trace(&defaults, &block);

    println!("timeline for 4 unrolled iterations under the default Haswell parameters:\n");
    println!(
        "{:<4} {:<4} {:>9} {:>7} {:>9} {:>7}  instruction",
        "it", "idx", "dispatch", "issue", "exec-end", "retire"
    );
    for entry in &timeline.entries {
        let inst = &block.insts()[entry.index];
        println!(
            "{:<4} {:<4} {:>9} {:>7} {:>9} {:>7}  {}",
            entry.iteration,
            entry.index,
            entry.dispatch,
            entry.issue,
            entry.execute_end,
            entry.retire,
            inst
        );
    }
    println!(
        "\npredicted cycles per iteration: {:.2}",
        timeline.cycles_per_iteration()
    );

    let machine = Machine::new(Microarch::Haswell);
    println!(
        "reference-machine measurement:  {:.2}",
        machine.measure(&block)
    );
    Ok(())
}
