//! Quickstart: parse a basic block, measure it on a reference machine, and
//! compare the llvm-mca-style simulator's prediction under the default
//! (expert-provided) parameters.
//!
//! Run with `cargo run --release --example quickstart`.

use difftune_repro::cpu::{default_params, Machine, Microarch};
use difftune_repro::isa::BasicBlock;
use difftune_repro::sim::{McaSimulator, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's PUSH64r case-study block.
    let block: BasicBlock = "pushq %rbx\ntestl %r8d, %r8d".parse()?;
    println!("block:\n{block}\n");

    // "Measure" the block on the Haswell reference machine (the stand-in for
    // real silicon in this reproduction).
    let machine = Machine::new(Microarch::Haswell);
    let measured = machine.measure(&block);
    println!("measured timing (cycles/iteration): {measured:.2}");

    // Predict it with the llvm-mca-style simulator under the expert defaults.
    let simulator = McaSimulator::default();
    let defaults = default_params(Microarch::Haswell);
    let predicted = simulator.predict(&defaults, &block);
    println!("llvm-mca prediction with default parameters: {predicted:.2}");
    println!(
        "relative error: {:.1}%",
        (predicted - measured).abs() / measured * 100.0
    );

    // The default WriteLatency for PUSH64r documents the store pipeline (2
    // cycles); the hardware's stack engine makes the dependency free. This is
    // exactly the kind of mismatch DiffTune learns away — see the
    // `tune_simulator` example and `cargo run -p difftune-bench --bin case_studies`.
    let push = difftune_repro::isa::OpcodeRegistry::global()
        .by_name("PUSH64r")
        .expect("PUSH64r exists");
    println!(
        "default WriteLatency for PUSH64r: {}",
        defaults.inst(push).write_latency
    );
    Ok(())
}
