//! Compare non-learned predictors on a small Skylake dataset: the llvm-mca
//! style simulator with default parameters, the IACA-style analytical model,
//! and an OpenTuner-style black-box search with a small budget.
//!
//! Run with `cargo run --release --example compare_baselines`.

use difftune_repro::bhive::{CorpusConfig, Dataset};
use difftune_repro::cpu::{default_params, AnalyticalModel, Microarch};
use difftune_repro::opentuner::{BanditTuner, SearchSpace, TunerConfig};
use difftune_repro::sim::{McaSimulator, ParamBounds, SimParams, Simulator};

fn main() {
    let uarch = Microarch::Skylake;
    let dataset = Dataset::build(
        uarch,
        &CorpusConfig {
            num_blocks: 1200,
            seed: 4,
            ..CorpusConfig::default()
        },
    );
    let test = dataset.test();
    let simulator = McaSimulator::default();

    let defaults = default_params(uarch);
    let test_blocks: Vec<_> = test.iter().map(|r| r.block.clone()).collect();
    let (default_error, default_tau) =
        Dataset::evaluate_predictions(&test, &simulator.predict_batch(&defaults, &test_blocks));
    println!(
        "{:<22} error {:>6.1}%  tau {default_tau:.3}",
        "llvm-mca (default)",
        default_error * 100.0
    );

    let analytical = AnalyticalModel::new(uarch).expect("Skylake is an Intel target");
    let (analytical_error, analytical_tau) = Dataset::evaluate(&test, |b| analytical.predict(b));
    println!(
        "{:<22} error {:>6.1}%  tau {analytical_tau:.3}",
        "analytical (IACA-like)",
        analytical_error * 100.0
    );

    // Black-box search over the full 10k-dimensional table with a tiny budget:
    // this is the experiment showing why gradient-based search is needed.
    let train = dataset.train();
    let subsample: Vec<_> = train.iter().take(60).copied().collect();
    let flat_len = defaults.to_flat().len();
    let mut lower = vec![0.0; flat_len];
    let mut upper = vec![5.0; flat_len];
    lower[0] = 1.0;
    upper[0] = 10.0;
    lower[1] = 50.0;
    upper[1] = 250.0;
    let mut tuner = BanditTuner::new(SearchSpace::new(lower, upper), TunerConfig::default());
    let bounds = ParamBounds::default();
    let subsample_blocks: Vec<_> = subsample.iter().map(|r| r.block.clone()).collect();
    let result = tuner.optimize(
        |flat| {
            let params = SimParams::from_flat(flat, &bounds);
            let predictions = simulator.predict_batch(&params, &subsample_blocks);
            Dataset::evaluate_predictions(&subsample, &predictions).0
        },
        150,
    );
    let tuned = SimParams::from_flat(&result.best, &bounds);
    let (tuned_error, tuned_tau) =
        Dataset::evaluate_predictions(&test, &simulator.predict_batch(&tuned, &test_blocks));
    println!(
        "{:<22} error {:>6.1}%  tau {tuned_tau:.3}",
        "OpenTuner-style",
        tuned_error * 100.0
    );
    println!("\n(black-box search over {flat_len} dimensions cannot compete at this budget;\n run `cargo run -p difftune-bench --bin table4_error` for the full comparison)");
}
