//! Scenario-matrix quickstart: tune two cells of the
//! `Simulator × Microarch × ParamSpec` matrix at smoke scale and print the
//! learned-vs-default scores per hardware-resource category.
//!
//! The full sweep is driven by the `difftune-matrix` binary
//! (`cargo run --release -p difftune-bench --bin difftune-matrix`); this
//! example shows the same subsystem through the library API.
//!
//! ```sh
//! cargo run --release --example scenario_matrix
//! ```

use difftune_bench::matrix::{run_matrix, CellKey, MatrixOptions};
use difftune_bench::Scale;

fn main() {
    let out_dir = std::env::temp_dir().join(format!("difftune-example-{}", std::process::id()));
    let options = MatrixOptions {
        cells: Some(vec![
            CellKey::parse("mca:haswell:llvm_mca").expect("valid cell"),
            CellKey::parse("uop:haswell:llvm_sim").expect("valid cell"),
        ]),
        ..MatrixOptions::new(Scale::Smoke, &out_dir)
    };

    let outcome = run_matrix(&options).unwrap_or_else(|error| panic!("sweep failed: {error}"));

    for record in &outcome.summary.records {
        println!(
            "cell {} (seed {:#x}): {} learned parameters over {} train blocks",
            record.cell, record.seed, record.num_learned_parameters, record.train_blocks
        );
        println!(
            "  overall      default {:>6.1}% MAPE / {:.3} tau   learned {:>6.1}% MAPE / {:.3} tau",
            record.default_mape * 100.0,
            record.default_tau,
            record.learned_mape * 100.0,
            record.learned_tau,
        );
        for category in &record.by_category {
            println!(
                "  {:<12} default {:>6.1}% MAPE / {:.3} tau   learned {:>6.1}% MAPE / {:.3} tau   ({} blocks)",
                category.category,
                category.default_mape * 100.0,
                category.default_tau,
                category.learned_mape * 100.0,
                category.learned_tau,
                category.blocks,
            );
        }
    }
    println!(
        "artifacts: {} (one MATRIX_*.json per cell + MATRIX_summary.json)",
        out_dir.display()
    );

    std::fs::remove_dir_all(&out_dir).ok();
}
