//! Criterion microbenchmarks for the fused SIMD-width kernels.
//!
//! These time the raw inner loops both execution engines share — the 4-lane
//! dot/matvec, the fused matvec+bias (`Linear::forward`), and the fused
//! LSTM gate step — plus their backward kernels, at the layer sizes the
//! default Ithemal-style surrogate actually runs (64-dim hidden states).
//! With `DIFFTUNE_BENCH_JSON` set, each median lands in a
//! `BENCH_criterion_<id>.json` record (`difftune-bench/2` schema) next to
//! the pipeline runner's stage records.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use difftune_tensor::kernels;

/// Deterministic pseudo-random fill; benches must not depend on rand.
fn filled(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        })
        .collect()
}

fn bench_matvec(criterion: &mut Criterion) {
    let (m, n) = (64, 64);
    let w = filled(m * n, 1);
    let x = filled(n, 2);
    let b = filled(m, 3);
    let mut out = vec![0.0f32; m];
    criterion.bench_function("kernels/matvec 64x64", |bencher| {
        bencher.iter(|| {
            kernels::matvec(black_box(&w), black_box(&x), m, n, &mut out);
            out[0]
        })
    });
    criterion.bench_function("kernels/linear 64x64", |bencher| {
        bencher.iter(|| {
            kernels::linear(black_box(&w), black_box(&b), black_box(&x), m, n, &mut out);
            out[0]
        })
    });
    let g = filled(m, 4);
    let mut dw = vec![0.0f32; m * n];
    let mut db = vec![0.0f32; m];
    let mut dx = vec![0.0f32; n];
    criterion.bench_function("kernels/linear_grad 64x64", |bencher| {
        bencher.iter(|| {
            dw.iter_mut().for_each(|v| *v = 0.0);
            db.iter_mut().for_each(|v| *v = 0.0);
            dx.iter_mut().for_each(|v| *v = 0.0);
            kernels::linear_grad(
                black_box(&w),
                black_box(&x),
                black_box(&g),
                m,
                n,
                &mut dw,
                &mut db,
                &mut dx,
            );
            dx[0]
        })
    });
}

fn bench_lstm_step(criterion: &mut Criterion) {
    let (hidden, input) = (64, 64);
    let width = input + hidden;
    let w = filled(4 * hidden * width, 5);
    let b = filled(4 * hidden, 6);
    let x = filled(input, 7);
    let h_prev = filled(hidden, 8);
    let c_prev = filled(hidden, 9);
    let mut packed = vec![0.0f32; kernels::lstm_packed_len(hidden)];
    criterion.bench_function("kernels/lstm_step h=64", |bencher| {
        bencher.iter(|| {
            kernels::lstm_step(
                black_box(&w),
                black_box(&b),
                black_box(&x),
                black_box(&h_prev),
                black_box(&c_prev),
                hidden,
                input,
                &mut packed,
            );
            packed[0]
        })
    });

    kernels::lstm_step(&w, &b, &x, &h_prev, &c_prev, hidden, input, &mut packed);
    let mut g_packed = vec![0.0f32; kernels::lstm_packed_len(hidden)];
    for (i, slot) in g_packed[..2 * hidden].iter_mut().enumerate() {
        *slot = 0.01 * (i as f32 + 1.0);
    }
    let mut dw = vec![0.0f32; 4 * hidden * width];
    let mut db = vec![0.0f32; 4 * hidden];
    let mut dx = vec![0.0f32; input];
    let mut dh_prev = vec![0.0f32; hidden];
    let mut dc_prev = vec![0.0f32; hidden];
    criterion.bench_function("kernels/lstm_step_grad h=64", |bencher| {
        bencher.iter(|| {
            dw.iter_mut().for_each(|v| *v = 0.0);
            db.iter_mut().for_each(|v| *v = 0.0);
            dx.iter_mut().for_each(|v| *v = 0.0);
            dh_prev.iter_mut().for_each(|v| *v = 0.0);
            dc_prev.iter_mut().for_each(|v| *v = 0.0);
            kernels::lstm_step_grad(
                black_box(&w),
                black_box(&x),
                black_box(&h_prev),
                black_box(&c_prev),
                black_box(&packed),
                black_box(&g_packed),
                hidden,
                input,
                &mut dw,
                &mut db,
                &mut dx,
                &mut dh_prev,
                &mut dc_prev,
            );
            dx[0]
        })
    });
}

criterion_group!(kernel_benches, bench_matvec, bench_lstm_step);
criterion_main!(kernel_benches);
