//! The computation graph (tape), reverse-mode differentiation, and the
//! reusable tape arena.
//!
//! # The arena API
//!
//! Training builds one tape per sample, and the tape's node values and
//! gradient buffers used to be allocated fresh every time. A [`TapeArena`]
//! removes that churn: [`TapeArena::scoped`] lends the arena's node storage,
//! backward scratch, and buffer pool to a graph for the duration of a
//! closure, then recycles every buffer back into the arena instead of
//! freeing it. After the first few samples a training loop runs entirely on
//! recycled memory.
//!
//! The arena only changes where backing memory comes from — every buffer is
//! fully overwritten before it is read, so a graph built in a reused arena
//! computes bit-identical values and gradients to one built with
//! [`Graph::new`] (unit-tested below, property-tested via the
//! [`Batch`](crate::Batch) engine).

use crate::compile::Binder;
use crate::kernels;
use crate::params::{Grads, ParamId, Params};
use crate::Tensor;

/// A node handle within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// A leaf referencing a trainable parameter.
    Param(ParamId),
    /// A leaf holding constant input data.
    Input,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatVec {
        w: Var,
        x: Var,
    },
    /// Fused `w · x + b` (see [`kernels::linear`]).
    Linear {
        w: Var,
        b: Var,
        x: Var,
    },
    /// Fused LSTM cell step producing the packed `[h, c, i, f, g, o, c_act]`
    /// buffer of [`kernels::lstm_step`]; consumers reach `h` and `c` through
    /// the two [`Op::Slice`] nodes [`Graph::lstm_step`] appends.
    LstmStep {
        w: Var,
        b: Var,
        x: Var,
        h_prev: Var,
        c_prev: Var,
        hidden: usize,
    },
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Abs(Var),
    Concat(Vec<Var>),
    Slice {
        src: Var,
        start: usize,
        len: usize,
    },
    Row {
        table: Var,
        row: usize,
    },
    Sum(Var),
    Mean(Var),
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Tensor,
}

/// A pool of recycled `Vec<f32>` buffers.
///
/// Buffers are handed out cleared (length zero) with at least the requested
/// capacity reserved, so reuse can never leak stale values into a
/// computation.
#[derive(Debug, Default)]
struct BufferPool {
    buffers: Vec<Vec<f32>>,
}

impl BufferPool {
    /// Pops a cleared buffer, reserving at least `capacity` elements.
    fn take(&mut self, capacity: usize) -> Vec<f32> {
        match self.buffers.pop() {
            Some(mut buffer) => {
                buffer.clear();
                buffer.reserve(capacity);
                buffer
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a buffer to the pool (zero-capacity buffers are not worth
    /// keeping).
    fn put(&mut self, buffer: Vec<f32>) {
        if buffer.capacity() > 0 {
            self.buffers.push(buffer);
        }
    }

    /// Recycles a tensor's backing buffer.
    fn put_tensor(&mut self, tensor: Tensor) {
        self.put(tensor.into_data());
    }
}

/// Preallocated tape storage reused across [`Graph`]s.
///
/// Build graphs against the arena with [`TapeArena::scoped`]; when the
/// closure returns, the graph's node table, backward scratch, and every
/// tensor buffer are recycled back into the arena. One arena serves one
/// graph at a time; use one arena per worker thread for parallel training —
/// that is exactly what [`Batch`](crate::Batch) does.
#[derive(Debug, Default)]
pub struct TapeArena {
    nodes: Vec<Node>,
    scratch: Vec<Option<Tensor>>,
    pool: BufferPool,
}

impl TapeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TapeArena::default()
    }

    /// Runs `f` with a graph whose tape storage comes from this arena and is
    /// recycled (not freed) when `f` returns.
    ///
    /// Values and gradients are bit-identical to a graph built with
    /// [`Graph::new`]; only the allocation behavior differs. If `f` panics,
    /// the borrowed storage is dropped with the graph and the arena starts
    /// over empty — correct either way, since buffers are always fully
    /// overwritten before use.
    pub fn scoped<R>(&mut self, params: &Params, f: impl FnOnce(&mut Graph<'_>) -> R) -> R {
        let mut graph = Graph {
            params,
            nodes: std::mem::take(&mut self.nodes),
            scratch: std::mem::take(&mut self.scratch),
            pool: std::mem::take(&mut self.pool),
            bind: None,
        };
        let result = f(&mut graph);
        let mut pool = std::mem::take(&mut graph.pool);
        for node in graph.nodes.drain(..) {
            // Input tensors were allocated by the caller, not drawn from the
            // pool; recycling them would grow the pool without bound (one
            // orphan buffer per input per tape). Every other node's buffer
            // came from the pool, so takes and puts stay balanced.
            if !matches!(node.op, Op::Input) {
                pool.put_tensor(node.value);
            }
        }
        for slot in graph.scratch.drain(..).flatten() {
            pool.put_tensor(slot);
        }
        self.nodes = std::mem::take(&mut graph.nodes);
        self.scratch = std::mem::take(&mut graph.scratch);
        self.pool = pool;
        result
    }

    /// Number of buffers currently parked in the pool (useful for asserting
    /// reuse in tests and diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.buffers.len()
    }
}

/// A dynamically built computation graph over a borrowed parameter store.
///
/// Graphs are cheap, single-use objects: build one per sample (or per
/// forward/backward pass), call [`Graph::backward`], and drop it. In hot
/// loops, build them inside a [`TapeArena`] with [`TapeArena::scoped`] so
/// the per-sample allocations are recycled instead of freed.
#[derive(Debug)]
pub struct Graph<'p> {
    params: &'p Params,
    nodes: Vec<Node>,
    scratch: Vec<Option<Tensor>>,
    pool: BufferPool,
    /// When `Some`, the graph is in **bind mode**: op methods validate the
    /// call against a [`CompiledProgram`](crate::CompiledProgram)'s recorded
    /// schedule and capture dynamic data (input tensors, row indices,
    /// scalar constants) instead of computing values. [`Graph::value`] and
    /// [`Graph::backward`] are unavailable in this mode — the program's
    /// `replay` does the computing.
    bind: Option<Box<Binder>>,
}

impl<'p> Graph<'p> {
    /// Creates an empty graph over a parameter store.
    pub fn new(params: &'p Params) -> Self {
        Graph {
            params,
            nodes: Vec::with_capacity(64),
            scratch: Vec::new(),
            pool: BufferPool::default(),
            bind: None,
        }
    }

    /// Creates a graph in bind mode over a compiled program (see the `bind`
    /// field docs); used exclusively by `CompiledProgram::replay`.
    pub(crate) fn bound(params: &'p Params, binder: Box<Binder>) -> Self {
        Graph {
            params,
            nodes: Vec::new(),
            scratch: Vec::new(),
            pool: BufferPool::default(),
            bind: Some(binder),
        }
    }

    /// Takes the binder back out of a bind-mode graph.
    pub(crate) fn take_binder(&mut self) -> Option<Box<Binder>> {
        self.bind.take()
    }

    /// The number of recorded tape nodes (compile-time accessor).
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A recorded node's op (compile-time accessor).
    pub(crate) fn node_op(&self, index: usize) -> &Op {
        &self.nodes[index].op
    }

    /// A recorded node's value length (compile-time accessor).
    pub(crate) fn node_len(&self, index: usize) -> usize {
        self.nodes[index].value.len()
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// The computed value of a node as a slice.
    pub fn value(&self, var: Var) -> &[f32] {
        self.nodes[var.0].value.data()
    }

    /// The computed value of a node as a tensor.
    pub fn value_tensor(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// A leaf node referencing a trainable parameter; gradients flow into the
    /// corresponding [`Grads`] slot during [`Graph::backward`].
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.param(id);
        }
        let params = self.params;
        let src = params.get(id);
        let mut data = self.pool.take(src.len());
        data.extend_from_slice(src.data());
        let value = Tensor::from_vec(data, src.shape().to_vec());
        self.push(Op::Param(id), value)
    }

    /// A constant input leaf (no gradient).
    pub fn input(&mut self, value: Tensor) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.input(&value);
        }
        self.push(Op::Input, value)
    }

    /// [`Graph::input`] from a borrowed tensor. In bind mode the data is
    /// copied straight into the replay arena with no intermediate clone —
    /// the fast path for per-sample feature tensors that outlive the graph;
    /// on the tape it clones, exactly like [`Graph::input`].
    pub fn input_ref(&mut self, value: &Tensor) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.input(value);
        }
        self.push(Op::Input, value.clone())
    }

    /// Computes an elementwise unary op into a pooled buffer.
    fn map(&mut self, a: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let len = self.nodes[a.0].value.len();
        let mut out = self.pool.take(len);
        let src = &self.nodes[a.0].value;
        out.extend(src.data().iter().map(|&x| f(x)));
        Tensor::from_vec(out, src.shape().to_vec())
    }

    /// Computes an elementwise binary op into a pooled buffer.
    fn zip(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let len = self.nodes[a.0].value.len();
        let mut out = self.pool.take(len);
        let at = &self.nodes[a.0].value;
        let bt = &self.nodes[b.0].value;
        assert_eq!(
            at.shape(),
            bt.shape(),
            "elementwise shape mismatch: {:?} vs {:?}",
            at.shape(),
            bt.shape()
        );
        out.extend(at.data().iter().zip(bt.data()).map(|(&x, &y)| f(x, y)));
        Tensor::from_vec(out, at.shape().to_vec())
    }

    /// Elementwise addition. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.add(a, b);
        }
        let value = self.zip(a, b, |x, y| x + y);
        self.push(Op::Add(a, b), value)
    }

    /// Elementwise subtraction (`a - b`). Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.sub(a, b);
        }
        let value = self.zip(a, b, |x, y| x - y);
        self.push(Op::Sub(a, b), value)
    }

    /// Elementwise multiplication. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.mul(a, b);
        }
        let value = self.zip(a, b, |x, y| x * y);
        self.push(Op::Mul(a, b), value)
    }

    /// Multiplies every element by a constant.
    ///
    /// The factor is a per-call dynamic value: compiled replays rebind it, so
    /// sample-dependent scales (e.g. `1 / target`) work in both engines.
    pub fn scale(&mut self, a: Var, factor: f32) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.scale(a, factor);
        }
        let value = self.map(a, |x| x * factor);
        self.push(Op::Scale(a, factor), value)
    }

    /// Adds a constant to every element (rebound per replay, like
    /// [`Graph::scale`]).
    pub fn add_scalar(&mut self, a: Var, constant: f32) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.add_scalar(a, constant);
        }
        let value = self.map(a, |x| x + constant);
        self.push(Op::AddScalar(a), value)
    }

    /// Matrix-vector product `w · x` where `w` is `[m, n]` and `x` is `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn matvec(&mut self, w: Var, x: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.matvec(w, x);
        }
        let (m, n) = {
            let wt = &self.nodes[w.0].value;
            let xt = &self.nodes[x.0].value;
            assert_eq!(wt.shape().len(), 2, "matvec weight must be a matrix");
            let (m, n) = (wt.rows(), wt.cols());
            assert_eq!(
                xt.len(),
                n,
                "matvec shape mismatch: [{m}, {n}] · [{}]",
                xt.len()
            );
            (m, n)
        };
        let mut out = self.pool.take(m);
        out.resize(m, 0.0);
        kernels::matvec(
            self.nodes[w.0].value.data(),
            self.nodes[x.0].value.data(),
            m,
            n,
            &mut out,
        );
        self.push(Op::MatVec { w, x }, Tensor::vector(out))
    }

    /// Fused linear layer `w · x + b` — one pass over `w` instead of a
    /// matvec node plus an add node (see [`kernels::linear`]).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not `[m, n]`, `b` not `[m]`, or `x` not `[n]`.
    pub fn linear(&mut self, w: Var, b: Var, x: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.linear(w, b, x);
        }
        let (m, n) = {
            let wt = &self.nodes[w.0].value;
            assert_eq!(wt.shape().len(), 2, "linear weight must be a matrix");
            (wt.rows(), wt.cols())
        };
        let mut out = self.pool.take(m);
        out.resize(m, 0.0);
        kernels::linear(
            self.nodes[w.0].value.data(),
            self.nodes[b.0].value.data(),
            self.nodes[x.0].value.data(),
            m,
            n,
            &mut out,
        );
        self.push(Op::Linear { w, b, x }, Tensor::vector(out))
    }

    /// Fused LSTM cell step over gate-packed weights (see
    /// [`kernels::lstm_step`] for the weight layout). Returns the
    /// `(h, c)` state pair as slice views of the packed gate buffer.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes disagree with `hidden` and `x`'s length.
    pub fn lstm_step(
        &mut self,
        w: Var,
        b: Var,
        x: Var,
        h_prev: Var,
        c_prev: Var,
        hidden: usize,
    ) -> (Var, Var) {
        let packed = if let Some(bind) = self.bind.as_mut() {
            bind.lstm_step(w, b, x, h_prev, c_prev, hidden)
        } else {
            let input = self.nodes[x.0].value.len();
            let mut out = self.pool.take(kernels::lstm_packed_len(hidden));
            out.resize(kernels::lstm_packed_len(hidden), 0.0);
            kernels::lstm_step(
                self.nodes[w.0].value.data(),
                self.nodes[b.0].value.data(),
                self.nodes[x.0].value.data(),
                self.nodes[h_prev.0].value.data(),
                self.nodes[c_prev.0].value.data(),
                hidden,
                input,
                &mut out,
            );
            self.push(
                Op::LstmStep {
                    w,
                    b,
                    x,
                    h_prev,
                    c_prev,
                    hidden,
                },
                Tensor::vector(out),
            )
        };
        let h = self.slice(packed, 0, hidden);
        let c = self.slice(packed, hidden, hidden);
        (h, c)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.sigmoid(a);
        }
        let value = self.map(a, kernels::sigmoid);
        self.push(Op::Sigmoid(a), value)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.tanh(a);
        }
        let value = self.map(a, f32::tanh);
        self.push(Op::Tanh(a), value)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.relu(a);
        }
        let value = self.map(a, |x| x.max(0.0));
        self.push(Op::Relu(a), value)
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.abs(a);
        }
        let value = self.map(a, f32::abs);
        self.push(Op::Abs(a), value)
    }

    /// Concatenates vectors into one vector.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.concat(parts);
        }
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.len()).sum();
        let mut data = self.pool.take(total);
        for part in parts {
            data.extend_from_slice(self.nodes[part.0].value.data());
        }
        self.push(Op::Concat(parts.to_vec()), Tensor::vector(data))
    }

    /// A contiguous slice `[start, start + len)` of a vector.
    ///
    /// # Panics
    ///
    /// Panics if the slice is out of range.
    pub fn slice(&mut self, src: Var, start: usize, len: usize) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.slice(src, start, len);
        }
        let mut data = self.pool.take(len);
        data.extend_from_slice(&self.nodes[src.0].value.data()[start..start + len]);
        self.push(Op::Slice { src, start, len }, Tensor::vector(data))
    }

    /// Row `row` of a matrix-valued node (used for embedding lookups).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a matrix or the row is out of range.
    pub fn row(&mut self, table: Var, row: usize) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.row(table, row);
        }
        let cols = self.nodes[table.0].value.cols();
        let mut data = self.pool.take(cols);
        data.extend_from_slice(self.nodes[table.0].value.row(row));
        self.push(Op::Row { table, row }, Tensor::vector(data))
    }

    /// Sum of all elements (produces a scalar).
    pub fn sum(&mut self, a: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.sum(a);
        }
        let total: f32 = self.nodes[a.0].value.data().iter().sum();
        let mut data = self.pool.take(1);
        data.push(total);
        self.push(Op::Sum(a), Tensor::vector(data))
    }

    /// Mean of all elements (produces a scalar).
    pub fn mean(&mut self, a: Var) -> Var {
        if let Some(bind) = self.bind.as_mut() {
            return bind.mean(a);
        }
        let mean = {
            let t = &self.nodes[a.0].value;
            if t.is_empty() {
                0.0
            } else {
                t.data().iter().sum::<f32>() / t.len() as f32
            }
        };
        let mut data = self.pool.take(1);
        data.push(mean);
        self.push(Op::Mean(a), Tensor::vector(data))
    }

    /// Runs reverse-mode differentiation from `loss` (which must be a scalar
    /// node), accumulating parameter gradients into `grads` with weight
    /// `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element node.
    pub fn backward(&mut self, loss: Var, grads: &mut Grads) {
        self.backward_scaled(loss, grads, 1.0);
    }

    /// Like [`Graph::backward`] but seeds the loss gradient with `seed`
    /// (useful for averaging over a batch without rescaling afterwards).
    pub fn backward_scaled(&mut self, loss: Var, grads: &mut Grads, seed: f32) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss"
        );
        let mut node_grads = std::mem::take(&mut self.scratch);
        node_grads.clear();
        node_grads.resize_with(self.nodes.len(), || None);
        let mut seed_data = self.pool.take(1);
        seed_data.push(seed);
        node_grads[loss.0] = Some(Tensor::vector(seed_data));

        for index in (0..self.nodes.len()).rev() {
            let Some(grad) = node_grads[index].take() else {
                continue;
            };
            let node = &self.nodes[index];
            match &node.op {
                Op::Input => {}
                Op::Param(id) => grads.accumulate(*id, &grad, 1.0),
                Op::Add(a, b) => {
                    add_grad(&mut node_grads, &mut self.pool, *a, grad.data(), 1.0);
                    add_grad(&mut node_grads, &mut self.pool, *b, grad.data(), 1.0);
                }
                Op::Sub(a, b) => {
                    add_grad(&mut node_grads, &mut self.pool, *a, grad.data(), 1.0);
                    add_grad(&mut node_grads, &mut self.pool, *b, grad.data(), -1.0);
                }
                Op::Mul(a, b) => {
                    let mut bv = self.pool.take(grad.len());
                    bv.extend(
                        grad.data()
                            .iter()
                            .zip(self.nodes[b.0].value.data())
                            .map(|(g, v)| g * v),
                    );
                    let mut av = self.pool.take(grad.len());
                    av.extend(
                        grad.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(g, v)| g * v),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, bv);
                    add_grad_owned(&mut node_grads, &mut self.pool, *b, av);
                }
                Op::Scale(a, factor) => {
                    add_grad(&mut node_grads, &mut self.pool, *a, grad.data(), *factor)
                }
                Op::AddScalar(a) => add_grad(&mut node_grads, &mut self.pool, *a, grad.data(), 1.0),
                Op::MatVec { w, x } => {
                    let wt = &self.nodes[w.0].value;
                    let xt = &self.nodes[x.0].value;
                    let (m, n) = (wt.rows(), wt.cols());
                    let mut dw = self.pool.take(m * n);
                    dw.resize(m * n, 0.0);
                    let mut dx = self.pool.take(n);
                    dx.resize(n, 0.0);
                    kernels::matvec_grad(wt.data(), xt.data(), grad.data(), m, n, &mut dw, &mut dx);
                    add_grad_shaped(
                        &mut node_grads,
                        &mut self.pool,
                        *w,
                        Tensor::matrix(m, n, dw),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *x, dx);
                }
                Op::Linear { w, b, x } => {
                    let wt = &self.nodes[w.0].value;
                    let xt = &self.nodes[x.0].value;
                    let (m, n) = (wt.rows(), wt.cols());
                    let mut dw = self.pool.take(m * n);
                    dw.resize(m * n, 0.0);
                    let mut db = self.pool.take(m);
                    db.resize(m, 0.0);
                    let mut dx = self.pool.take(n);
                    dx.resize(n, 0.0);
                    kernels::linear_grad(
                        wt.data(),
                        xt.data(),
                        grad.data(),
                        m,
                        n,
                        &mut dw,
                        &mut db,
                        &mut dx,
                    );
                    add_grad_shaped(
                        &mut node_grads,
                        &mut self.pool,
                        *w,
                        Tensor::matrix(m, n, dw),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *b, db);
                    add_grad_owned(&mut node_grads, &mut self.pool, *x, dx);
                }
                Op::LstmStep {
                    w,
                    b,
                    x,
                    h_prev,
                    c_prev,
                    hidden,
                } => {
                    let hidden = *hidden;
                    let input = self.nodes[x.0].value.len();
                    let width = input + hidden;
                    let mut dw = self.pool.take(4 * hidden * width);
                    dw.resize(4 * hidden * width, 0.0);
                    let mut db = self.pool.take(4 * hidden);
                    db.resize(4 * hidden, 0.0);
                    let mut dx = self.pool.take(input);
                    dx.resize(input, 0.0);
                    let mut dh = self.pool.take(hidden);
                    dh.resize(hidden, 0.0);
                    let mut dc = self.pool.take(hidden);
                    dc.resize(hidden, 0.0);
                    kernels::lstm_step_grad(
                        self.nodes[w.0].value.data(),
                        self.nodes[x.0].value.data(),
                        self.nodes[h_prev.0].value.data(),
                        self.nodes[c_prev.0].value.data(),
                        node.value.data(),
                        grad.data(),
                        hidden,
                        input,
                        &mut dw,
                        &mut db,
                        &mut dx,
                        &mut dh,
                        &mut dc,
                    );
                    add_grad_shaped(
                        &mut node_grads,
                        &mut self.pool,
                        *w,
                        Tensor::matrix(4 * hidden, width, dw),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *b, db);
                    add_grad_owned(&mut node_grads, &mut self.pool, *x, dx);
                    add_grad_owned(&mut node_grads, &mut self.pool, *h_prev, dh);
                    add_grad_owned(&mut node_grads, &mut self.pool, *c_prev, dc);
                }
                Op::Sigmoid(a) => {
                    let mut d = self.pool.take(grad.len());
                    d.extend(
                        grad.data()
                            .iter()
                            .zip(node.value.data())
                            .map(|(g, y)| g * y * (1.0 - y)),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, d);
                }
                Op::Tanh(a) => {
                    let mut d = self.pool.take(grad.len());
                    d.extend(
                        grad.data()
                            .iter()
                            .zip(node.value.data())
                            .map(|(g, y)| g * (1.0 - y * y)),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, d);
                }
                Op::Relu(a) => {
                    let mut d = self.pool.take(grad.len());
                    d.extend(
                        grad.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 }),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, d);
                }
                Op::Abs(a) => {
                    let mut d = self.pool.take(grad.len());
                    d.extend(
                        grad.data()
                            .iter()
                            .zip(self.nodes[a.0].value.data())
                            .map(|(g, x)| if *x >= 0.0 { *g } else { -*g }),
                    );
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, d);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for part in parts {
                        let len = self.nodes[part.0].value.len();
                        add_grad(
                            &mut node_grads,
                            &mut self.pool,
                            *part,
                            &grad.data()[offset..offset + len],
                            1.0,
                        );
                        offset += len;
                    }
                }
                Op::Slice { src, start, len } => {
                    let total = self.nodes[src.0].value.len();
                    let mut d = self.pool.take(total);
                    d.resize(total, 0.0);
                    d[*start..*start + *len].copy_from_slice(grad.data());
                    add_grad_owned(&mut node_grads, &mut self.pool, *src, d);
                }
                Op::Row { table, row } => {
                    // Fast path: embedding tables are parameter leaves, so the
                    // gradient can be scattered sparsely without materializing a
                    // dense table-sized gradient on the tape.
                    let table_node = &self.nodes[table.0];
                    if let Op::Param(id) = table_node.op {
                        let cols = table_node.value.cols();
                        grads.accumulate_at(
                            id,
                            table_node.value.shape(),
                            row * cols,
                            grad.data(),
                            1.0,
                        );
                    } else {
                        let shape = table_node.value.shape().to_vec();
                        let total = table_node.value.len();
                        let cols = table_node.value.cols();
                        let mut d = self.pool.take(total);
                        d.resize(total, 0.0);
                        d[row * cols..row * cols + grad.len()].copy_from_slice(grad.data());
                        add_grad_shaped(
                            &mut node_grads,
                            &mut self.pool,
                            *table,
                            Tensor::from_vec(d, shape),
                        );
                    }
                }
                Op::Sum(a) => {
                    let g = grad.item();
                    let len = self.nodes[a.0].value.len();
                    let mut d = self.pool.take(len);
                    d.resize(len, g);
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, d);
                }
                Op::Mean(a) => {
                    let len = self.nodes[a.0].value.len().max(1);
                    let g = grad.item() / len as f32;
                    let len = self.nodes[a.0].value.len();
                    let mut d = self.pool.take(len);
                    d.resize(len, g);
                    add_grad_owned(&mut node_grads, &mut self.pool, *a, d);
                }
            }
            self.pool.put_tensor(grad);
        }
        node_grads.clear();
        self.scratch = node_grads;
    }

    /// Number of nodes recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Adds `values * scale` into a node-gradient slot, drawing any fresh buffer
/// from the pool.
fn add_grad(
    slots: &mut [Option<Tensor>],
    pool: &mut BufferPool,
    var: Var,
    values: &[f32],
    scale: f32,
) {
    match &mut slots[var.0] {
        Some(existing) => {
            for (dst, src) in existing.data_mut().iter_mut().zip(values) {
                *dst += src * scale;
            }
        }
        slot @ None => {
            let mut data = pool.take(values.len());
            data.extend(values.iter().map(|v| v * scale));
            *slot = Some(Tensor::vector(data));
        }
    }
}

/// Adds an owned, already-scaled vector buffer into a node-gradient slot,
/// recycling it into the pool when the slot is already populated.
fn add_grad_owned(slots: &mut [Option<Tensor>], pool: &mut BufferPool, var: Var, data: Vec<f32>) {
    match &mut slots[var.0] {
        Some(existing) => {
            for (dst, src) in existing.data_mut().iter_mut().zip(&data) {
                *dst += src;
            }
            pool.put(data);
        }
        slot @ None => *slot = Some(Tensor::vector(data)),
    }
}

/// Adds a shaped (matrix) gradient tensor into a node-gradient slot,
/// recycling its buffer when the slot is already populated.
fn add_grad_shaped(slots: &mut [Option<Tensor>], pool: &mut BufferPool, var: Var, value: Tensor) {
    match &mut slots[var.0] {
        Some(existing) => {
            existing.add_scaled(&value, 1.0);
            pool.put_tensor(value);
        }
        slot @ None => *slot = Some(value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_difference_check;

    #[test]
    fn forward_values_are_correct() {
        let mut params = Params::new();
        let w = params.add(
            "w",
            Tensor::matrix(2, 3, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0]),
        );
        let mut g = Graph::new(&params);
        let w_var = g.param(w);
        let x = g.input(Tensor::vector(vec![1.0, 2.0, 3.0]));
        let y = g.matvec(w_var, x);
        assert_eq!(g.value(y), &[1.0, 4.0]);
        let s = g.sigmoid(y);
        assert!((g.value(s)[0] - 0.7310586).abs() < 1e-5);
        let total = g.sum(s);
        assert_eq!(g.value(total).len(), 1);
    }

    #[test]
    fn simple_backward_matches_hand_computation() {
        // loss = sum(w * x), dloss/dw = x
        let mut params = Params::new();
        let w = params.add("w", Tensor::vector(vec![2.0, -1.0]));
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        let x = g.input(Tensor::vector(vec![3.0, 4.0]));
        let y = g.mul(wv, x);
        let loss = g.sum(y);
        let mut grads = Grads::new(&params);
        g.backward(loss, &mut grads);
        assert_eq!(grads.get(w).unwrap().data(), &[3.0, 4.0]);
    }

    #[test]
    fn gradcheck_matvec_chain() {
        finite_difference_check(
            &[(
                "w",
                Tensor::matrix(3, 4, (0..12).map(|i| 0.1 * i as f32 - 0.5).collect()),
            )],
            |g, ids| {
                let w = g.param(ids[0]);
                let x = g.input(Tensor::vector(vec![0.3, -0.2, 0.5, 1.0]));
                let h = g.matvec(w, x);
                let a = g.tanh(h);
                g.sum(a)
            },
        );
    }

    #[test]
    fn gradcheck_elementwise_and_slice_ops() {
        finite_difference_check(
            &[("v", Tensor::vector(vec![0.5, -0.3, 1.2, -2.0, 0.4, 0.7]))],
            |g, ids| {
                let v = g.param(ids[0]);
                let a = g.slice(v, 0, 3);
                let b = g.slice(v, 3, 3);
                let prod = g.mul(a, b);
                let s = g.sigmoid(prod);
                let r = g.relu(b);
                let abs = g.abs(a);
                let cat = g.concat(&[s, r, abs]);
                let scaled = g.scale(cat, 1.5);
                let shifted = g.add_scalar(scaled, 0.1);
                g.mean(shifted)
            },
        );
    }

    #[test]
    fn gradcheck_row_lookup() {
        finite_difference_check(
            &[(
                "table",
                Tensor::matrix(4, 3, (0..12).map(|i| i as f32 * 0.25 - 1.0).collect()),
            )],
            |g, ids| {
                let table = g.param(ids[0]);
                let r0 = g.row(table, 1);
                let r1 = g.row(table, 3);
                let sum = g.add(r0, r1);
                let t = g.tanh(sum);
                g.sum(t)
            },
        );
    }

    #[test]
    fn gradcheck_sub_and_abs_loss() {
        finite_difference_check(&[("p", Tensor::vector(vec![2.0, -0.4]))], |g, ids| {
            let p = g.param(ids[0]);
            let target = g.input(Tensor::vector(vec![1.0, 1.0]));
            let diff = g.sub(p, target);
            let abs = g.abs(diff);
            g.sum(abs)
        });
    }

    #[test]
    fn backward_scaled_applies_seed() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::vector(vec![1.0]));
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        let loss = g.sum(wv);
        let mut grads = Grads::new(&params);
        g.backward_scaled(loss, &mut grads, 0.25);
        assert_eq!(grads.get(w).unwrap().data(), &[0.25]);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar_loss() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        let mut grads = Grads::new(&params);
        g.backward(wv, &mut grads);
    }

    /// Runs a small but op-diverse forward/backward pass and returns the loss
    /// value plus the parameter gradients.
    fn run_workload(graph: &mut Graph<'_>, ids: &[ParamId], shift: f32) -> (Vec<f32>, Grads) {
        let w = graph.param(ids[0]);
        let table = graph.param(ids[1]);
        let x = graph.input(Tensor::vector(vec![0.4 + shift, -0.9, 1.3]));
        let h = graph.matvec(w, x);
        let t = graph.tanh(h);
        let r0 = graph.row(table, 0);
        let r1 = graph.row(table, 2);
        let mix = graph.mul(r0, r1);
        let cat = graph.concat(&[t, mix]);
        let s = graph.sigmoid(cat);
        let shifted = graph.add_scalar(s, shift);
        let loss = graph.mean(shifted);
        let mut grads = Grads::new(graph.params);
        graph.backward(loss, &mut grads);
        (graph.value(loss).to_vec(), grads)
    }

    fn workload_params() -> (Params, Vec<ParamId>) {
        let mut params = Params::new();
        let w = params.add(
            "w",
            Tensor::matrix(2, 3, (0..6).map(|i| 0.3 * i as f32 - 0.8).collect()),
        );
        let table = params.add(
            "table",
            Tensor::matrix(3, 2, (0..6).map(|i| 0.25 * i as f32 - 0.5).collect()),
        );
        (params, vec![w, table])
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_graphs() {
        let (params, ids) = workload_params();
        let mut arena = TapeArena::new();

        // Three different workloads through the same arena; every one must
        // match a fresh (arena-free) graph bit for bit — reused buffers must
        // never leak stale values into a later tape.
        for step in 0..3 {
            let shift = step as f32 * 0.7 - 0.4;
            let (fresh_loss, fresh_grads) = {
                let mut graph = Graph::new(&params);
                run_workload(&mut graph, &ids, shift)
            };
            let (arena_loss, arena_grads) =
                arena.scoped(&params, |graph| run_workload(graph, &ids, shift));
            assert_eq!(
                fresh_loss, arena_loss,
                "values must not change (step {step})"
            );
            assert_eq!(
                fresh_grads, arena_grads,
                "gradients must not change (step {step})"
            );
        }
    }

    #[test]
    fn arena_recycles_buffers_across_tapes() {
        let (params, ids) = workload_params();
        let mut arena = TapeArena::new();
        assert_eq!(arena.pooled_buffers(), 0);
        arena.scoped(&params, |graph| run_workload(graph, &ids, 0.0));
        let after_first = arena.pooled_buffers();
        assert!(after_first > 0, "finishing a scope must park its buffers");
        arena.scoped(&params, |graph| run_workload(graph, &ids, 1.0));
        // An identical workload consumes and returns the same buffers: the
        // pool reaches a steady state instead of growing.
        assert_eq!(arena.pooled_buffers(), after_first);
    }

    #[test]
    fn arena_graph_with_smaller_tape_leaves_no_stale_nodes() {
        let (params, ids) = workload_params();
        let mut arena = TapeArena::new();
        arena.scoped(&params, |graph| {
            run_workload(graph, &ids, 0.0);
            assert!(graph.len() > 3);
        });
        // A much smaller tape in the same arena: its node count and values
        // must reflect only its own ops.
        arena.scoped(&params, |graph| {
            assert!(graph.is_empty());
            let w = graph.param(ids[0]);
            let loss = graph.sum(w);
            assert_eq!(graph.len(), 2);
            let expected: f32 = params.get(ids[0]).data().iter().sum();
            assert_eq!(graph.value(loss), &[expected]);
        });
    }
}
