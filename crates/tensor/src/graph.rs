//! The computation graph (tape) and reverse-mode differentiation.

use crate::params::{Grads, ParamId, Params};
use crate::Tensor;

/// A node handle within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// A leaf referencing a trainable parameter.
    Param(ParamId),
    /// A leaf holding constant input data.
    Input,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatVec {
        w: Var,
        x: Var,
    },
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Abs(Var),
    Concat(Vec<Var>),
    Slice {
        src: Var,
        start: usize,
        len: usize,
    },
    Row {
        table: Var,
        row: usize,
    },
    Sum(Var),
    Mean(Var),
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Tensor,
}

/// A dynamically built computation graph over a borrowed parameter store.
///
/// Graphs are cheap, single-use objects: build one per sample (or per
/// forward/backward pass), call [`Graph::backward`], and drop it.
#[derive(Debug)]
pub struct Graph<'p> {
    params: &'p Params,
    nodes: Vec<Node>,
}

impl<'p> Graph<'p> {
    /// Creates an empty graph over a parameter store.
    pub fn new(params: &'p Params) -> Self {
        Graph {
            params,
            nodes: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// The computed value of a node as a slice.
    pub fn value(&self, var: Var) -> &[f32] {
        self.nodes[var.0].value.data()
    }

    /// The computed value of a node as a tensor.
    pub fn value_tensor(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// A leaf node referencing a trainable parameter; gradients flow into the
    /// corresponding [`Grads`] slot during [`Graph::backward`].
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.params.get(id).clone();
        self.push(Op::Param(id), value)
    }

    /// A constant input leaf (no gradient).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(Op::Input, value)
    }

    /// Elementwise addition. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x + y);
        self.push(Op::Add(a, b), value)
    }

    /// Elementwise subtraction (`a - b`). Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x - y);
        self.push(Op::Sub(a, b), value)
    }

    /// Elementwise multiplication. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x * y);
        self.push(Op::Mul(a, b), value)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, factor: f32) -> Var {
        let value = map(&self.nodes[a.0].value, |x| x * factor);
        self.push(Op::Scale(a, factor), value)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, constant: f32) -> Var {
        let value = map(&self.nodes[a.0].value, |x| x + constant);
        self.push(Op::AddScalar(a), value)
    }

    /// Matrix-vector product `w · x` where `w` is `[m, n]` and `x` is `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn matvec(&mut self, w: Var, x: Var) -> Var {
        let wt = &self.nodes[w.0].value;
        let xt = &self.nodes[x.0].value;
        assert_eq!(wt.shape().len(), 2, "matvec weight must be a matrix");
        let (m, n) = (wt.rows(), wt.cols());
        assert_eq!(
            xt.len(),
            n,
            "matvec shape mismatch: [{m}, {n}] · [{}]",
            xt.len()
        );
        let mut out = vec![0.0f32; m];
        let wd = wt.data();
        let xd = xt.data();
        for i in 0..m {
            let row = &wd[i * n..(i + 1) * n];
            let mut acc = 0.0f32;
            for j in 0..n {
                acc += row[j] * xd[j];
            }
            out[i] = acc;
        }
        self.push(Op::MatVec { w, x }, Tensor::vector(out))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = map(&self.nodes[a.0].value, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), value)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = map(&self.nodes[a.0].value, f32::tanh);
        self.push(Op::Tanh(a), value)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = map(&self.nodes[a.0].value, |x| x.max(0.0));
        self.push(Op::Relu(a), value)
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        let value = map(&self.nodes[a.0].value, f32::abs);
        self.push(Op::Abs(a), value)
    }

    /// Concatenates vectors into one vector.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        let mut data = Vec::new();
        for part in parts {
            data.extend_from_slice(self.nodes[part.0].value.data());
        }
        self.push(Op::Concat(parts.to_vec()), Tensor::vector(data))
    }

    /// A contiguous slice `[start, start + len)` of a vector.
    ///
    /// # Panics
    ///
    /// Panics if the slice is out of range.
    pub fn slice(&mut self, src: Var, start: usize, len: usize) -> Var {
        let data = self.nodes[src.0].value.data()[start..start + len].to_vec();
        self.push(Op::Slice { src, start, len }, Tensor::vector(data))
    }

    /// Row `row` of a matrix-valued node (used for embedding lookups).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a matrix or the row is out of range.
    pub fn row(&mut self, table: Var, row: usize) -> Var {
        let data = self.nodes[table.0].value.row(row).to_vec();
        self.push(Op::Row { table, row }, Tensor::vector(data))
    }

    /// Sum of all elements (produces a scalar).
    pub fn sum(&mut self, a: Var) -> Var {
        let total: f32 = self.nodes[a.0].value.data().iter().sum();
        self.push(Op::Sum(a), Tensor::scalar(total))
    }

    /// Mean of all elements (produces a scalar).
    pub fn mean(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        let mean = if t.is_empty() {
            0.0
        } else {
            t.data().iter().sum::<f32>() / t.len() as f32
        };
        self.push(Op::Mean(a), Tensor::scalar(mean))
    }

    /// Runs reverse-mode differentiation from `loss` (which must be a scalar
    /// node), accumulating parameter gradients into `grads` with weight
    /// `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element node.
    pub fn backward(&self, loss: Var, grads: &mut Grads) {
        self.backward_scaled(loss, grads, 1.0);
    }

    /// Like [`Graph::backward`] but seeds the loss gradient with `seed`
    /// (useful for averaging over a batch without rescaling afterwards).
    pub fn backward_scaled(&self, loss: Var, grads: &mut Grads, seed: f32) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss"
        );
        let mut node_grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        node_grads[loss.0] = Some(Tensor::scalar(seed));

        for index in (0..self.nodes.len()).rev() {
            let Some(grad) = node_grads[index].take() else {
                continue;
            };
            let node = &self.nodes[index];
            match &node.op {
                Op::Input => {}
                Op::Param(id) => grads.accumulate(*id, &grad, 1.0),
                Op::Add(a, b) => {
                    add_grad(&mut node_grads, *a, grad.data(), 1.0);
                    add_grad(&mut node_grads, *b, grad.data(), 1.0);
                }
                Op::Sub(a, b) => {
                    add_grad(&mut node_grads, *a, grad.data(), 1.0);
                    add_grad(&mut node_grads, *b, grad.data(), -1.0);
                }
                Op::Mul(a, b) => {
                    let bv: Vec<f32> = grad
                        .data()
                        .iter()
                        .zip(self.nodes[b.0].value.data())
                        .map(|(g, v)| g * v)
                        .collect();
                    let av: Vec<f32> = grad
                        .data()
                        .iter()
                        .zip(self.nodes[a.0].value.data())
                        .map(|(g, v)| g * v)
                        .collect();
                    add_grad(&mut node_grads, *a, &bv, 1.0);
                    add_grad(&mut node_grads, *b, &av, 1.0);
                }
                Op::Scale(a, factor) => add_grad(&mut node_grads, *a, grad.data(), *factor),
                Op::AddScalar(a) => add_grad(&mut node_grads, *a, grad.data(), 1.0),
                Op::MatVec { w, x } => {
                    let wt = &self.nodes[w.0].value;
                    let xt = &self.nodes[x.0].value;
                    let (m, n) = (wt.rows(), wt.cols());
                    // dL/dW[i,j] = g[i] * x[j]; dL/dx[j] = sum_i g[i] * W[i,j]
                    let g = grad.data();
                    let mut dw = vec![0.0f32; m * n];
                    let mut dx = vec![0.0f32; n];
                    let wd = wt.data();
                    let xd = xt.data();
                    for i in 0..m {
                        let gi = g[i];
                        if gi == 0.0 {
                            continue;
                        }
                        let row = &wd[i * n..(i + 1) * n];
                        let drow = &mut dw[i * n..(i + 1) * n];
                        for j in 0..n {
                            drow[j] += gi * xd[j];
                            dx[j] += gi * row[j];
                        }
                    }
                    add_grad_shaped(&mut node_grads, *w, Tensor::matrix(m, n, dw));
                    add_grad(&mut node_grads, *x, &dx, 1.0);
                }
                Op::Sigmoid(a) => {
                    let d: Vec<f32> = grad
                        .data()
                        .iter()
                        .zip(node.value.data())
                        .map(|(g, y)| g * y * (1.0 - y))
                        .collect();
                    add_grad(&mut node_grads, *a, &d, 1.0);
                }
                Op::Tanh(a) => {
                    let d: Vec<f32> = grad
                        .data()
                        .iter()
                        .zip(node.value.data())
                        .map(|(g, y)| g * (1.0 - y * y))
                        .collect();
                    add_grad(&mut node_grads, *a, &d, 1.0);
                }
                Op::Relu(a) => {
                    let d: Vec<f32> = grad
                        .data()
                        .iter()
                        .zip(self.nodes[a.0].value.data())
                        .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                        .collect();
                    add_grad(&mut node_grads, *a, &d, 1.0);
                }
                Op::Abs(a) => {
                    let d: Vec<f32> = grad
                        .data()
                        .iter()
                        .zip(self.nodes[a.0].value.data())
                        .map(|(g, x)| if *x >= 0.0 { *g } else { -*g })
                        .collect();
                    add_grad(&mut node_grads, *a, &d, 1.0);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for part in parts {
                        let len = self.nodes[part.0].value.len();
                        add_grad(
                            &mut node_grads,
                            *part,
                            &grad.data()[offset..offset + len],
                            1.0,
                        );
                        offset += len;
                    }
                }
                Op::Slice { src, start, len } => {
                    let total = self.nodes[src.0].value.len();
                    let mut d = vec![0.0f32; total];
                    d[*start..*start + *len].copy_from_slice(grad.data());
                    add_grad(&mut node_grads, *src, &d, 1.0);
                }
                Op::Row { table, row } => {
                    // Fast path: embedding tables are parameter leaves, so the
                    // gradient can be scattered sparsely without materializing a
                    // dense table-sized gradient on the tape.
                    let table_node = &self.nodes[table.0];
                    if let Op::Param(id) = table_node.op {
                        let cols = table_node.value.cols();
                        grads.accumulate_at(
                            id,
                            table_node.value.shape(),
                            row * cols,
                            grad.data(),
                            1.0,
                        );
                    } else {
                        let shape = table_node.value.shape().to_vec();
                        let cols = table_node.value.cols();
                        let mut dense = Tensor::zeros(shape);
                        dense.data_mut()[row * cols..row * cols + grad.len()]
                            .copy_from_slice(grad.data());
                        add_grad_shaped(&mut node_grads, *table, dense);
                    }
                }
                Op::Sum(a) => {
                    let g = grad.item();
                    let d = vec![g; self.nodes[a.0].value.len()];
                    add_grad(&mut node_grads, *a, &d, 1.0);
                }
                Op::Mean(a) => {
                    let len = self.nodes[a.0].value.len().max(1);
                    let g = grad.item() / len as f32;
                    let d = vec![g; self.nodes[a.0].value.len()];
                    add_grad(&mut node_grads, *a, &d, 1.0);
                }
            }
        }
    }

    /// Number of nodes recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

fn map(t: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    Tensor::from_vec(t.data().iter().map(|&x| f(x)).collect(), t.shape().to_vec())
}

fn zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(
        a.shape(),
        b.shape(),
        "elementwise shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    Tensor::from_vec(
        a.data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| f(x, y))
            .collect(),
        a.shape().to_vec(),
    )
}

fn add_grad(grads: &mut [Option<Tensor>], var: Var, values: &[f32], scale: f32) {
    let slot = &mut grads[var.0];
    match slot {
        Some(existing) => {
            for (dst, src) in existing.data_mut().iter_mut().zip(values) {
                *dst += src * scale;
            }
        }
        None => {
            let data: Vec<f32> = values.iter().map(|v| v * scale).collect();
            let len = data.len();
            *slot = Some(Tensor::from_vec(data, vec![len]));
        }
    }
}

fn add_grad_shaped(grads: &mut [Option<Tensor>], var: Var, value: Tensor) {
    let slot = &mut grads[var.0];
    match slot {
        Some(existing) => existing.add_scaled(&value, 1.0),
        None => *slot = Some(value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_difference_check;

    #[test]
    fn forward_values_are_correct() {
        let mut params = Params::new();
        let w = params.add(
            "w",
            Tensor::matrix(2, 3, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0]),
        );
        let mut g = Graph::new(&params);
        let w_var = g.param(w);
        let x = g.input(Tensor::vector(vec![1.0, 2.0, 3.0]));
        let y = g.matvec(w_var, x);
        assert_eq!(g.value(y), &[1.0, 4.0]);
        let s = g.sigmoid(y);
        assert!((g.value(s)[0] - 0.7310586).abs() < 1e-5);
        let total = g.sum(s);
        assert_eq!(g.value(total).len(), 1);
    }

    #[test]
    fn simple_backward_matches_hand_computation() {
        // loss = sum(w * x), dloss/dw = x
        let mut params = Params::new();
        let w = params.add("w", Tensor::vector(vec![2.0, -1.0]));
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        let x = g.input(Tensor::vector(vec![3.0, 4.0]));
        let y = g.mul(wv, x);
        let loss = g.sum(y);
        let mut grads = Grads::new(&params);
        g.backward(loss, &mut grads);
        assert_eq!(grads.get(w).unwrap().data(), &[3.0, 4.0]);
    }

    #[test]
    fn gradcheck_matvec_chain() {
        finite_difference_check(
            &[(
                "w",
                Tensor::matrix(3, 4, (0..12).map(|i| 0.1 * i as f32 - 0.5).collect()),
            )],
            |g, ids| {
                let w = g.param(ids[0]);
                let x = g.input(Tensor::vector(vec![0.3, -0.2, 0.5, 1.0]));
                let h = g.matvec(w, x);
                let a = g.tanh(h);
                g.sum(a)
            },
        );
    }

    #[test]
    fn gradcheck_elementwise_and_slice_ops() {
        finite_difference_check(
            &[("v", Tensor::vector(vec![0.5, -0.3, 1.2, -2.0, 0.4, 0.7]))],
            |g, ids| {
                let v = g.param(ids[0]);
                let a = g.slice(v, 0, 3);
                let b = g.slice(v, 3, 3);
                let prod = g.mul(a, b);
                let s = g.sigmoid(prod);
                let r = g.relu(b);
                let abs = g.abs(a);
                let cat = g.concat(&[s, r, abs]);
                let scaled = g.scale(cat, 1.5);
                let shifted = g.add_scalar(scaled, 0.1);
                g.mean(shifted)
            },
        );
    }

    #[test]
    fn gradcheck_row_lookup() {
        finite_difference_check(
            &[(
                "table",
                Tensor::matrix(4, 3, (0..12).map(|i| i as f32 * 0.25 - 1.0).collect()),
            )],
            |g, ids| {
                let table = g.param(ids[0]);
                let r0 = g.row(table, 1);
                let r1 = g.row(table, 3);
                let sum = g.add(r0, r1);
                let t = g.tanh(sum);
                g.sum(t)
            },
        );
    }

    #[test]
    fn gradcheck_sub_and_abs_loss() {
        finite_difference_check(&[("p", Tensor::vector(vec![2.0, -0.4]))], |g, ids| {
            let p = g.param(ids[0]);
            let target = g.input(Tensor::vector(vec![1.0, 1.0]));
            let diff = g.sub(p, target);
            let abs = g.abs(diff);
            g.sum(abs)
        });
    }

    #[test]
    fn backward_scaled_applies_seed() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::vector(vec![1.0]));
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        let loss = g.sum(wv);
        let mut grads = Grads::new(&params);
        g.backward_scaled(loss, &mut grads, 0.25);
        assert_eq!(grads.get(w).unwrap().data(), &[0.25]);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar_loss() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        let mut grads = Grads::new(&params);
        g.backward(wv, &mut grads);
    }
}
