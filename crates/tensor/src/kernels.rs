//! Fused, SIMD-width-chunked inner-loop kernels shared by the eager tape and
//! the compiled executor.
//!
//! Every kernel here is a plain function over `f32` slices with a **fixed,
//! documented summation order**, and both execution engines route their hot
//! loops through the same functions. That sharing is what makes the
//! compiled-vs-taped bit-equality invariant cheap to uphold: the two engines
//! differ in scheduling and memory management, never in arithmetic.
//!
//! The dot-product core accumulates in four parallel lanes over
//! `f32x4`-shaped chunks (the width LLVM auto-vectorizes to SSE/NEON
//! registers) and folds the lanes in a fixed `(s0 + s2) + (s1 + s3)` order,
//! with the remainder handled by an in-order scalar tail. The result is
//! deterministic for a given input length — it just uses a different (fixed)
//! association than a naive serial loop.
//!
//! Backward kernels **accumulate** (`+=`) into caller-provided buffers and
//! document the zeroing contract; callers hand in freshly zeroed scratch so
//! that first-write and accumulate paths stay bitwise-identical between
//! engines.

/// SIMD-ish chunk width the dot-product kernel folds over.
const LANES: usize = 4;

/// Dot product with four-lane chunked accumulation.
///
/// Lanes are folded as `(s0 + s2) + (s1 + s3)` and the `len % 4` tail is
/// added serially afterwards, so the value depends only on the inputs (not
/// on any runtime CPU feature or thread count).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut lanes = [0.0f32; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for lane in 0..LANES {
            lanes[lane] += ca[lane] * cb[lane];
        }
    }
    let mut acc = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (ra, rb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += ra * rb;
    }
    acc
}

/// Matrix-vector product: `out[i] = dot(w[i, :], x)` for an `m x n`
/// row-major matrix.
///
/// # Panics
/// Panics if `w`, `x`, or `out` disagree with the `m x n` shape.
#[inline]
pub fn matvec(w: &[f32], x: &[f32], m: usize, n: usize, out: &mut [f32]) {
    assert_eq!(w.len(), m * n, "matvec weight shape mismatch");
    assert_eq!(x.len(), n, "matvec input shape mismatch");
    assert_eq!(out.len(), m, "matvec output shape mismatch");
    for (row, out_i) in w.chunks_exact(n).zip(out.iter_mut()) {
        *out_i = dot(row, x);
    }
}

/// Backward of [`matvec`]: accumulates `dw += g ⊗ x` and `dx += wᵀ g` into
/// caller-zeroed buffers.
///
/// Rows whose output gradient is exactly `0.0` are skipped, matching the
/// tape's historical behavior (and avoiding `0 * inf = NaN` pollution from
/// saturated inputs).
#[inline]
pub fn matvec_grad(
    w: &[f32],
    x: &[f32],
    g: &[f32],
    m: usize,
    n: usize,
    dw: &mut [f32],
    dx: &mut [f32],
) {
    assert_eq!(w.len(), m * n, "matvec_grad weight shape mismatch");
    assert_eq!(x.len(), n, "matvec_grad input shape mismatch");
    assert_eq!(g.len(), m, "matvec_grad output-grad shape mismatch");
    assert_eq!(dw.len(), m * n, "matvec_grad dw shape mismatch");
    assert_eq!(dx.len(), n, "matvec_grad dx shape mismatch");
    for i in 0..m {
        let gi = g[i];
        if gi == 0.0 {
            continue;
        }
        let row = &w[i * n..(i + 1) * n];
        let drow = &mut dw[i * n..(i + 1) * n];
        for j in 0..n {
            drow[j] += gi * x[j];
            dx[j] += gi * row[j];
        }
    }
}

/// Fused linear layer: `out[i] = dot(w[i, :], x) + b[i]`.
///
/// # Panics
/// Panics on any shape mismatch with the `m x n` layer.
#[inline]
pub fn linear(w: &[f32], b: &[f32], x: &[f32], m: usize, n: usize, out: &mut [f32]) {
    assert_eq!(w.len(), m * n, "linear weight shape mismatch");
    assert_eq!(b.len(), m, "linear bias shape mismatch");
    assert_eq!(x.len(), n, "linear input shape mismatch");
    assert_eq!(out.len(), m, "linear output shape mismatch");
    for ((row, bias), out_i) in w.chunks_exact(n).zip(b).zip(out.iter_mut()) {
        *out_i = dot(row, x) + bias;
    }
}

/// Backward of [`linear`]: accumulates `dw += g ⊗ x`, `db += g`, and
/// `dx += wᵀ g` into caller-zeroed buffers, with the same zero-gradient row
/// skip as [`matvec_grad`] for `dw`/`dx` (`db` always accumulates, matching
/// the unfused add's backward).
#[inline]
#[allow(clippy::too_many_arguments)] // a flat slice signature keeps both engines' call sites identical
pub fn linear_grad(
    w: &[f32],
    x: &[f32],
    g: &[f32],
    m: usize,
    n: usize,
    dw: &mut [f32],
    db: &mut [f32],
    dx: &mut [f32],
) {
    assert_eq!(db.len(), m, "linear_grad db shape mismatch");
    for (db_i, gi) in db.iter_mut().zip(g) {
        *db_i += gi;
    }
    matvec_grad(w, x, g, m, n, dw, dx);
}

/// Logistic sigmoid, the exact expression both engines use.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Length of the packed LSTM-step output for a given hidden size: the
/// `[h, c, i, f, g, o, c_act]` segments of [`lstm_step`].
#[inline]
pub const fn lstm_packed_len(hidden: usize) -> usize {
    7 * hidden
}

/// Fused LSTM cell step over SoA-ordered gate weights.
///
/// `w` is the `4*hidden x (input + hidden)` gate matrix packed row-major in
/// gate order `[input, forget, cell, output]` (the layout
/// `difftune_tensor::nn::LstmCell` creates); each row's first `input`
/// columns multiply `x` and the rest multiply `h_prev`. The kernel walks
/// units in order and, per unit `k`, touches the four gate rows
/// `k, hidden+k, 2*hidden+k, 3*hidden+k` — a structure-of-arrays access
/// pattern over the gate blocks that never materializes the `[x, h_prev]`
/// concatenation.
///
/// `out` must have [`lstm_packed_len`] elements and is filled with the
/// segments `[h, c, i, f, g, o, c_act]`: the new hidden and cell states
/// followed by the gate activations the backward kernel replays from.
#[inline]
#[allow(clippy::too_many_arguments)] // a flat slice signature keeps both engines' call sites identical
pub fn lstm_step(
    w: &[f32],
    b: &[f32],
    x: &[f32],
    h_prev: &[f32],
    c_prev: &[f32],
    hidden: usize,
    input: usize,
    out: &mut [f32],
) {
    let width = input + hidden;
    assert_eq!(
        w.len(),
        4 * hidden * width,
        "lstm_step weight shape mismatch"
    );
    assert_eq!(b.len(), 4 * hidden, "lstm_step bias shape mismatch");
    assert_eq!(x.len(), input, "lstm_step input shape mismatch");
    assert_eq!(
        h_prev.len(),
        hidden,
        "lstm_step hidden-state shape mismatch"
    );
    assert_eq!(c_prev.len(), hidden, "lstm_step cell-state shape mismatch");
    assert_eq!(
        out.len(),
        lstm_packed_len(hidden),
        "lstm_step output shape mismatch"
    );
    for k in 0..hidden {
        let mut pre = [0.0f32; 4];
        for (gate, pre_gate) in pre.iter_mut().enumerate() {
            let row = &w[(gate * hidden + k) * width..(gate * hidden + k + 1) * width];
            *pre_gate = (dot(&row[..input], x) + dot(&row[input..], h_prev)) + b[gate * hidden + k];
        }
        let i = sigmoid(pre[0]);
        let f = sigmoid(pre[1]);
        let g = pre[2].tanh();
        let o = sigmoid(pre[3]);
        let c = f * c_prev[k] + i * g;
        let c_act = c.tanh();
        out[k] = o * c_act;
        out[hidden + k] = c;
        out[2 * hidden + k] = i;
        out[3 * hidden + k] = f;
        out[4 * hidden + k] = g;
        out[5 * hidden + k] = o;
        out[6 * hidden + k] = c_act;
    }
}

/// Backward of [`lstm_step`], replayed from the packed forward output.
///
/// `packed` is the forward's `[h, c, i, f, g, o, c_act]` buffer; `g_packed`
/// is the gradient flowing into it, of which only the `h` segment
/// (`0..hidden`) and `c` segment (`hidden..2*hidden`) are read — the gate
/// segments are internal to the fused op and never exposed as graph outputs.
/// All five output buffers accumulate (`+=`) and must be zeroed by the
/// caller.
#[inline]
#[allow(clippy::too_many_arguments)] // a flat slice signature keeps both engines' call sites identical
pub fn lstm_step_grad(
    w: &[f32],
    x: &[f32],
    h_prev: &[f32],
    c_prev: &[f32],
    packed: &[f32],
    g_packed: &[f32],
    hidden: usize,
    input: usize,
    dw: &mut [f32],
    db: &mut [f32],
    dx: &mut [f32],
    dh_prev: &mut [f32],
    dc_prev: &mut [f32],
) {
    let width = input + hidden;
    assert_eq!(
        w.len(),
        4 * hidden * width,
        "lstm_step_grad weight shape mismatch"
    );
    assert_eq!(
        packed.len(),
        lstm_packed_len(hidden),
        "lstm_step_grad packed shape mismatch"
    );
    assert_eq!(
        g_packed.len(),
        lstm_packed_len(hidden),
        "lstm_step_grad grad shape mismatch"
    );
    assert_eq!(dw.len(), w.len(), "lstm_step_grad dw shape mismatch");
    assert_eq!(db.len(), 4 * hidden, "lstm_step_grad db shape mismatch");
    assert_eq!(dx.len(), input, "lstm_step_grad dx shape mismatch");
    assert_eq!(
        dh_prev.len(),
        hidden,
        "lstm_step_grad dh_prev shape mismatch"
    );
    assert_eq!(
        dc_prev.len(),
        hidden,
        "lstm_step_grad dc_prev shape mismatch"
    );
    for k in 0..hidden {
        let dh = g_packed[k];
        let dc_in = g_packed[hidden + k];
        let i = packed[2 * hidden + k];
        let f = packed[3 * hidden + k];
        let g = packed[4 * hidden + k];
        let o = packed[5 * hidden + k];
        let c_act = packed[6 * hidden + k];
        let dc_total = dc_in + dh * o * (1.0 - c_act * c_act);
        // Pre-activation gradients in gate order [i, f, g, o].
        let d_pre = [
            dc_total * g * i * (1.0 - i),
            dc_total * c_prev[k] * f * (1.0 - f),
            dc_total * i * (1.0 - g * g),
            dh * c_act * o * (1.0 - o),
        ];
        dc_prev[k] += dc_total * f;
        for (gate, d_pre_gate) in d_pre.iter().enumerate() {
            let d = *d_pre_gate;
            let row_index = gate * hidden + k;
            db[row_index] += d;
            if d == 0.0 {
                continue;
            }
            let row = &w[row_index * width..(row_index + 1) * width];
            let drow = &mut dw[row_index * width..(row_index + 1) * width];
            for j in 0..input {
                drow[j] += d * x[j];
                dx[j] += d * row[j];
            }
            for j in 0..hidden {
                drow[input + j] += d * h_prev[j];
                dh_prev[j] += d * row[input + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_serial_reference_closely_and_is_deterministic() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.91).cos()).collect();
        let serial: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let chunked = dot(&a, &b);
        assert!((serial - chunked).abs() < 1e-5, "{serial} vs {chunked}");
        assert_eq!(chunked.to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn dot_handles_short_and_exact_multiples() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0, 3.0], &[4.0, 5.0]), 23.0);
        assert_eq!(dot(&[1.0; 8], &[2.0; 8]), 16.0);
    }

    #[test]
    fn linear_is_matvec_plus_bias() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0, 2.0];
        let b = [0.5, -0.5];
        let mut mv = [0.0; 2];
        matvec(&w, &x, 2, 3, &mut mv);
        let mut fused = [0.0; 2];
        linear(&w, &b, &x, 2, 3, &mut fused);
        assert_eq!(fused[0].to_bits(), (mv[0] + b[0]).to_bits());
        assert_eq!(fused[1].to_bits(), (mv[1] + b[1]).to_bits());
    }

    #[test]
    fn matvec_grad_skips_zero_gradient_rows() {
        let w = [f32::INFINITY, 1.0, 2.0, 3.0];
        let x = [0.5, 0.25];
        let g = [0.0, 1.0];
        let mut dw = [0.0; 4];
        let mut dx = [0.0; 2];
        matvec_grad(&w, &x, &g, 2, 2, &mut dw, &mut dx);
        // The infinite first row is skipped because its gradient is zero.
        assert_eq!(dw, [0.0, 0.0, 0.5, 0.25]);
        assert_eq!(dx, [2.0, 3.0]);
    }

    #[test]
    fn lstm_step_packs_gates_consistently() {
        let hidden = 3;
        let input = 2;
        let width = input + hidden;
        let w: Vec<f32> = (0..4 * hidden * width)
            .map(|i| ((i * 13 % 17) as f32 - 8.0) * 0.11)
            .collect();
        let b: Vec<f32> = (0..4 * hidden).map(|i| (i as f32) * 0.05 - 0.2).collect();
        let x = [0.3, -0.6];
        let h_prev = [0.1, -0.2, 0.05];
        let c_prev = [0.4, 0.0, -0.3];
        let mut out = vec![0.0; lstm_packed_len(hidden)];
        lstm_step(&w, &b, &x, &h_prev, &c_prev, hidden, input, &mut out);
        for k in 0..hidden {
            let (h, c) = (out[k], out[hidden + k]);
            let (i, f, g, o, c_act) = (
                out[2 * hidden + k],
                out[3 * hidden + k],
                out[4 * hidden + k],
                out[5 * hidden + k],
                out[6 * hidden + k],
            );
            assert!(
                (0.0..=1.0).contains(&i) && (0.0..=1.0).contains(&f) && (0.0..=1.0).contains(&o)
            );
            assert!((-1.0..=1.0).contains(&g) && (-1.0..=1.0).contains(&c_act));
            assert_eq!(c.to_bits(), (f * c_prev[k] + i * g).to_bits());
            assert_eq!(c_act.to_bits(), c.tanh().to_bits());
            assert_eq!(h.to_bits(), (o * c_act).to_bits());
        }
    }
}
