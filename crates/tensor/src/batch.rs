//! The deterministic data-parallel gradient engine.
//!
//! [`Batch`] computes per-sample forward/backward passes on
//! [`std::thread::scope`] workers, but always reduces gradients **in fixed
//! sample order**. Samples are grouped into fixed
//! [`REDUCTION_CHUNK`]-sized chunks whose boundaries depend only on the
//! batch size — never on the worker count — and each chunk accumulates into
//! its own [`Grads`] slot in sample order; the calling thread then merges
//! the chunk slots in chunk order. Because the reduction tree is fully
//! determined by the batch size, the accumulated gradient is
//! *bit-identical* for every thread count: `threads = 1` and `threads = N`
//! produce exactly the same bits (property-tested in
//! `tests/batch_determinism.rs`).
//!
//! The engine owns one [`TapeArena`] per worker and one [`Grads`] slot per
//! chunk, all reused across batches, so a training loop that calls
//! [`Batch::accumulate`] in its inner loop stops allocating after the first
//! batch.

use std::sync::Arc;

use crate::compile::{CompiledProgram, ProgramCache, ProgramKey};
use crate::graph::TapeArena;
use crate::{Grads, Graph, Params, ReplayBuffers, Var};

/// Number of samples per reduction chunk. One [`Grads`] slot exists per
/// chunk (not per sample), bounding the reduction's memory and the serial
/// merge cost at `batch_size / REDUCTION_CHUNK` gradient stores. Chunk
/// boundaries are a pure function of the batch size, so the reduction tree —
/// and therefore every bit of the result — is independent of the worker
/// count.
pub const REDUCTION_CHUNK: usize = 8;

/// Below this many samples a batch is processed on the calling thread —
/// spawn overhead would dominate. The threshold never affects results, only
/// where the work runs.
const MIN_PARALLEL_SAMPLES: usize = 8;

/// One reduction chunk of the compiled path: the chunk's samples alongside
/// each sample's resolved program (`None` = tape fallback for that sample).
type CompiledChunk<'a, S> = (&'a [S], &'a [Option<Arc<CompiledProgram>>]);

/// A reusable, deterministic batch-gradient accumulator.
///
/// ```
/// use difftune_tensor::{Batch, Grads, Params, Tensor};
///
/// let mut params = Params::new();
/// let w = params.add("w", Tensor::vector(vec![1.0, -2.0]));
/// let samples: Vec<Vec<f32>> = (0..32).map(|i| vec![i as f32, 1.0]).collect();
///
/// let mut engine = Batch::new(4);
/// let mut grads = Grads::new(&params);
/// let total = engine.accumulate(
///     &params,
///     &samples,
///     |graph, sample| {
///         let wv = graph.param(w);
///         let x = graph.input(Tensor::vector(sample.clone()));
///         let y = graph.mul(wv, x);
///         graph.sum(y)
///     },
///     1.0 / samples.len() as f32,
///     &mut grads,
/// );
/// assert!(total.is_finite());
/// assert!(grads.get(w).is_some());
/// ```
#[derive(Debug)]
pub struct Batch {
    threads: usize,
    slots: Vec<Grads>,
    losses: Vec<f64>,
    arenas: Vec<TapeArena>,
    replay: Vec<ReplayBuffers>,
}

impl Batch {
    /// Creates an engine with `threads` workers (`0` means all available
    /// cores).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Batch {
            threads,
            slots: Vec::new(),
            losses: Vec::new(),
            arenas: Vec::new(),
            replay: Vec::new(),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes the loss and gradients of a batch of samples.
    ///
    /// `loss_of` builds one sample's forward pass and returns its scalar loss
    /// node; the engine runs it once per sample (possibly on worker threads),
    /// backpropagates with seed `seed`, and merges the resulting gradients
    /// into `grads` in sample order (accumulated within fixed
    /// [`REDUCTION_CHUNK`]s, chunks merged in chunk order). Returns the sum
    /// of the per-sample loss values, accumulated in the same fixed order.
    ///
    /// Both the gradients and the returned loss are bit-identical for every
    /// worker count, including `threads = 1`.
    pub fn accumulate<S: Sync>(
        &mut self,
        params: &Params,
        samples: &[S],
        loss_of: impl Fn(&mut Graph<'_>, &S) -> Var + Sync,
        seed: f32,
        grads: &mut Grads,
    ) -> f64 {
        let n = samples.len();
        if n == 0 {
            return 0.0;
        }
        let chunks: Vec<&[S]> = samples.chunks(REDUCTION_CHUNK).collect();
        let workers = if n < MIN_PARALLEL_SAMPLES {
            1
        } else {
            self.threads.min(chunks.len())
        };
        if self.slots.len() < chunks.len() {
            let missing = chunks.len() - self.slots.len();
            self.slots
                .extend(std::iter::repeat_with(|| Grads::new(params)).take(missing));
        }
        if self.arenas.len() < workers {
            let missing = workers - self.arenas.len();
            self.arenas
                .extend(std::iter::repeat_with(TapeArena::new).take(missing));
        }
        self.losses.clear();
        self.losses.resize(chunks.len(), 0.0);
        let slots = &mut self.slots[..chunks.len()];
        let losses = &mut self.losses[..chunks.len()];
        for slot in slots.iter_mut() {
            slot.reset(params);
        }

        let loss_of = &loss_of;
        if workers == 1 {
            run_shard(
                params,
                &chunks,
                slots,
                losses,
                &mut self.arenas[0],
                loss_of,
                seed,
            );
        } else {
            let per_worker = chunks.len().div_ceil(workers);
            let arenas = &mut self.arenas[..workers];
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .chunks(per_worker)
                    .zip(slots.chunks_mut(per_worker))
                    .zip(losses.chunks_mut(per_worker))
                    .zip(arenas.iter_mut())
                    .map(|(((shard, shard_slots), shard_losses), arena)| {
                        scope.spawn(move || {
                            run_shard(
                                params,
                                shard,
                                shard_slots,
                                shard_losses,
                                arena,
                                loss_of,
                                seed,
                            )
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("batch gradient worker panicked");
                }
            });
        }

        // The deterministic reduction: chunk gradients and losses are merged
        // in chunk order, regardless of which worker produced them.
        let mut total = 0.0;
        for (slot, loss) in self.slots[..chunks.len()].iter().zip(&self.losses) {
            grads.merge(slot);
            total += loss;
        }
        total
    }

    /// Like [`Batch::accumulate`], but replays samples through compiled
    /// schedules ([`CompiledProgram`]) instead of rebuilding a tape per
    /// sample.
    ///
    /// `key_of` names each sample's graph structure (see
    /// [`ProgramKey`]); samples mapping to the same key share one schedule,
    /// recorded on the calling thread the first time the key appears (so
    /// cache contents never depend on worker scheduling). A sample whose key
    /// is `None` — dynamic structure the caller cannot key — falls back to
    /// the tape inside the same chunk, preserving the reduction order.
    ///
    /// The chunking, sample order, and merge order are identical to
    /// [`Batch::accumulate`], and compiled replay is bit-identical to the
    /// tape, so this produces exactly the same gradients and loss — for
    /// every thread count and for any mix of compiled and fallback samples.
    #[allow(clippy::too_many_arguments)] // mirrors accumulate's signature plus the cache and key function
    pub fn accumulate_compiled<S: Sync>(
        &mut self,
        params: &Params,
        samples: &[S],
        cache: &mut ProgramCache,
        key_of: impl Fn(&S) -> Option<ProgramKey>,
        loss_of: impl Fn(&mut Graph<'_>, &S) -> Var + Sync,
        seed: f32,
        grads: &mut Grads,
    ) -> f64 {
        let n = samples.len();
        if n == 0 {
            return 0.0;
        }
        // Resolve every sample's program up front, in sample order.
        let programs: Vec<Option<Arc<CompiledProgram>>> = samples
            .iter()
            .map(|sample| {
                key_of(sample)
                    .map(|key| cache.get_or_record(key, params, |graph| loss_of(graph, sample)))
            })
            .collect();
        let chunks: Vec<CompiledChunk<'_, S>> = samples
            .chunks(REDUCTION_CHUNK)
            .zip(programs.chunks(REDUCTION_CHUNK))
            .collect();
        let workers = if n < MIN_PARALLEL_SAMPLES {
            1
        } else {
            self.threads.min(chunks.len())
        };
        if self.slots.len() < chunks.len() {
            let missing = chunks.len() - self.slots.len();
            self.slots
                .extend(std::iter::repeat_with(|| Grads::new(params)).take(missing));
        }
        if self.arenas.len() < workers {
            let missing = workers - self.arenas.len();
            self.arenas
                .extend(std::iter::repeat_with(TapeArena::new).take(missing));
        }
        if self.replay.len() < workers {
            let missing = workers - self.replay.len();
            self.replay
                .extend(std::iter::repeat_with(ReplayBuffers::new).take(missing));
        }
        self.losses.clear();
        self.losses.resize(chunks.len(), 0.0);
        let slots = &mut self.slots[..chunks.len()];
        let losses = &mut self.losses[..chunks.len()];
        for slot in slots.iter_mut() {
            slot.reset(params);
        }

        let loss_of = &loss_of;
        if workers == 1 {
            run_shard_compiled(
                params,
                &chunks,
                slots,
                losses,
                &mut self.arenas[0],
                &mut self.replay[0],
                loss_of,
                seed,
            );
        } else {
            let per_worker = chunks.len().div_ceil(workers);
            let arenas = &mut self.arenas[..workers];
            let replay = &mut self.replay[..workers];
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .chunks(per_worker)
                    .zip(slots.chunks_mut(per_worker))
                    .zip(losses.chunks_mut(per_worker))
                    .zip(arenas.iter_mut().zip(replay.iter_mut()))
                    .map(|(((shard, shard_slots), shard_losses), (arena, buffers))| {
                        scope.spawn(move || {
                            run_shard_compiled(
                                params,
                                shard,
                                shard_slots,
                                shard_losses,
                                arena,
                                buffers,
                                loss_of,
                                seed,
                            )
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("batch gradient worker panicked");
                }
            });
        }

        let mut total = 0.0;
        for (slot, loss) in self.slots[..chunks.len()].iter().zip(&self.losses) {
            grads.merge(slot);
            total += loss;
        }
        total
    }
}

/// Processes a contiguous run of fixed-size chunks: one tape per sample in
/// the worker's arena, each chunk's gradients accumulated (in sample order)
/// into the chunk's own slot.
fn run_shard<S>(
    params: &Params,
    chunks: &[&[S]],
    slots: &mut [Grads],
    losses: &mut [f64],
    arena: &mut TapeArena,
    loss_of: &(impl Fn(&mut Graph<'_>, &S) -> Var + Sync),
    seed: f32,
) {
    for ((chunk, slot), loss_out) in chunks.iter().zip(slots).zip(losses) {
        for sample in *chunk {
            *loss_out += arena.scoped(params, |graph| {
                let loss = loss_of(graph, sample);
                let value = f64::from(graph.value(loss)[0]);
                graph.backward_scaled(loss, slot, seed);
                value
            });
        }
    }
}

/// The compiled counterpart of [`run_shard`]: replays each sample against
/// its shared schedule with the worker's own [`ReplayBuffers`], dropping to
/// the worker's tape arena for samples without a program.
#[allow(clippy::too_many_arguments)] // run_shard's parameter list plus the worker's replay buffers
fn run_shard_compiled<S>(
    params: &Params,
    chunks: &[CompiledChunk<'_, S>],
    slots: &mut [Grads],
    losses: &mut [f64],
    arena: &mut TapeArena,
    buffers: &mut ReplayBuffers,
    loss_of: &(impl Fn(&mut Graph<'_>, &S) -> Var + Sync),
    seed: f32,
) {
    for (((samples, programs), slot), loss_out) in chunks.iter().zip(slots).zip(losses) {
        for (sample, program) in samples.iter().zip(programs.iter()) {
            *loss_out += match program {
                Some(program) => {
                    program.replay(params, buffers, slot, seed, |graph| loss_of(graph, sample))
                }
                None => arena.scoped(params, |graph| {
                    let loss = loss_of(graph, sample);
                    let value = f64::from(graph.value(loss)[0]);
                    graph.backward_scaled(loss, slot, seed);
                    value
                }),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// A tiny model whose graph exercises matvec, row lookups (the sparse
    /// `accumulate_at` path), and repeated parameter use.
    fn model_params() -> Params {
        let mut params = Params::new();
        params.add(
            "w",
            Tensor::matrix(3, 4, (0..12).map(|i| 0.17 * i as f32 - 0.9).collect()),
        );
        params.add(
            "table",
            Tensor::matrix(5, 3, (0..15).map(|i| 0.1 * i as f32 - 0.6).collect()),
        );
        params
    }

    // The engine hands the closure `&S` with `S = Vec<f32>` here, so the
    // reference-to-Vec parameter type is forced by the generic signature.
    #[allow(clippy::ptr_arg)]
    fn sample_loss(graph: &mut Graph<'_>, sample: &Vec<f32>) -> Var {
        // ParamIds are dense indices; the tests register w (0) then table (1).
        let w = graph.param(crate::ParamId(0));
        let table = graph.param(crate::ParamId(1));
        let x = graph.input(Tensor::vector(sample.clone()));
        let h = graph.matvec(w, x);
        let t = graph.tanh(h);
        // Row index derived from the sample: repeated rows across samples
        // exercise the sparse embedding-gradient path.
        let row = (sample[0].abs() as usize) % 5;
        let r0 = graph.row(table, row);
        let r1 = graph.row(table, (row + 2) % 5);
        let m = graph.mul(r0, r1);
        let cat = graph.concat(&[t, m]);
        let s = graph.sigmoid(cat);
        graph.mean(s)
    }

    fn samples(count: usize) -> Vec<Vec<f32>> {
        (0..count)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 7 + j * 3) % 11) as f32 * 0.3 - 1.5)
                    .collect()
            })
            .collect()
    }

    fn grads_for(threads: usize, count: usize) -> (f64, Grads) {
        let params = model_params();
        let data = samples(count);
        let mut engine = Batch::new(threads);
        let mut grads = Grads::new(&params);
        let total = engine.accumulate(&params, &data, sample_loss, 1.0 / count as f32, &mut grads);
        (total, grads)
    }

    #[test]
    fn worker_counts_produce_bit_identical_gradients() {
        let (serial_loss, serial) = grads_for(1, 33);
        for threads in [2, 3, 4, 7] {
            let (loss, grads) = grads_for(threads, 33);
            assert_eq!(
                serial_loss.to_bits(),
                loss.to_bits(),
                "loss must be bit-identical with {threads} threads"
            );
            assert_eq!(
                serial, grads,
                "gradients must be bit-identical with {threads} threads"
            );
        }
    }

    #[test]
    fn engine_reuse_across_batches_is_deterministic() {
        let params = model_params();
        let data = samples(40);
        let run = |threads: usize| -> Vec<Grads> {
            let mut engine = Batch::new(threads);
            let mut out = Vec::new();
            // Varying batch sizes exercise slot reuse (slots hold stale zeroed
            // tensors from larger earlier batches).
            for batch in [&data[..40], &data[..9], &data[..17]] {
                let mut grads = Grads::new(&params);
                engine.accumulate(&params, batch, sample_loss, 0.5, &mut grads);
                out.push(grads);
            }
            out
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn compiled_engine_matches_taped_engine_bit_for_bit() {
        let params = model_params();
        let data = samples(33);
        let (taped_loss, taped) = grads_for(1, 33);
        // All samples here share one graph structure, so a constant key
        // compiles every sample; mix in a None fallback for odd samples to
        // cover the in-chunk taped fallback path too.
        type Keying = fn(&Vec<f32>) -> Option<ProgramKey>;
        let keyings: [Keying; 2] = [
            |_| Some(vec![0]),
            |sample| {
                if (sample[0].abs() as usize).is_multiple_of(2) {
                    Some(vec![0])
                } else {
                    None
                }
            },
        ];
        for threads in [1, 2, 4] {
            for key_of in keyings {
                let mut engine = Batch::new(threads);
                let mut cache = ProgramCache::new();
                let mut grads = Grads::new(&params);
                let loss = engine.accumulate_compiled(
                    &params,
                    &data,
                    &mut cache,
                    key_of,
                    sample_loss,
                    1.0 / 33.0,
                    &mut grads,
                );
                assert_eq!(
                    taped_loss.to_bits(),
                    loss.to_bits(),
                    "compiled loss must match the tape with {threads} threads"
                );
                assert_eq!(
                    taped, grads,
                    "compiled gradients must match the tape with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn compiled_engine_reuses_cache_across_batches() {
        let params = model_params();
        let data = samples(40);
        let mut engine = Batch::new(2);
        let mut cache = ProgramCache::new();
        let mut reference = Grads::new(&params);
        engine.accumulate(&params, &data[..17], sample_loss, 0.5, &mut reference);
        for batch in [&data[..40], &data[..9], &data[..17]] {
            let mut grads = Grads::new(&params);
            engine.accumulate_compiled(
                &params,
                batch,
                &mut cache,
                |_| Some(vec![7]),
                sample_loss,
                0.5,
                &mut grads,
            );
            assert_eq!(cache.len(), 1, "one structure must record one program");
            if batch.len() == 17 {
                assert_eq!(reference, grads);
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let params = model_params();
        let mut engine = Batch::new(4);
        let mut grads = Grads::new(&params);
        let empty: Vec<Vec<f32>> = Vec::new();
        assert_eq!(
            engine.accumulate(&params, &empty, sample_loss, 1.0, &mut grads),
            0.0
        );
        assert_eq!(grads, Grads::new(&params));
    }

    #[test]
    fn zero_threads_resolves_to_available_cores() {
        let engine = Batch::new(0);
        assert!(engine.threads() >= 1);
    }
}
