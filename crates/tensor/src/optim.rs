//! Optimizers: stochastic gradient descent and Adam.

use crate::{Grads, ParamId, Params, Tensor};

/// An optimizer updates a [`Params`] store in place from accumulated [`Grads`].
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step. `grads` should hold the (already averaged)
    /// gradient of the loss with respect to each parameter.
    fn step(&mut self, params: &mut Params, grads: &Grads);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (e.g. for a schedule).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates an SGD optimizer with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &Grads) {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for index in 0..params.len() {
            let id = ParamId(index);
            let Some(grad) = grads.get(id) else { continue };
            if self.momentum > 0.0 {
                let velocity = self.velocity[index]
                    .get_or_insert_with(|| Tensor::zeros(grad.shape().to_vec()));
                for (v, g) in velocity.data_mut().iter_mut().zip(grad.data()) {
                    *v = self.momentum * *v + g;
                }
                let velocity = velocity.clone();
                params.get_mut(id).add_scaled(&velocity, -self.lr);
            } else {
                params.get_mut(id).add_scaled(grad, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba, 2015), used by the paper to train both the
/// surrogate and the parameter table.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step: u64,
    first_moment: Vec<Option<Tensor>>,
    second_moment: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// The number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &Grads) {
        if self.first_moment.len() < params.len() {
            self.first_moment.resize(params.len(), None);
            self.second_moment.resize(params.len(), None);
        }
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);

        for index in 0..params.len() {
            let id = ParamId(index);
            let Some(grad) = grads.get(id) else { continue };
            let m = self.first_moment[index]
                .get_or_insert_with(|| Tensor::zeros(grad.shape().to_vec()));
            let v = self.second_moment[index]
                .get_or_insert_with(|| Tensor::zeros(grad.shape().to_vec()));
            let value = params.get_mut(id);
            for (((w, &g), m_i), v_i) in value
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bias1;
                let v_hat = *v_i / bias2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grads, Graph};

    /// Minimizes `(w - 3)^2` and returns the final value of `w`.
    fn optimize(mut optimizer: impl Optimizer, steps: usize) -> f32 {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let mut grads = Grads::new(&params);
            let mut graph = Graph::new(&params);
            let wv = graph.param(w);
            let target = graph.input(Tensor::scalar(3.0));
            let diff = graph.sub(wv, target);
            let sq = graph.mul(diff, diff);
            let loss = graph.sum(sq);
            graph.backward(loss, &mut grads);
            optimizer.step(&mut params, &grads);
        }
        params.get(w).item()
    }

    #[test]
    fn sgd_converges_on_a_quadratic() {
        let w = optimize(Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "got {w}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let w = optimize(Sgd::with_momentum(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "got {w}");
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let w = optimize(Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "got {w}");
    }

    #[test]
    fn adam_counts_steps_and_updates_lr() {
        let mut adam = Adam::new(0.01);
        assert_eq!(adam.steps_taken(), 0);
        adam.set_learning_rate(0.5);
        assert_eq!(adam.learning_rate(), 0.5);
    }

    #[test]
    fn optimizers_ignore_parameters_without_gradients() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let untouched = params.add("frozen", Tensor::scalar(7.0));
        let mut grads = Grads::new(&params);
        grads.accumulate(w, &Tensor::scalar(1.0), 1.0);
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut params, &grads);
        assert_eq!(params.get(untouched).item(), 7.0);
        assert!((params.get(w).item() - 0.9).abs() < 1e-6);
    }
}
