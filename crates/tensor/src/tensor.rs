//! Dense row-major `f32` tensors.

use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32` values.
///
/// Only rank-1 (vectors) and rank-2 (matrices) tensors are used by this
/// workspace, but the shape is stored generically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the product of the shape.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Tensor {
            data: vec![0.0; len],
            shape,
        }
    }

    /// A rank-1 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: vec![1],
        }
    }

    /// A rank-1 tensor (vector) from data.
    pub fn vector(data: Vec<f32>) -> Self {
        let len = data.len();
        Tensor {
            data,
            shape: vec![len],
        }
    }

    /// A rank-2 tensor (matrix) from data in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Tensor::from_vec(data, vec![rows, cols])
    }

    /// The flat data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The single value of a scalar (length-1) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not hold exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor"
        );
        self.data[0]
    }

    /// Number of rows of a matrix (or the length of a vector).
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of columns of a matrix (1 for a vector).
    pub fn cols(&self) -> usize {
        self.shape.get(1).copied().unwrap_or(1)
    }

    /// A view of row `i` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix or `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() requires a matrix");
        let cols = self.cols();
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Adds `other * scale` elementwise into this tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Consumes the tensor, returning its backing buffer (used by the tape
    /// arena to recycle allocations across graphs).
    pub(crate) fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The L2 norm of the tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], vec![3]);
    }

    #[test]
    fn add_scaled_and_zero() {
        let mut a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn norm() {
        let t = Tensor::vector(vec![3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
