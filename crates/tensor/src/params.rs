//! Named parameter storage and gradient accumulation.

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Identifier of a parameter within a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The dense index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named store of trainable tensors.
///
/// Computation graphs borrow the store immutably; optimizers update it in
/// place between graph evaluations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl Params {
    /// Creates an empty parameter store.
    pub fn new() -> Self {
        Params::default()
    }

    /// Adds a named parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// The value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter's value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks up a parameter id by name.
    pub fn by_name(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar values across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Iterates over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, value)| (ParamId(i), self.names[i].as_str(), value))
    }
}

/// Gradient accumulation buffers, one slot per parameter in a [`Params`] store.
///
/// Buffers are allocated lazily on first accumulation and reused across
/// samples, so per-sample backward passes do not reallocate large embedding
/// gradients.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Grads {
    slots: Vec<Option<Tensor>>,
}

impl Grads {
    /// Creates a gradient store matching a parameter store.
    pub fn new(params: &Params) -> Self {
        Grads {
            slots: vec![None; params.len()],
        }
    }

    /// The accumulated gradient for a parameter, if any was produced.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.slots.get(id.0).and_then(Option::as_ref)
    }

    /// Adds `value * scale` into the gradient slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, value: &Tensor, scale: f32) {
        if self.slots.len() <= id.0 {
            self.slots.resize(id.0 + 1, None);
        }
        match &mut self.slots[id.0] {
            Some(existing) => existing.add_scaled(value, scale),
            slot @ None => {
                let mut fresh = Tensor::zeros(value.shape().to_vec());
                fresh.add_scaled(value, scale);
                *slot = Some(fresh);
            }
        }
    }

    /// Adds a single scaled value into one element of the gradient slot,
    /// allocating the slot (with the given shape) if needed. Used for sparse
    /// updates such as embedding rows.
    pub fn accumulate_at(
        &mut self,
        id: ParamId,
        shape: &[usize],
        offset: usize,
        values: &[f32],
        scale: f32,
    ) {
        if self.slots.len() <= id.0 {
            self.slots.resize(id.0 + 1, None);
        }
        let slot = self.slots[id.0].get_or_insert_with(|| Tensor::zeros(shape.to_vec()));
        let data = slot.data_mut();
        for (i, v) in values.iter().enumerate() {
            data[offset + i] += v * scale;
        }
    }

    /// Clears all accumulated gradients (keeping allocations).
    pub fn zero(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            slot.fill_zero();
        }
    }

    /// Resizes the slot table to match `params` and zeroes every already
    /// allocated buffer, keeping the allocations for reuse. The deterministic
    /// [`Batch`](crate::Batch) engine calls this between batches so gradient
    /// slots stop allocating after the first batch. The store must keep
    /// being used with parameters of the same shapes; reusing it across
    /// different models panics on the first shape mismatch, as accumulation
    /// always has.
    ///
    /// Note the difference from a fresh [`Grads::new`]: a slot that was ever
    /// populated stays `Some` (holding zeros) rather than reverting to
    /// `None`, so optimizers that skip `None` slots (see
    /// [`optim`](crate::optim)) will treat a parameter untouched in this
    /// batch but touched earlier as having an explicit zero gradient — Adam
    /// then still decays its moments and applies a step. Today every model
    /// touches every parameter each batch, so the two behave identically;
    /// a future sparse model should reconsider this before reusing a store
    /// across batches.
    pub fn reset(&mut self, params: &Params) {
        self.slots.resize(params.len(), None);
        self.zero();
    }

    /// Merges another gradient store into this one (summing overlapping slots).
    pub fn merge(&mut self, other: &Grads) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), None);
        }
        for (i, slot) in other.slots.iter().enumerate() {
            if let Some(grad) = slot {
                self.accumulate(ParamId(i), grad, 1.0);
            }
        }
    }

    /// The global L2 norm over all accumulated gradients.
    pub fn global_norm(&self) -> f32 {
        self.slots
            .iter()
            .flatten()
            .map(|t| t.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every accumulated gradient by a constant (used for gradient
    /// clipping and for averaging over a batch).
    pub fn scale(&mut self, factor: f32) {
        for slot in self.slots.iter_mut().flatten() {
            for v in slot.data_mut() {
                *v *= factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_add_and_lookup() {
        let mut params = Params::new();
        let a = params.add("a", Tensor::vector(vec![1.0, 2.0]));
        let b = params.add("b", Tensor::scalar(5.0));
        assert_eq!(params.len(), 2);
        assert_eq!(params.num_scalars(), 3);
        assert_eq!(params.by_name("a"), Some(a));
        assert_eq!(params.by_name("missing"), None);
        assert_eq!(params.name(b), "b");
        params.get_mut(a).data_mut()[0] = 9.0;
        assert_eq!(params.get(a).data(), &[9.0, 2.0]);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut params = Params::new();
        let a = params.add("a", Tensor::vector(vec![0.0, 0.0]));
        let mut grads = Grads::new(&params);
        assert!(grads.get(a).is_none());
        grads.accumulate(a, &Tensor::vector(vec![1.0, 2.0]), 2.0);
        grads.accumulate(a, &Tensor::vector(vec![1.0, 1.0]), 1.0);
        assert_eq!(grads.get(a).unwrap().data(), &[3.0, 5.0]);
        grads.zero();
        assert_eq!(grads.get(a).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn sparse_accumulation_and_merge() {
        let mut params = Params::new();
        let table = params.add("table", Tensor::matrix(3, 2, vec![0.0; 6]));
        let mut g1 = Grads::new(&params);
        g1.accumulate_at(table, &[3, 2], 2, &[1.0, 2.0], 1.0);
        let mut g2 = Grads::new(&params);
        g2.accumulate_at(table, &[3, 2], 2, &[10.0, 10.0], 0.5);
        g1.merge(&g2);
        assert_eq!(
            g1.get(table).unwrap().data(),
            &[0.0, 0.0, 6.0, 7.0, 0.0, 0.0]
        );
    }

    #[test]
    fn global_norm_and_scale() {
        let mut params = Params::new();
        let a = params.add("a", Tensor::vector(vec![0.0, 0.0]));
        let mut grads = Grads::new(&params);
        grads.accumulate(a, &Tensor::vector(vec![3.0, 4.0]), 1.0);
        assert!((grads.global_norm() - 5.0).abs() < 1e-6);
        grads.scale(0.5);
        assert_eq!(grads.get(a).unwrap().data(), &[1.5, 2.0]);
    }
}
