//! # difftune-tensor
//!
//! A minimal reverse-mode automatic differentiation engine, built from scratch
//! so that the learned differentiable surrogate in `difftune-surrogate` (and
//! the gradient-based parameter-table optimization in `difftune`) do not need
//! an external deep-learning framework.
//!
//! The design is deliberately small and CPU-oriented:
//!
//! * [`Tensor`] — a dense row-major `f32` tensor (vectors and matrices).
//! * [`Params`] / [`ParamId`] — a named parameter store; parameters are shared
//!   immutably with computation graphs and updated by an [`optim`] optimizer.
//! * [`Graph`] / [`Var`] — a tape: building an expression records nodes, and
//!   [`Graph::backward`] walks the tape in reverse accumulating gradients into
//!   a [`Grads`] store keyed by [`ParamId`].
//! * [`TapeArena`] — preallocated tape storage: [`TapeArena::scoped`]
//!   recycles node values and gradient buffers across tapes so hot training
//!   loops stop paying per-sample allocation churn.
//! * [`Batch`] — the deterministic data-parallel gradient engine: per-sample
//!   forward/backward on scoped worker threads, gradients reduced in fixed
//!   sample order so every thread count produces bit-identical results.
//! * [`CompiledProgram`] / [`ProgramCache`] — graph-once compiled execution:
//!   one recorded schedule per graph structure, replayed per sample against
//!   reusable [`ReplayBuffers`], bit-identical to the tape.
//! * [`kernels`] — the fused, SIMD-width-chunked inner loops both engines
//!   share (dot/matvec, fused linear, fused LSTM step).
//! * [`nn`] — the layers the Ithemal-style surrogate needs: linear layers,
//!   embedding tables, and (stacked) LSTM cells.
//! * [`optim`] — SGD and Adam.
//! * [`check`] — finite-difference gradient checking used heavily in tests.
//!
//! # Example
//!
//! ```
//! use difftune_tensor::{Graph, Grads, Params, Tensor};
//!
//! let mut params = Params::new();
//! let w = params.add("w", Tensor::from_vec(vec![2.0, -1.0], vec![2]));
//! let mut graph = Graph::new(&params);
//! let w_var = graph.param(w);
//! let x = graph.input(Tensor::from_vec(vec![3.0, 4.0], vec![2]));
//! let y = graph.mul(w_var, x);
//! let loss = graph.sum(y); // 2*3 + (-1)*4 = 2
//! assert_eq!(graph.value(loss)[0], 2.0);
//!
//! let mut grads = Grads::new(&params);
//! graph.backward(loss, &mut grads);
//! assert_eq!(grads.get(w).unwrap().data(), &[3.0, 4.0]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod check;
mod compile;
mod graph;
pub mod kernels;
pub mod nn;
pub mod optim;
mod params;
mod tensor;

pub use batch::{Batch, REDUCTION_CHUNK};
pub use compile::{CompiledProgram, ProgramCache, ProgramKey, ReplayBuffers};
pub use graph::{Graph, TapeArena, Var};
pub use params::{Grads, ParamId, Params};
pub use tensor::Tensor;
