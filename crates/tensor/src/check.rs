//! Finite-difference gradient checking.
//!
//! Used by this crate's and `difftune-surrogate`'s tests to validate that the
//! analytic gradients produced by [`Graph::backward`] match numerical
//! derivatives.

use crate::{Grads, Graph, ParamId, Params, Tensor, Var};

/// Checks analytic gradients against central finite differences.
///
/// `build` receives a fresh graph and the ids of the parameters created from
/// `seeds` (in order) and must return a scalar loss node. The check perturbs
/// every scalar of every parameter.
///
/// # Panics
///
/// Panics if any gradient deviates from the numerical estimate by more than a
/// relative/absolute tolerance of `2e-2` (float32 finite differences are
/// noisy; the tolerance is loose but catches sign and indexing errors).
pub fn finite_difference_check<F>(seeds: &[(&str, Tensor)], build: F)
where
    F: Fn(&mut Graph<'_>, &[ParamId]) -> Var,
{
    let mut params = Params::new();
    let ids: Vec<ParamId> = seeds
        .iter()
        .map(|(name, value)| params.add(*name, value.clone()))
        .collect();

    // Analytic gradients.
    let mut grads = Grads::new(&params);
    {
        let mut graph = Graph::new(&params);
        let loss = build(&mut graph, &ids);
        graph.backward(loss, &mut grads);
    }

    let eval = |params: &Params| -> f64 {
        let mut graph = Graph::new(params);
        let loss = build(&mut graph, &ids);
        graph.value(loss)[0] as f64
    };

    let epsilon = 1e-3f32;
    for (&id, (name, _)) in ids.iter().zip(seeds) {
        let len = params.get(id).len();
        for i in 0..len {
            let original = params.get(id).data()[i];
            params.get_mut(id).data_mut()[i] = original + epsilon;
            let plus = eval(&params);
            params.get_mut(id).data_mut()[i] = original - epsilon;
            let minus = eval(&params);
            params.get_mut(id).data_mut()[i] = original;

            let numerical = ((plus - minus) / (2.0 * epsilon as f64)) as f32;
            let analytic = grads.get(id).map(|g| g.data()[i]).unwrap_or(0.0);
            let tolerance = 2e-2f32.max(2e-2 * numerical.abs());
            assert!(
                (numerical - analytic).abs() <= tolerance,
                "gradient mismatch for {name}[{i}]: analytic {analytic}, numerical {numerical}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_for_a_correct_graph() {
        finite_difference_check(&[("x", Tensor::vector(vec![0.2, -0.7, 1.1]))], |g, ids| {
            let x = g.param(ids[0]);
            let t = g.tanh(x);
            g.sum(t)
        });
    }

    #[test]
    #[should_panic]
    fn check_catches_wrong_gradients() {
        // The second parameter element influences the loss only through a value
        // captured as a *constant* while building the graph, so the analytic
        // gradient (zero) disagrees with the numerical one (one) and the check
        // must fail.
        finite_difference_check(&[("x", Tensor::vector(vec![1.0, 2.0]))], |g, ids| {
            let x = g.param(ids[0]);
            let hidden_constant = g.value(x)[1];
            let first = g.slice(x, 0, 1);
            let shifted = g.add_scalar(first, hidden_constant);
            g.sum(shifted)
        });
    }
}
