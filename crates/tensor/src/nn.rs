//! Neural network layers: linear, embedding, and LSTM cells.

use rand::Rng;

use crate::{Graph, ParamId, Params, Tensor, Var};

/// Creates a tensor with uniform Xavier/Glorot initialization for a layer with
/// the given fan-in and fan-out.
pub fn xavier_init<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Tensor::matrix(rows, cols, data)
}

/// Creates a vector initialized uniformly in `[-bound, bound]`.
pub fn uniform_vector<R: Rng + ?Sized>(rng: &mut R, len: usize, bound: f32) -> Tensor {
    Tensor::vector((0..len).map(|_| rng.gen_range(-bound..bound)).collect())
}

/// A fully connected layer `y = W x + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Output dimensionality.
    pub output_dim: usize,
}

impl Linear {
    /// Registers a new linear layer's parameters.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        rng: &mut R,
        name: &str,
        input_dim: usize,
        output_dim: usize,
    ) -> Self {
        let w = params.add(format!("{name}.w"), xavier_init(rng, output_dim, input_dim));
        let b = params.add(format!("{name}.b"), Tensor::vector(vec![0.0; output_dim]));
        Linear {
            w,
            b,
            input_dim,
            output_dim,
        }
    }

    /// Applies the layer through the fused matvec+bias kernel
    /// ([`Graph::linear`]): one tape node, one pass over the weight matrix.
    pub fn forward(&self, graph: &mut Graph<'_>, x: Var) -> Var {
        let w = graph.param(self.w);
        let b = graph.param(self.b);
        graph.linear(w, b, x)
    }

    /// The parameter ids of this layer (weight, bias).
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

/// An embedding table mapping token indices to vectors.
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    table: ParamId,
    /// Number of embeddings (vocabulary size).
    pub vocab: usize,
    /// Embedding dimensionality.
    pub dim: usize,
}

impl Embedding {
    /// Registers a new embedding table.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        rng: &mut R,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table = params.add(format!("{name}.table"), xavier_init(rng, vocab, dim));
        Embedding { table, vocab, dim }
    }

    /// Hoists the table onto `graph` once, so a sequence of lookups shares a
    /// single parameter node instead of re-emitting the table per token.
    pub fn bind(&self, graph: &mut Graph<'_>) -> EmbeddingBinding {
        EmbeddingBinding {
            table: graph.param(self.table),
            vocab: self.vocab,
        }
    }

    /// Looks up one token.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of range.
    pub fn lookup(&self, graph: &mut Graph<'_>, token: usize) -> Var {
        let binding = self.bind(graph);
        binding.lookup(graph, token)
    }

    /// The parameter id of the table.
    pub fn param_id(&self) -> ParamId {
        self.table
    }
}

/// An [`Embedding`] whose table is already a node on some graph; produced by
/// [`Embedding::bind`] so per-token lookups reuse one table node.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingBinding {
    table: Var,
    vocab: usize,
}

impl EmbeddingBinding {
    /// Looks up one token against the bound table.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of range.
    pub fn lookup(&self, graph: &mut Graph<'_>, token: usize) -> Var {
        assert!(
            token < self.vocab,
            "token {token} out of range for vocabulary of {}",
            self.vocab
        );
        graph.row(self.table, token)
    }
}

/// A single LSTM cell.
///
/// Gates are packed in the order `[input, forget, cell, output]` in one
/// `4h × (input + hidden)` weight matrix plus a `4h` bias. The forget-gate
/// bias is initialized to `1.0`, a standard trick that stabilizes early
/// training.
#[derive(Debug, Clone, Copy)]
pub struct LstmCell {
    w: ParamId,
    b: ParamId,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden state dimensionality.
    pub hidden_dim: usize,
}

impl LstmCell {
    /// Registers a new LSTM cell's parameters.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        rng: &mut R,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        let w = params.add(
            format!("{name}.w"),
            xavier_init(rng, 4 * hidden_dim, input_dim + hidden_dim),
        );
        let mut bias = vec![0.0f32; 4 * hidden_dim];
        for slot in bias.iter_mut().skip(hidden_dim).take(hidden_dim) {
            *slot = 1.0;
        }
        let b = params.add(format!("{name}.b"), Tensor::vector(bias));
        LstmCell {
            w,
            b,
            input_dim,
            hidden_dim,
        }
    }

    /// Hoists the cell's weight and bias onto `graph` once; the returned
    /// binding runs fused steps without re-emitting parameter nodes per
    /// timestep.
    pub fn bind(&self, graph: &mut Graph<'_>) -> LstmCellBinding {
        LstmCellBinding {
            w: graph.param(self.w),
            b: graph.param(self.b),
            hidden_dim: self.hidden_dim,
        }
    }

    /// Runs one step: `(h, c) = cell(x, h_prev, c_prev)`, through the fused
    /// gate kernel ([`Graph::lstm_step`]).
    pub fn step(&self, graph: &mut Graph<'_>, x: Var, h_prev: Var, c_prev: Var) -> (Var, Var) {
        let binding = self.bind(graph);
        binding.step(graph, x, h_prev, c_prev)
    }

    /// A zero-valued initial state `(h, c)`.
    pub fn zero_state(&self, graph: &mut Graph<'_>) -> (Var, Var) {
        let h = graph.input(Tensor::vector(vec![0.0; self.hidden_dim]));
        let c = graph.input(Tensor::vector(vec![0.0; self.hidden_dim]));
        (h, c)
    }

    /// The parameter ids of this cell (weights, bias).
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

/// An [`LstmCell`] whose parameters are already nodes on some graph; produced
/// by [`LstmCell::bind`] so a whole sequence shares two parameter nodes.
#[derive(Debug, Clone, Copy)]
pub struct LstmCellBinding {
    w: Var,
    b: Var,
    /// Hidden state dimensionality.
    pub hidden_dim: usize,
}

impl LstmCellBinding {
    /// Runs one fused step against the bound parameters.
    pub fn step(&self, graph: &mut Graph<'_>, x: Var, h_prev: Var, c_prev: Var) -> (Var, Var) {
        graph.lstm_step(self.w, self.b, x, h_prev, c_prev, self.hidden_dim)
    }

    /// A zero-valued initial state `(h, c)`.
    pub fn zero_state(&self, graph: &mut Graph<'_>) -> (Var, Var) {
        let h = graph.input(Tensor::vector(vec![0.0; self.hidden_dim]));
        let c = graph.input(Tensor::vector(vec![0.0; self.hidden_dim]));
        (h, c)
    }
}

/// A stack of LSTM cells applied layer by layer to a sequence, as used by the
/// Ithemal-style surrogate (the paper stacks four).
#[derive(Debug, Clone)]
pub struct StackedLstm {
    cells: Vec<LstmCell>,
}

impl StackedLstm {
    /// Registers `layers` LSTM cells; the first consumes `input_dim`-sized
    /// inputs, the rest consume the previous layer's hidden states.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        rng: &mut R,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
    ) -> Self {
        assert!(layers >= 1, "a stacked LSTM needs at least one layer");
        let cells = (0..layers)
            .map(|layer| {
                let in_dim = if layer == 0 { input_dim } else { hidden_dim };
                LstmCell::new(
                    params,
                    rng,
                    &format!("{name}.layer{layer}"),
                    in_dim,
                    hidden_dim,
                )
            })
            .collect();
        StackedLstm { cells }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// The hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.cells[0].hidden_dim
    }

    /// Hoists every cell's parameters onto `graph` once (two nodes per
    /// layer for the whole sequence, instead of two per layer per timestep).
    pub fn bind(&self, graph: &mut Graph<'_>) -> StackedLstmBinding {
        StackedLstmBinding {
            cells: self.cells.iter().map(|c| c.bind(graph)).collect(),
        }
    }

    /// Runs the stack over a sequence and returns the final hidden state of
    /// the top layer (the sequence summary vector).
    pub fn run(&self, graph: &mut Graph<'_>, sequence: &[Var]) -> Var {
        let binding = self.bind(graph);
        binding.run(graph, sequence)
    }

    /// All parameter ids in the stack.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.cells.iter().flat_map(|c| c.param_ids()).collect()
    }
}

/// A [`StackedLstm`] whose parameters are already nodes on some graph;
/// produced by [`StackedLstm::bind`].
#[derive(Debug, Clone)]
pub struct StackedLstmBinding {
    cells: Vec<LstmCellBinding>,
}

impl StackedLstmBinding {
    /// Runs the bound stack over a sequence; see [`StackedLstm::run`].
    pub fn run(&self, graph: &mut Graph<'_>, sequence: &[Var]) -> Var {
        let mut states: Vec<(Var, Var)> = self.cells.iter().map(|c| c.zero_state(graph)).collect();
        for &input in sequence {
            let mut layer_input = input;
            for (cell, state) in self.cells.iter().zip(states.iter_mut()) {
                let (h, c) = cell.step(graph, layer_input, state.0, state.1);
                *state = (h, c);
                layer_input = h;
            }
        }
        states.last().expect("at least one layer").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_difference_check;
    use crate::Grads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_values() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(&mut params, &mut rng, "fc", 3, 2);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::vector(vec![1.0, -1.0, 0.5]));
        let y = layer.forward(&mut g, x);
        assert_eq!(g.value(y).len(), 2);
    }

    #[test]
    fn lstm_step_produces_bounded_outputs() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(&mut params, &mut rng, "lstm", 4, 8);
        let mut g = Graph::new(&params);
        let x = g.input(Tensor::vector(vec![0.5, -0.5, 1.0, 2.0]));
        let (h0, c0) = cell.zero_state(&mut g);
        let (h1, _c1) = cell.step(&mut g, x, h0, c0);
        assert_eq!(g.value(h1).len(), 8);
        assert!(
            g.value(h1).iter().all(|v| v.abs() <= 1.0),
            "h is a product of sigmoids and tanh"
        );
    }

    #[test]
    fn stacked_lstm_run_uses_all_layers_and_is_order_sensitive() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let stack = StackedLstm::new(&mut params, &mut rng, "stack", 3, 6, 2);
        assert_eq!(stack.layers(), 2);
        assert_eq!(stack.param_ids().len(), 4);

        let mut g = Graph::new(&params);
        let a = g.input(Tensor::vector(vec![1.0, 0.0, 0.0]));
        let b = g.input(Tensor::vector(vec![0.0, 1.0, 0.0]));
        let forward = stack.run(&mut g, &[a, b]);
        let backward = stack.run(&mut g, &[b, a]);
        let delta: f32 = g
            .value(forward)
            .iter()
            .zip(g.value(backward))
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(delta > 1e-6, "the summary must depend on sequence order");
    }

    #[test]
    fn gradcheck_linear_layer() {
        let mut rng = StdRng::seed_from_u64(3);
        let w0 = xavier_init(&mut rng, 2, 3);
        let b0 = Tensor::vector(vec![0.1, -0.2]);
        finite_difference_check(&[("w", w0), ("b", b0)], |g, ids| {
            let w = g.param(ids[0]);
            let b = g.param(ids[1]);
            let x = g.input(Tensor::vector(vec![0.4, -1.2, 0.9]));
            let wx = g.matvec(w, x);
            let y = g.add(wx, b);
            let t = g.tanh(y);
            g.sum(t)
        });
    }

    #[test]
    fn gradcheck_lstm_cell() {
        let mut rng = StdRng::seed_from_u64(4);
        let hidden = 3usize;
        let input = 2usize;
        let w0 = xavier_init(&mut rng, 4 * hidden, input + hidden);
        let b0 = uniform_vector(&mut rng, 4 * hidden, 0.1);
        finite_difference_check(&[("w", w0), ("b", b0)], |g, ids| {
            let w = g.param(ids[0]);
            let b = g.param(ids[1]);
            let x = g.input(Tensor::vector(vec![0.7, -0.3]));
            let h_prev = g.input(Tensor::vector(vec![0.1, 0.0, -0.1]));
            let c_prev = g.input(Tensor::vector(vec![0.2, -0.2, 0.0]));
            let xh = g.concat(&[x, h_prev]);
            let gates_linear = g.matvec(w, xh);
            let gates = g.add(gates_linear, b);
            let i_gate = g.slice(gates, 0, hidden);
            let f_gate = g.slice(gates, hidden, hidden);
            let g_gate = g.slice(gates, 2 * hidden, hidden);
            let o_gate = g.slice(gates, 3 * hidden, hidden);
            let i = g.sigmoid(i_gate);
            let f = g.sigmoid(f_gate);
            let gg = g.tanh(g_gate);
            let o = g.sigmoid(o_gate);
            let retained = g.mul(f, c_prev);
            let written = g.mul(i, gg);
            let c = g.add(retained, written);
            let c_act = g.tanh(c);
            let h = g.mul(o, c_act);
            g.sum(h)
        });
    }

    #[test]
    fn gradcheck_fused_linear_op() {
        let mut rng = StdRng::seed_from_u64(7);
        let w0 = xavier_init(&mut rng, 2, 3);
        let b0 = Tensor::vector(vec![0.1, -0.2]);
        finite_difference_check(&[("w", w0), ("b", b0)], |g, ids| {
            let w = g.param(ids[0]);
            let b = g.param(ids[1]);
            let x = g.input(Tensor::vector(vec![0.4, -1.2, 0.9]));
            let y = g.linear(w, b, x);
            let t = g.tanh(y);
            g.sum(t)
        });
    }

    #[test]
    fn gradcheck_fused_lstm_step() {
        let mut rng = StdRng::seed_from_u64(8);
        let hidden = 3usize;
        let input = 2usize;
        let w0 = xavier_init(&mut rng, 4 * hidden, input + hidden);
        let b0 = uniform_vector(&mut rng, 4 * hidden, 0.1);
        finite_difference_check(&[("w", w0), ("b", b0)], |g, ids| {
            let w = g.param(ids[0]);
            let b = g.param(ids[1]);
            let x = g.input(Tensor::vector(vec![0.7, -0.3]));
            let h_prev = g.input(Tensor::vector(vec![0.1, 0.0, -0.1]));
            let c_prev = g.input(Tensor::vector(vec![0.2, -0.2, 0.0]));
            let (h, c) = g.lstm_step(w, b, x, h_prev, c_prev, hidden);
            let hc = g.concat(&[h, c]);
            let t = g.tanh(hc);
            g.sum(t)
        });
    }

    #[test]
    fn gradcheck_fused_lstm_step_through_state_chain() {
        // Two chained steps: c feeds the next step, so the dc_prev path of
        // the fused backward kernel is exercised with a nonzero incoming
        // cell gradient (a single step only sees dc through dh).
        let mut rng = StdRng::seed_from_u64(9);
        let hidden = 2usize;
        let input = 2usize;
        let w0 = xavier_init(&mut rng, 4 * hidden, input + hidden);
        let b0 = uniform_vector(&mut rng, 4 * hidden, 0.1);
        finite_difference_check(&[("w", w0), ("b", b0)], |g, ids| {
            let w = g.param(ids[0]);
            let b = g.param(ids[1]);
            let x0 = g.input(Tensor::vector(vec![0.7, -0.3]));
            let x1 = g.input(Tensor::vector(vec![-0.5, 0.2]));
            let h0 = g.input(Tensor::vector(vec![0.0, 0.0]));
            let c0 = g.input(Tensor::vector(vec![0.0, 0.0]));
            let (h1, c1) = g.lstm_step(w, b, x0, h0, c0, hidden);
            let (h2, _c2) = g.lstm_step(w, b, x1, h1, c1, hidden);
            g.sum(h2)
        });
    }

    #[test]
    fn fused_lstm_step_matches_unfused_composition() {
        // The fused kernel reassociates the gate dot products (x-segment and
        // h-segment are summed separately), so values agree to float
        // tolerance, not bitwise.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(10);
        let cell = LstmCell::new(&mut params, &mut rng, "lstm", 3, 5);
        let hidden = cell.hidden_dim;
        let [w_id, b_id] = cell.param_ids();

        let mut g = Graph::new(&params);
        let x = g.input(Tensor::vector(vec![0.4, -0.9, 0.3]));
        let (h0, c0) = cell.zero_state(&mut g);
        let (h_fused, c_fused) = cell.step(&mut g, x, h0, c0);

        // Unfused reference, built from primitive ops on the same graph.
        let w = g.param(w_id);
        let b = g.param(b_id);
        let xh = g.concat(&[x, h0]);
        let gates_linear = g.matvec(w, xh);
        let gates = g.add(gates_linear, b);
        let i_gate = g.slice(gates, 0, hidden);
        let f_gate = g.slice(gates, hidden, hidden);
        let g_gate = g.slice(gates, 2 * hidden, hidden);
        let o_gate = g.slice(gates, 3 * hidden, hidden);
        let i = g.sigmoid(i_gate);
        let f = g.sigmoid(f_gate);
        let gg = g.tanh(g_gate);
        let o = g.sigmoid(o_gate);
        let retained = g.mul(f, c0);
        let written = g.mul(i, gg);
        let c_ref = g.add(retained, written);
        let c_act = g.tanh(c_ref);
        let h_ref = g.mul(o, c_act);

        for (fused, reference) in [(h_fused, h_ref), (c_fused, c_ref)] {
            for (a, e) in g.value(fused).iter().zip(g.value(reference)) {
                assert!((a - e).abs() < 1e-5, "fused {a} vs unfused {e}");
            }
        }
    }

    #[test]
    fn bindings_share_parameter_nodes() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(11);
        let embedding = Embedding::new(&mut params, &mut rng, "tok", 6, 4);
        let stack = StackedLstm::new(&mut params, &mut rng, "stack", 4, 5, 2);

        let mut g = Graph::new(&params);
        let table = embedding.bind(&mut g);
        let lstm = stack.bind(&mut g);
        let sequence: Vec<Var> = [0usize, 3, 1]
            .iter()
            .map(|&t| table.lookup(&mut g, t))
            .collect();
        let bound_summary = lstm.run(&mut g, &sequence);

        let mut g2 = Graph::new(&params);
        let seq2: Vec<Var> = [0usize, 3, 1]
            .iter()
            .map(|&t| embedding.lookup(&mut g2, t))
            .collect();
        let unbound_summary = stack.run(&mut g2, &seq2);

        assert_eq!(
            g.value(bound_summary),
            g2.value(unbound_summary),
            "hoisting parameter nodes must not change values"
        );
    }

    #[test]
    fn training_a_linear_layer_reduces_loss() {
        // One gradient step on a toy regression must reduce the loss.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(&mut params, &mut rng, "fc", 2, 1);

        let loss_of = |params: &Params| -> f32 {
            let mut g = Graph::new(params);
            let x = g.input(Tensor::vector(vec![1.0, 2.0]));
            let y = layer.forward(&mut g, x);
            let target = g.input(Tensor::vector(vec![3.0]));
            let diff = g.sub(y, target);
            let sq = g.mul(diff, diff);
            let loss = g.sum(sq);
            g.value(loss)[0]
        };

        let before = loss_of(&params);
        let mut grads = Grads::new(&params);
        {
            let mut g = Graph::new(&params);
            let x = g.input(Tensor::vector(vec![1.0, 2.0]));
            let y = layer.forward(&mut g, x);
            let target = g.input(Tensor::vector(vec![3.0]));
            let diff = g.sub(y, target);
            let sq = g.mul(diff, diff);
            let loss = g.sum(sq);
            g.backward(loss, &mut grads);
        }
        for [w, b] in [layer.param_ids()] {
            for id in [w, b] {
                if let Some(grad) = grads.get(id) {
                    let grad = grad.clone();
                    params.get_mut(id).add_scaled(&grad, -0.05);
                }
            }
        }
        assert!(loss_of(&params) < before);
    }

    #[test]
    fn embedding_lookup_returns_rows() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(6);
        let embedding = Embedding::new(&mut params, &mut rng, "tok", 5, 4);
        let expected = params.get(embedding.param_id()).row(3).to_vec();
        let mut g = Graph::new(&params);
        let looked_up = embedding.lookup(&mut g, 3);
        assert_eq!(g.value(looked_up), expected.as_slice());
    }
}
