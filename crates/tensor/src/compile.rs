//! Graph-once compiled execution: record a tape into a flat schedule, then
//! replay it per sample without rebuilding nodes.
//!
//! The tape engine ([`Graph`]) rebuilds a per-sample node list — with a
//! parameter-copy node, a shape `Vec`, and a pooled buffer per op — even
//! though a surrogate's graph *structure* is identical for every sample of
//! the same shape. [`CompiledProgram::record`] runs a model closure once on
//! an ordinary eager graph and freezes the resulting tape into a flat
//! topological schedule of op descriptors with preassigned offsets into one
//! contiguous value arena and one gradient arena (extending
//! [`TapeArena`](crate::TapeArena)'s buffer pooling from individual buffers
//! to whole schedules). [`CompiledProgram::replay`] then re-runs the closure
//! in **bind mode** — a cheap validation pass that captures only the
//! dynamic data (input tensors, embedding row indices, per-sample scalar
//! constants) — and executes the schedule with the fused kernels in
//! [`crate::kernels`].
//!
//! # Bit-equality with the tape
//!
//! Replay is arranged to be **bitwise identical** to running the same
//! closure on the tape:
//!
//! * forward values route through the same kernel functions in the same
//!   node order;
//! * backward contributions are applied in the same reverse-node order,
//!   with the tape's assign-then-accumulate discipline (a slot's first
//!   contribution overwrites, later ones add) replicated per arena slot;
//! * parameter gradients flush into [`Grads`] at the same reverse-sweep
//!   positions via the same accumulation arithmetic.
//!
//! One documented edge is out of scope: a graph whose [`Graph::slice`]
//! regions *overlap* and whose gradient elements are negative zero could in
//! principle differ in the sign of zero between engines; no model in this
//! workspace (and no test) builds overlapping slices, and the optimize
//! stage that reuses theta slices runs on the tape.
//!
//! # Structure keys
//!
//! A program is valid for every sample whose closure builds the *same op
//! sequence* (same ops, operands, and tensor lengths). Callers name that
//! equivalence class with a [`ProgramKey`] and look programs up in a
//! [`ProgramCache`]; a key must uniquely determine the structure — replay
//! panics loudly if a rebuilt op diverges from the recorded schedule.

use std::collections::HashMap;
use std::sync::Arc;

use crate::graph::{Graph, Op};
use crate::kernels;
use crate::params::{Grads, ParamId, Params};
use crate::{Tensor, Var};

/// A structure key naming one compiled graph shape, e.g. a model kind plus
/// the per-sample dimensions that change its op sequence. Equal keys must
/// imply identical op sequences.
pub type ProgramKey = Vec<u32>;

/// One schedule entry: the op kind plus operand node indices. Dynamic
/// per-sample data (input values, row indices, scalar constants) lives in
/// the binder, not here.
#[derive(Debug, Clone, PartialEq)]
enum CompiledOp {
    Param(ParamId),
    Input,
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
    Scale(u32),
    AddScalar(u32),
    MatVec {
        w: u32,
        x: u32,
    },
    Linear {
        w: u32,
        b: u32,
        x: u32,
    },
    LstmStep {
        w: u32,
        b: u32,
        x: u32,
        h_prev: u32,
        c_prev: u32,
        hidden: u32,
    },
    Sigmoid(u32),
    Tanh(u32),
    Relu(u32),
    Abs(u32),
    Concat(Box<[u32]>),
    Slice {
        src: u32,
        start: usize,
        len: usize,
    },
    Row {
        table: u32,
    },
    Sum(u32),
    Mean(u32),
}

/// A frozen tape: a flat topological schedule with preassigned value/grad
/// arena offsets, recorded once per graph structure and replayed per sample.
///
/// Programs are immutable and cheaply shared across worker threads behind an
/// [`Arc`]; each worker replays against its own [`ReplayBuffers`].
#[derive(Debug)]
pub struct CompiledProgram {
    ops: Vec<CompiledOp>,
    /// Per-node offset into the value and gradient arenas (monotone in node
    /// index, so operands always precede their consumer in the arena).
    offsets: Vec<usize>,
    /// Per-node value length.
    lens: Vec<usize>,
    /// Total arena length.
    values_len: usize,
    /// Node index of the recorded scalar loss.
    loss: usize,
}

impl CompiledProgram {
    /// Records one schedule by running `build` on an ordinary eager graph
    /// and freezing the tape it leaves behind.
    ///
    /// # Panics
    ///
    /// Panics if `build` does not return a scalar loss node.
    pub fn record(params: &Params, build: impl FnOnce(&mut Graph<'_>) -> Var) -> Arc<Self> {
        let mut graph = Graph::new(params);
        let loss = build(&mut graph);
        assert_eq!(
            graph.value(loss).len(),
            1,
            "compiled programs require a scalar loss"
        );
        let count = graph.node_count();
        let mut ops = Vec::with_capacity(count);
        let mut offsets = Vec::with_capacity(count);
        let mut lens = Vec::with_capacity(count);
        let mut values_len = 0usize;
        for index in 0..count {
            let len = graph.node_len(index);
            offsets.push(values_len);
            lens.push(len);
            values_len += len;
            let op = match graph.node_op(index) {
                Op::Param(id) => CompiledOp::Param(*id),
                Op::Input => CompiledOp::Input,
                Op::Add(a, b) => CompiledOp::Add(a.0 as u32, b.0 as u32),
                Op::Sub(a, b) => CompiledOp::Sub(a.0 as u32, b.0 as u32),
                Op::Mul(a, b) => CompiledOp::Mul(a.0 as u32, b.0 as u32),
                Op::Scale(a, _) => CompiledOp::Scale(a.0 as u32),
                Op::AddScalar(a) => CompiledOp::AddScalar(a.0 as u32),
                Op::MatVec { w, x } => CompiledOp::MatVec {
                    w: w.0 as u32,
                    x: x.0 as u32,
                },
                Op::Linear { w, b, x } => CompiledOp::Linear {
                    w: w.0 as u32,
                    b: b.0 as u32,
                    x: x.0 as u32,
                },
                Op::LstmStep {
                    w,
                    b,
                    x,
                    h_prev,
                    c_prev,
                    hidden,
                } => CompiledOp::LstmStep {
                    w: w.0 as u32,
                    b: b.0 as u32,
                    x: x.0 as u32,
                    h_prev: h_prev.0 as u32,
                    c_prev: c_prev.0 as u32,
                    hidden: *hidden as u32,
                },
                Op::Sigmoid(a) => CompiledOp::Sigmoid(a.0 as u32),
                Op::Tanh(a) => CompiledOp::Tanh(a.0 as u32),
                Op::Relu(a) => CompiledOp::Relu(a.0 as u32),
                Op::Abs(a) => CompiledOp::Abs(a.0 as u32),
                Op::Concat(parts) => CompiledOp::Concat(parts.iter().map(|p| p.0 as u32).collect()),
                Op::Slice { src, start, len } => CompiledOp::Slice {
                    src: src.0 as u32,
                    start: *start,
                    len: *len,
                },
                Op::Row { table, .. } => CompiledOp::Row {
                    table: table.0 as u32,
                },
                Op::Sum(a) => CompiledOp::Sum(a.0 as u32),
                Op::Mean(a) => CompiledOp::Mean(a.0 as u32),
            };
            ops.push(op);
        }
        Arc::new(CompiledProgram {
            ops,
            offsets,
            lens,
            values_len,
            loss: loss.0,
        })
    }

    /// Number of scheduled ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for an empty schedule (never produced by [`Self::record`], which
    /// requires a loss node, but the conventional pairing with [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the schedule for one sample: re-runs `build` in bind mode to
    /// capture the sample's dynamic data, executes the forward sweep with
    /// the fused kernels, then backpropagates with seed `seed`, flushing
    /// parameter gradients into `grads`. Returns the loss value.
    ///
    /// Bit-identical to running `build` through
    /// [`Graph::backward_scaled`](Graph::backward_scaled) on the tape.
    ///
    /// # Panics
    ///
    /// Panics if `build` constructs a different op sequence than the one
    /// recorded (a [`ProgramKey`] collision — keys must uniquely determine
    /// graph structure).
    pub fn replay(
        self: &Arc<Self>,
        params: &Params,
        buffers: &mut ReplayBuffers,
        grads: &mut Grads,
        seed: f32,
        build: impl FnOnce(&mut Graph<'_>) -> Var,
    ) -> f64 {
        let mut binder = self.bind(params, buffers, build);
        let loss_value = self.forward_sweep(params, &mut binder);
        let Binder {
            values,
            rows,
            consts,
            ..
        } = &*binder;

        // Backward sweep: same reverse order, same assign-then-accumulate
        // slot discipline as the tape (`set` marks populated slots).
        let mut grad_arena = std::mem::take(&mut buffers.grads);
        grad_arena.resize(self.values_len.max(grad_arena.len()), 0.0);
        let mut set = std::mem::take(&mut buffers.set);
        set.clear();
        set.resize(self.ops.len(), false);
        let mut scratch = std::mem::take(&mut buffers.scratch);
        grad_arena[self.offsets[self.loss]] = seed;
        set[self.loss] = true;

        for index in (0..self.ops.len()).rev() {
            if !set[index] {
                continue;
            }
            let len = self.lens[index];
            let (glo, ghi) = grad_arena.split_at_mut(self.offsets[index]);
            let g = &ghi[..len];
            let value_of = |v: u32| -> &[f32] {
                let v = v as usize;
                match &self.ops[v] {
                    CompiledOp::Param(id) => params.get(*id).data(),
                    _ => &values[self.offsets[v]..self.offsets[v] + self.lens[v]],
                }
            };
            // A target operand's gradient slot within the arena prefix.
            macro_rules! slot {
                ($v:expr) => {{
                    let v = $v as usize;
                    &mut glo[self.offsets[v]..self.offsets[v] + self.lens[v]]
                }};
            }
            match &self.ops[index] {
                CompiledOp::Input => {}
                CompiledOp::Param(id) => {
                    grads.accumulate_at(*id, params.get(*id).shape(), 0, g, 1.0);
                }
                CompiledOp::Add(a, b) => {
                    accumulate(slot!(*a), &mut set[*a as usize], g.iter().copied());
                    accumulate(slot!(*b), &mut set[*b as usize], g.iter().copied());
                }
                CompiledOp::Sub(a, b) => {
                    accumulate(slot!(*a), &mut set[*a as usize], g.iter().copied());
                    accumulate(slot!(*b), &mut set[*b as usize], g.iter().map(|v| -v));
                }
                CompiledOp::Mul(a, b) => {
                    // Values and gradients live in separate arenas, so each
                    // operand's contribution can read the other's value while
                    // writing its own gradient slot, even when `a == b`.
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        g.iter().zip(value_of(*b)).map(|(g, v)| g * v),
                    );
                    accumulate(
                        slot!(*b),
                        &mut set[*b as usize],
                        g.iter().zip(value_of(*a)).map(|(g, v)| g * v),
                    );
                }
                CompiledOp::Scale(a) => {
                    let factor = consts[index];
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        g.iter().map(|v| v * factor),
                    );
                }
                CompiledOp::AddScalar(a) => {
                    accumulate(slot!(*a), &mut set[*a as usize], g.iter().copied());
                }
                CompiledOp::MatVec { w, x } => {
                    let n = self.lens[*x as usize];
                    let targets = [*w as usize, *x as usize];
                    let ([dw, dx], spills) = route_targets(
                        glo,
                        &mut scratch,
                        &self.offsets,
                        &self.lens,
                        &mut set,
                        targets,
                    );
                    kernels::matvec_grad(value_of(*w), value_of(*x), g, len, n, dw, dx);
                    for (i, spill) in spills.iter().enumerate() {
                        if let Some((offset, slen)) = spill {
                            accumulate(
                                slot!(targets[i]),
                                &mut set[targets[i]],
                                scratch[*offset..offset + slen].iter().copied(),
                            );
                        }
                    }
                }
                CompiledOp::Linear { w, b, x } => {
                    let n = self.lens[*x as usize];
                    let targets = [*w as usize, *b as usize, *x as usize];
                    let ([dw, db, dx], spills) = route_targets(
                        glo,
                        &mut scratch,
                        &self.offsets,
                        &self.lens,
                        &mut set,
                        targets,
                    );
                    kernels::linear_grad(value_of(*w), value_of(*x), g, len, n, dw, db, dx);
                    for (i, spill) in spills.iter().enumerate() {
                        if let Some((offset, slen)) = spill {
                            accumulate(
                                slot!(targets[i]),
                                &mut set[targets[i]],
                                scratch[*offset..offset + slen].iter().copied(),
                            );
                        }
                    }
                }
                CompiledOp::LstmStep {
                    w,
                    b,
                    x,
                    h_prev,
                    c_prev,
                    hidden,
                } => {
                    let hidden = *hidden as usize;
                    let input = self.lens[*x as usize];
                    let targets = [
                        *w as usize,
                        *b as usize,
                        *x as usize,
                        *h_prev as usize,
                        *c_prev as usize,
                    ];
                    let ([dw, db, dx, dh, dc], spills) = route_targets(
                        glo,
                        &mut scratch,
                        &self.offsets,
                        &self.lens,
                        &mut set,
                        targets,
                    );
                    kernels::lstm_step_grad(
                        value_of(*w),
                        value_of(*x),
                        value_of(*h_prev),
                        value_of(*c_prev),
                        &values[self.offsets[index]..self.offsets[index] + len],
                        g,
                        hidden,
                        input,
                        dw,
                        db,
                        dx,
                        dh,
                        dc,
                    );
                    for (i, spill) in spills.iter().enumerate() {
                        if let Some((offset, slen)) = spill {
                            accumulate(
                                slot!(targets[i]),
                                &mut set[targets[i]],
                                scratch[*offset..offset + slen].iter().copied(),
                            );
                        }
                    }
                }
                CompiledOp::Sigmoid(a) => {
                    let y = &values[self.offsets[index]..self.offsets[index] + len];
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        g.iter().zip(y).map(|(g, y)| g * y * (1.0 - y)),
                    );
                }
                CompiledOp::Tanh(a) => {
                    let y = &values[self.offsets[index]..self.offsets[index] + len];
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        g.iter().zip(y).map(|(g, y)| g * (1.0 - y * y)),
                    );
                }
                CompiledOp::Relu(a) => {
                    let x = value_of(*a);
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        g.iter()
                            .zip(x)
                            .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 }),
                    );
                }
                CompiledOp::Abs(a) => {
                    let x = value_of(*a);
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        g.iter()
                            .zip(x)
                            .map(|(g, x)| if *x >= 0.0 { *g } else { -*g }),
                    );
                }
                CompiledOp::Concat(parts) => {
                    let mut offset = 0;
                    for part in parts.iter() {
                        let part_len = self.lens[*part as usize];
                        accumulate(
                            slot!(*part),
                            &mut set[*part as usize],
                            g[offset..offset + part_len].iter().copied(),
                        );
                        offset += part_len;
                    }
                }
                CompiledOp::Slice {
                    src,
                    start,
                    len: slice_len,
                } => {
                    let total = self.lens[*src as usize];
                    scratch.clear();
                    scratch.resize(total, 0.0);
                    scratch[*start..*start + *slice_len].copy_from_slice(g);
                    accumulate(
                        slot!(*src),
                        &mut set[*src as usize],
                        scratch.iter().copied(),
                    );
                }
                CompiledOp::Row { table } => {
                    let row = rows[index] as usize;
                    if let CompiledOp::Param(id) = self.ops[*table as usize] {
                        // Same sparse fast path as the tape: scatter straight
                        // into the parameter gradient without a dense
                        // table-sized buffer.
                        grads.accumulate_at(id, params.get(id).shape(), row * len, g, 1.0);
                    } else {
                        let total = self.lens[*table as usize];
                        scratch.clear();
                        scratch.resize(total, 0.0);
                        scratch[row * len..row * len + len].copy_from_slice(g);
                        accumulate(
                            slot!(*table),
                            &mut set[*table as usize],
                            scratch.iter().copied(),
                        );
                    }
                }
                CompiledOp::Sum(a) => {
                    let gval = g[0];
                    let src_len = self.lens[*a as usize];
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        std::iter::repeat_n(gval, src_len),
                    );
                }
                CompiledOp::Mean(a) => {
                    let src_len = self.lens[*a as usize];
                    let gval = g[0] / src_len.max(1) as f32;
                    accumulate(
                        slot!(*a),
                        &mut set[*a as usize],
                        std::iter::repeat_n(gval, src_len),
                    );
                }
            }
        }

        // Park every buffer (including the binder box itself) for the next
        // replay.
        buffers.binder = Some(binder);
        buffers.grads = grad_arena;
        buffers.set = set;
        buffers.scratch = scratch;
        loss_value
    }

    /// Forward-only replay: re-runs `build` in bind mode against the
    /// recorded schedule and executes the forward sweep — no gradient arena,
    /// no backward sweep. This is the serving fast path: a surrogate backend
    /// answers predictions with exactly the forward arithmetic
    /// [`Self::replay`] performs, so the returned value is bit-identical to
    /// a full taped forward pass over the same graph
    /// (`replay_forward_matches_the_tape_and_the_full_replay` below pins it).
    ///
    /// # Panics
    ///
    /// Panics if `build` constructs a different op sequence than the one
    /// recorded, exactly like [`Self::replay`].
    pub fn replay_forward(
        self: &Arc<Self>,
        params: &Params,
        buffers: &mut ReplayBuffers,
        build: impl FnOnce(&mut Graph<'_>) -> Var,
    ) -> f64 {
        let mut binder = self.bind(params, buffers, build);
        let value = self.forward_sweep(params, &mut binder);
        buffers.binder = Some(binder);
        value
    }

    /// The bind pass shared by [`Self::replay`] and [`Self::replay_forward`].
    fn bind(
        self: &Arc<Self>,
        params: &Params,
        buffers: &mut ReplayBuffers,
        build: impl FnOnce(&mut Graph<'_>) -> Var,
    ) -> Box<Binder> {
        // Bind pass: validate structure, capture inputs/rows/constants. The
        // binder box (and its arenas, including the value arena that input
        // data is written into directly) is parked in `buffers` between
        // replays; the arenas grow but are never cleared — every slot the
        // sweeps read is either computed by the forward sweep or rewritten
        // during bind (each `Input`/`Row`/`Scale`/`AddScalar` op rebinds on
        // every replay), so stale data is never observed.
        let mut binder = match buffers.binder.take() {
            Some(mut binder) => {
                binder.program = Arc::clone(self);
                binder.cursor = 0;
                binder
            }
            None => Box::new(Binder {
                program: Arc::clone(self),
                cursor: 0,
                values: Vec::new(),
                rows: Vec::new(),
                consts: Vec::new(),
            }),
        };
        if binder.values.len() < self.values_len {
            binder.values.resize(self.values_len, 0.0);
        }
        if binder.rows.len() < self.ops.len() {
            binder.rows.resize(self.ops.len(), 0);
        }
        if binder.consts.len() < self.ops.len() {
            binder.consts.resize(self.ops.len(), 0.0);
        }
        let mut graph = Graph::bound(params, binder);
        let loss = build(&mut graph);
        let binder = graph
            .take_binder()
            .expect("a bind-mode graph retains its binder");
        assert_eq!(
            binder.cursor,
            self.ops.len(),
            "compiled replay built {} of {} recorded ops — the program key does not uniquely \
             determine graph structure",
            binder.cursor,
            self.ops.len()
        );
        assert_eq!(
            loss.0, self.loss,
            "compiled replay returned a different loss node than recorded"
        );
        binder
    }

    /// The forward sweep shared by [`Self::replay`] and
    /// [`Self::replay_forward`]; returns the value of the recorded root node.
    fn forward_sweep(&self, params: &Params, binder: &mut Binder) -> f64 {
        // Forward sweep over the flat arena. Parameter slots are never
        // written (reads go straight to the store), input slots were filled
        // by the bind pass, and every other slot is fully overwritten before
        // any read, so stale arena contents from earlier replays are
        // harmless.
        let Binder {
            values,
            rows,
            consts,
            ..
        } = binder;
        let values: &mut [f32] = values;
        for index in 0..self.ops.len() {
            let len = self.lens[index];
            let (lo, hi) = values.split_at_mut(self.offsets[index]);
            let out = &mut hi[..len];
            let arg = |v: u32| -> &[f32] {
                let v = v as usize;
                match &self.ops[v] {
                    CompiledOp::Param(id) => params.get(*id).data(),
                    _ => &lo[self.offsets[v]..self.offsets[v] + self.lens[v]],
                }
            };
            match &self.ops[index] {
                // Param reads go to the store; Input slots were written in
                // place by the bind pass.
                CompiledOp::Param(_) | CompiledOp::Input => {}
                CompiledOp::Add(a, b) => {
                    for ((o, x), y) in out.iter_mut().zip(arg(*a)).zip(arg(*b)) {
                        *o = x + y;
                    }
                }
                CompiledOp::Sub(a, b) => {
                    for ((o, x), y) in out.iter_mut().zip(arg(*a)).zip(arg(*b)) {
                        *o = x - y;
                    }
                }
                CompiledOp::Mul(a, b) => {
                    for ((o, x), y) in out.iter_mut().zip(arg(*a)).zip(arg(*b)) {
                        *o = x * y;
                    }
                }
                CompiledOp::Scale(a) => {
                    let factor = consts[index];
                    for (o, x) in out.iter_mut().zip(arg(*a)) {
                        *o = x * factor;
                    }
                }
                CompiledOp::AddScalar(a) => {
                    let constant = consts[index];
                    for (o, x) in out.iter_mut().zip(arg(*a)) {
                        *o = x + constant;
                    }
                }
                CompiledOp::MatVec { w, x } => {
                    let n = self.lens[*x as usize];
                    kernels::matvec(arg(*w), arg(*x), len, n, out);
                }
                CompiledOp::Linear { w, b, x } => {
                    let n = self.lens[*x as usize];
                    kernels::linear(arg(*w), arg(*b), arg(*x), len, n, out);
                }
                CompiledOp::LstmStep {
                    w,
                    b,
                    x,
                    h_prev,
                    c_prev,
                    hidden,
                } => {
                    let input = self.lens[*x as usize];
                    kernels::lstm_step(
                        arg(*w),
                        arg(*b),
                        arg(*x),
                        arg(*h_prev),
                        arg(*c_prev),
                        *hidden as usize,
                        input,
                        out,
                    );
                }
                CompiledOp::Sigmoid(a) => {
                    for (o, x) in out.iter_mut().zip(arg(*a)) {
                        *o = kernels::sigmoid(*x);
                    }
                }
                CompiledOp::Tanh(a) => {
                    for (o, x) in out.iter_mut().zip(arg(*a)) {
                        *o = x.tanh();
                    }
                }
                CompiledOp::Relu(a) => {
                    for (o, x) in out.iter_mut().zip(arg(*a)) {
                        *o = x.max(0.0);
                    }
                }
                CompiledOp::Abs(a) => {
                    for (o, x) in out.iter_mut().zip(arg(*a)) {
                        *o = x.abs();
                    }
                }
                CompiledOp::Concat(parts) => {
                    let mut offset = 0;
                    for part in parts.iter() {
                        let src = arg(*part);
                        out[offset..offset + src.len()].copy_from_slice(src);
                        offset += src.len();
                    }
                }
                CompiledOp::Slice { src, start, len } => {
                    out.copy_from_slice(&arg(*src)[*start..*start + *len]);
                }
                CompiledOp::Row { table } => {
                    let row = rows[index] as usize;
                    out.copy_from_slice(&arg(*table)[row * len..(row + 1) * len]);
                }
                CompiledOp::Sum(a) => {
                    out[0] = arg(*a).iter().sum();
                }
                CompiledOp::Mean(a) => {
                    let src = arg(*a);
                    out[0] = if src.is_empty() {
                        0.0
                    } else {
                        src.iter().sum::<f32>() / src.len() as f32
                    };
                }
            }
        }
        f64::from(values[self.offsets[self.loss]])
    }
}

/// What [`route_targets`] hands back: each target's kernel destination
/// buffer, plus a `(scratch_offset, len)` spill entry for every target that
/// was routed to scratch instead of its arena slot.
type RoutedTargets<'a, const N: usize> = ([&'a mut [f32]; N], [Option<(usize, usize)>; N]);

/// Chooses a destination buffer for each gradient target of a multi-output
/// VJP kernel (`matvec_grad`, `linear_grad`, `lstm_step_grad`).
///
/// A target whose slot is unset takes the **direct path**: its arena slot is
/// zeroed, handed to the kernel, and marked set — bit-identical to the
/// scratch round-trip, because the kernel performs the exact same
/// accumulation arithmetic over a zeroed buffer either way and [`accumulate`]
/// on an unset slot assigns the scratch contents verbatim; the direct path
/// just skips the copy. A target whose slot already holds a gradient (or
/// that aliases an earlier target) is routed to a zeroed scratch window
/// instead; the caller [`accumulate`]s it after the kernel via the returned
/// `(offset, len)` spill entry, in the same target order as before.
fn route_targets<'a, const N: usize>(
    glo: &'a mut [f32],
    scratch: &'a mut Vec<f32>,
    offsets: &[usize],
    lens: &[usize],
    set: &mut [bool],
    targets: [usize; N],
) -> RoutedTargets<'a, N> {
    let direct: [bool; N] =
        std::array::from_fn(|i| !set[targets[i]] && targets[..i].iter().all(|&t| t != targets[i]));
    let mut spills: [Option<(usize, usize)>; N] = [None; N];
    let mut scratch_len = 0usize;
    for i in 0..N {
        if !direct[i] {
            let len = lens[targets[i]];
            spills[i] = Some((scratch_len, len));
            scratch_len += len;
        }
    }
    scratch.clear();
    scratch.resize(scratch_len, 0.0);
    let mut out: [Option<&'a mut [f32]>; N] = std::array::from_fn(|_| None);
    // Carve the direct windows out of the arena prefix in ascending offset
    // order (they are disjoint — aliases were spilled above), zeroing each:
    // slots hold stale data from earlier replays.
    let mut order: [usize; N] = std::array::from_fn(|i| i);
    order.sort_unstable_by_key(|&i| offsets[targets[i]]);
    let mut rest: &'a mut [f32] = glo;
    let mut consumed = 0usize;
    for &i in order.iter().filter(|&&i| direct[i]) {
        let target = targets[i];
        let (_, tail) = rest.split_at_mut(offsets[target] - consumed);
        let (window, tail) = tail.split_at_mut(lens[target]);
        window.fill(0.0);
        set[target] = true;
        consumed = offsets[target] + lens[target];
        rest = tail;
        out[i] = Some(window);
    }
    let mut srest: &'a mut [f32] = scratch.as_mut_slice();
    for i in 0..N {
        if spills[i].is_some() {
            let (window, tail) = srest.split_at_mut(lens[targets[i]]);
            out[i] = Some(window);
            srest = tail;
        }
    }
    (out.map(|w| w.expect("every target routed")), spills)
}

/// The tape's gradient-slot discipline on a flat arena: the first
/// contribution to a slot assigns, later contributions add elementwise.
/// Keeping assignment (not `0 + v`) on the first write preserves the sign
/// of zero exactly as the tape's fresh-buffer path does.
#[inline]
fn accumulate(dst: &mut [f32], set: &mut bool, contributions: impl Iterator<Item = f32>) {
    if *set {
        for (d, v) in dst.iter_mut().zip(contributions) {
            *d += v;
        }
    } else {
        for (d, v) in dst.iter_mut().zip(contributions) {
            *d = v;
        }
        *set = true;
    }
}

/// Bind-mode state: walks the recorded schedule while the model closure
/// re-runs, validating each op against the recording and capturing the
/// sample's dynamic data (input tensors, row indices, scalar constants) —
/// no values are computed.
#[derive(Debug)]
pub(crate) struct Binder {
    program: Arc<CompiledProgram>,
    cursor: usize,
    /// The program's value arena. Input data is bound straight into its
    /// recorded slots, so the forward sweep never touches `Input` nodes.
    values: Vec<f32>,
    /// Per-node rebound row index (`Row` nodes only).
    rows: Vec<u32>,
    /// Per-node rebound scalar constant (`Scale`/`AddScalar` nodes only).
    consts: Vec<f32>,
}

impl Binder {
    fn advance(&mut self) -> usize {
        let index = self.cursor;
        assert!(
            index < self.program.ops.len(),
            "compiled replay built more than the {} recorded ops — the program key does not \
             uniquely determine graph structure",
            self.program.ops.len()
        );
        self.cursor += 1;
        index
    }

    fn mismatch(&self, index: usize, built: &str) -> ! {
        panic!(
            "compiled schedule mismatch at node {index}: recorded {:?}, rebuilt {built} — the \
             program key must uniquely determine graph structure",
            self.program.ops[index]
        );
    }

    pub(crate) fn param(&mut self, id: ParamId) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Param(recorded) if recorded == id => Var(index),
            _ => self.mismatch(index, "param"),
        }
    }

    pub(crate) fn input(&mut self, value: &Tensor) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Input if value.len() == self.program.lens[index] => {
                let offset = self.program.offsets[index];
                self.values[offset..offset + value.len()].copy_from_slice(value.data());
                Var(index)
            }
            _ => self.mismatch(index, "input (or its length changed)"),
        }
    }

    pub(crate) fn add(&mut self, a: Var, b: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Add(ra, rb) if (ra as usize, rb as usize) == (a.0, b.0) => Var(index),
            _ => self.mismatch(index, "add"),
        }
    }

    pub(crate) fn sub(&mut self, a: Var, b: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Sub(ra, rb) if (ra as usize, rb as usize) == (a.0, b.0) => Var(index),
            _ => self.mismatch(index, "sub"),
        }
    }

    pub(crate) fn mul(&mut self, a: Var, b: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Mul(ra, rb) if (ra as usize, rb as usize) == (a.0, b.0) => Var(index),
            _ => self.mismatch(index, "mul"),
        }
    }

    pub(crate) fn scale(&mut self, a: Var, factor: f32) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Scale(ra) if ra as usize == a.0 => {
                self.consts[index] = factor;
                Var(index)
            }
            _ => self.mismatch(index, "scale"),
        }
    }

    pub(crate) fn add_scalar(&mut self, a: Var, constant: f32) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::AddScalar(ra) if ra as usize == a.0 => {
                self.consts[index] = constant;
                Var(index)
            }
            _ => self.mismatch(index, "add_scalar"),
        }
    }

    pub(crate) fn matvec(&mut self, w: Var, x: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::MatVec { w: rw, x: rx } if (rw as usize, rx as usize) == (w.0, x.0) => {
                Var(index)
            }
            _ => self.mismatch(index, "matvec"),
        }
    }

    pub(crate) fn linear(&mut self, w: Var, b: Var, x: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Linear {
                w: rw,
                b: rb,
                x: rx,
            } if (rw as usize, rb as usize, rx as usize) == (w.0, b.0, x.0) => Var(index),
            _ => self.mismatch(index, "linear"),
        }
    }

    pub(crate) fn lstm_step(
        &mut self,
        w: Var,
        b: Var,
        x: Var,
        h_prev: Var,
        c_prev: Var,
        hidden: usize,
    ) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::LstmStep {
                w: rw,
                b: rb,
                x: rx,
                h_prev: rh,
                c_prev: rc,
                hidden: rhidden,
            } if (
                rw as usize,
                rb as usize,
                rx as usize,
                rh as usize,
                rc as usize,
                rhidden as usize,
            ) == (w.0, b.0, x.0, h_prev.0, c_prev.0, hidden) =>
            {
                Var(index)
            }
            _ => self.mismatch(index, "lstm_step"),
        }
    }

    pub(crate) fn sigmoid(&mut self, a: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Sigmoid(ra) if ra as usize == a.0 => Var(index),
            _ => self.mismatch(index, "sigmoid"),
        }
    }

    pub(crate) fn tanh(&mut self, a: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Tanh(ra) if ra as usize == a.0 => Var(index),
            _ => self.mismatch(index, "tanh"),
        }
    }

    pub(crate) fn relu(&mut self, a: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Relu(ra) if ra as usize == a.0 => Var(index),
            _ => self.mismatch(index, "relu"),
        }
    }

    pub(crate) fn abs(&mut self, a: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Abs(ra) if ra as usize == a.0 => Var(index),
            _ => self.mismatch(index, "abs"),
        }
    }

    pub(crate) fn concat(&mut self, parts: &[Var]) -> Var {
        let index = self.advance();
        match &self.program.ops[index] {
            CompiledOp::Concat(recorded)
                if recorded.len() == parts.len()
                    && recorded.iter().zip(parts).all(|(r, p)| *r as usize == p.0) =>
            {
                Var(index)
            }
            _ => self.mismatch(index, "concat"),
        }
    }

    pub(crate) fn slice(&mut self, src: Var, start: usize, len: usize) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Slice {
                src: rsrc,
                start: rstart,
                len: rlen,
            } if (rsrc as usize, rstart, rlen) == (src.0, start, len) => Var(index),
            _ => self.mismatch(index, "slice"),
        }
    }

    pub(crate) fn row(&mut self, table: Var, row: usize) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Row { table: rtable } if rtable as usize == table.0 => {
                self.rows[index] = row as u32;
                Var(index)
            }
            _ => self.mismatch(index, "row"),
        }
    }

    pub(crate) fn sum(&mut self, a: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Sum(ra) if ra as usize == a.0 => Var(index),
            _ => self.mismatch(index, "sum"),
        }
    }

    pub(crate) fn mean(&mut self, a: Var) -> Var {
        let index = self.advance();
        match self.program.ops[index] {
            CompiledOp::Mean(ra) if ra as usize == a.0 => Var(index),
            _ => self.mismatch(index, "mean"),
        }
    }
}

/// Per-worker replay storage: value and gradient arenas, slot flags, VJP
/// scratch, and the parked binder (with its dynamic-data arenas), all
/// reused across replays (and across programs — buffers only ever grow).
#[derive(Debug, Default)]
pub struct ReplayBuffers {
    grads: Vec<f32>,
    set: Vec<bool>,
    scratch: Vec<f32>,
    binder: Option<Box<Binder>>,
}

impl ReplayBuffers {
    /// Creates an empty buffer set (allocates lazily on first replay).
    pub fn new() -> Self {
        ReplayBuffers::default()
    }
}

/// A cache of compiled programs keyed by graph structure.
///
/// Lookups never iterate the map, so hash-order nondeterminism cannot leak
/// into results; recording happens on the calling thread in first-encounter
/// order.
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: HashMap<ProgramKey, Arc<CompiledProgram>>,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when no programs have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Returns the program for `key`, recording it with `build` on a miss.
    pub fn get_or_record(
        &mut self,
        key: ProgramKey,
        params: &Params,
        build: impl FnOnce(&mut Graph<'_>) -> Var,
    ) -> Arc<CompiledProgram> {
        if let Some(program) = self.programs.get(&key) {
            return Arc::clone(program);
        }
        let program = CompiledProgram::record(params, build);
        self.programs.insert(key, Arc::clone(&program));
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One synthetic "sample": an input vector, an embedding row pair, and a
    /// per-sample loss scale — covering every dynamic-rebinding channel.
    struct Sample {
        x: Vec<f32>,
        row: usize,
        scale: f32,
    }

    fn samples() -> Vec<Sample> {
        (0..7)
            .map(|i| Sample {
                x: (0..4)
                    .map(|j| ((i * 5 + j * 3) % 9) as f32 * 0.4 - 1.3)
                    .collect(),
                row: (i * 3) % 5,
                scale: 1.0 / (0.5 + i as f32),
            })
            .collect()
    }

    fn test_params() -> Params {
        let mut params = Params::new();
        params.add(
            "w",
            Tensor::matrix(3, 4, (0..12).map(|i| 0.21 * i as f32 - 1.1).collect()),
        );
        params.add(
            "table",
            Tensor::matrix(5, 3, (0..15).map(|i| 0.09 * i as f32 - 0.55).collect()),
        );
        params.add(
            "bias",
            Tensor::vector((0..3).map(|i| 0.3 - 0.2 * i as f32).collect()),
        );
        params
    }

    /// An op-diverse model: matvec, fused linear, row lookups (both the
    /// sparse-param and repeated-use paths), elementwise ops, concat,
    /// slices, dynamic scale/add_scalar, and both reductions.
    fn build_loss(graph: &mut Graph<'_>, sample: &Sample) -> Var {
        let w = graph.param(ParamId(0));
        let table = graph.param(ParamId(1));
        let bias = graph.param(ParamId(2));
        let x = graph.input(Tensor::vector(sample.x.clone()));
        let h = graph.linear(w, bias, x);
        let t = graph.tanh(h);
        let m = graph.matvec(w, x);
        let s = graph.sigmoid(m);
        let r0 = graph.row(table, sample.row);
        let r1 = graph.row(table, (sample.row + 2) % 5);
        let mixed = graph.mul(r0, r1);
        let diff = graph.sub(t, s);
        let a = graph.abs(diff);
        let cat = graph.concat(&[a, mixed]);
        let lo = graph.slice(cat, 0, 3);
        let hi = graph.slice(cat, 3, 3);
        let summed = graph.add(lo, hi);
        let rl = graph.relu(summed);
        let scaled = graph.scale(rl, sample.scale);
        let shifted = graph.add_scalar(scaled, 0.25 * sample.scale);
        let total = graph.sum(shifted);
        let mean = graph.mean(shifted);
        let both = graph.concat(&[total, mean]);
        graph.mean(both)
    }

    fn tape_reference(params: &Params, sample: &Sample, seed: f32) -> (f64, Grads) {
        let mut graph = Graph::new(params);
        let loss = build_loss(&mut graph, sample);
        let value = f64::from(graph.value(loss)[0]);
        let mut grads = Grads::new(params);
        graph.backward_scaled(loss, &mut grads, seed);
        (value, grads)
    }

    #[test]
    fn replay_is_bit_identical_to_the_tape() {
        let params = test_params();
        let program = CompiledProgram::record(&params, |g| build_loss(g, &samples()[0]));
        let mut buffers = ReplayBuffers::new();
        for (index, sample) in samples().iter().enumerate() {
            let seed = 0.1 + index as f32 * 0.3;
            let (tape_loss, tape_grads) = tape_reference(&params, sample, seed);
            let mut grads = Grads::new(&params);
            let loss = program.replay(&params, &mut buffers, &mut grads, seed, |g| {
                build_loss(g, sample)
            });
            assert_eq!(
                tape_loss.to_bits(),
                loss.to_bits(),
                "loss diverged for sample {index}"
            );
            assert_eq!(tape_grads, grads, "gradients diverged for sample {index}");
        }
    }

    #[test]
    fn replay_forward_matches_the_tape_and_the_full_replay() {
        let params = test_params();
        let program = CompiledProgram::record(&params, |g| build_loss(g, &samples()[0]));
        let mut buffers = ReplayBuffers::new();
        for (index, sample) in samples().iter().enumerate() {
            let forward = program.replay_forward(&params, &mut buffers, |g| build_loss(g, sample));
            let (tape_loss, _) = tape_reference(&params, sample, 1.0);
            assert_eq!(
                tape_loss.to_bits(),
                forward.to_bits(),
                "forward-only replay diverged from the tape for sample {index}"
            );
            // Interleave full replays through the same buffers: the two entry
            // points must not perturb each other's parked arenas.
            let mut grads = Grads::new(&params);
            let full = program.replay(&params, &mut buffers, &mut grads, 1.0, |g| {
                build_loss(g, sample)
            });
            assert_eq!(full.to_bits(), forward.to_bits());
        }
    }

    #[test]
    fn buffers_are_shared_across_different_programs() {
        let params = test_params();
        let mut cache = ProgramCache::new();
        let mut buffers = ReplayBuffers::new();
        // Two structurally different programs (the second drops the matvec
        // branch) interleaved through one buffer set.
        let small = |graph: &mut Graph<'_>, sample: &Sample| -> Var {
            let table = graph.param(ParamId(1));
            let r = graph.row(table, sample.row);
            let t = graph.tanh(r);
            graph.sum(t)
        };
        for sample in &samples() {
            for key in [0u32, 1u32] {
                let program = cache.get_or_record(vec![key], &params, |g| {
                    if key == 0 {
                        build_loss(g, sample)
                    } else {
                        small(g, sample)
                    }
                });
                let mut compiled = Grads::new(&params);
                let loss = program.replay(&params, &mut buffers, &mut compiled, 1.0, |g| {
                    if key == 0 {
                        build_loss(g, sample)
                    } else {
                        small(g, sample)
                    }
                });
                let (tape_loss, tape_grads) = if key == 0 {
                    tape_reference(&params, sample, 1.0)
                } else {
                    let mut graph = Graph::new(&params);
                    let l = small(&mut graph, sample);
                    let v = f64::from(graph.value(l)[0]);
                    let mut g = Grads::new(&params);
                    graph.backward_scaled(l, &mut g, 1.0);
                    (v, g)
                };
                assert_eq!(tape_loss.to_bits(), loss.to_bits());
                assert_eq!(tape_grads, compiled);
            }
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "compiled schedule mismatch")]
    fn structure_divergence_panics_loudly() {
        let params = test_params();
        let program = CompiledProgram::record(&params, |g| build_loss(g, &samples()[0]));
        let mut buffers = ReplayBuffers::new();
        let mut grads = Grads::new(&params);
        program.replay(&params, &mut buffers, &mut grads, 1.0, |g| {
            // Swaps the first two ops relative to the recording.
            let table = g.param(ParamId(1));
            let w = g.param(ParamId(0));
            let r = g.row(table, 0);
            let m = g.matvec(w, r);
            g.sum(m)
        });
    }

    #[test]
    fn record_requires_a_scalar_loss() {
        let params = test_params();
        let result = std::panic::catch_unwind(|| {
            CompiledProgram::record(&params, |g| g.input(Tensor::vector(vec![1.0, 2.0])))
        });
        assert!(result.is_err(), "vector-valued roots must be rejected");
    }
}
