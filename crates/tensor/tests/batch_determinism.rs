//! Property tests: the [`Batch`] engine's gradients are bit-identical for
//! every worker count, across random models, batch sizes, and seeds. The
//! properties sweep worker widths themselves (serial vs 2..8 workers), so
//! one run of this suite covers the whole width range; CI's `determinism`
//! job runs it once, alongside the env-driven pipeline suite in
//! `tests/determinism.rs`.

use difftune_tensor::{Batch, Grads, Graph, ParamId, Params, Tensor, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small two-parameter model: a weight matrix and an embedding-style table
/// (the table exercises the sparse `accumulate_at` gradient path, including
/// repeated rows within one sample).
fn build_params(seed: u64, hidden: usize, features: usize) -> (Params, ParamId, ParamId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = Params::new();
    let w = params.add(
        "w",
        Tensor::matrix(
            hidden,
            features,
            (0..hidden * features)
                .map(|_| rng.gen_range(-0.8..0.8))
                .collect(),
        ),
    );
    let table = params.add(
        "table",
        Tensor::matrix(
            6,
            hidden,
            (0..6 * hidden).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        ),
    );
    (params, w, table)
}

fn random_samples(seed: u64, count: usize, features: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(99));
    (0..count)
        .map(|_| (0..features).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect()
}

/// Per-sample loss with matvec, activations, two (possibly equal) embedding
/// rows, and a second use of the same weight parameter.
fn loss_of(w: ParamId, table: ParamId) -> impl Fn(&mut Graph<'_>, &Vec<f32>) -> Var + Sync {
    move |graph, sample| {
        let wv = graph.param(w);
        let tv = graph.param(table);
        let x = graph.input(Tensor::vector(sample.clone()));
        let h = graph.matvec(wv, x);
        let t = graph.tanh(h);
        let row_a = (sample[0].abs() * 10.0) as usize % 6;
        let row_b = (sample[1].abs() * 10.0) as usize % 6;
        let ra = graph.row(tv, row_a);
        let rb = graph.row(tv, row_b);
        let mixed = graph.mul(ra, rb);
        let gated = graph.sigmoid(mixed);
        let joined = graph.mul(t, gated);
        // Reuse the weight matrix a second time, as LSTM cells do across
        // timesteps: the per-sample gradient then accumulates into the same
        // slot more than once.
        let h2 = graph.matvec(wv, x);
        let a2 = graph.abs(h2);
        let cat = graph.concat(&[joined, a2]);
        graph.mean(cat)
    }
}

fn run(threads: usize, model_seed: u64, count: usize, grad_seed: f32) -> (f64, Grads) {
    let hidden = 5;
    let features = 4;
    let (params, w, table) = build_params(model_seed, hidden, features);
    let samples = random_samples(model_seed, count, features);
    let mut engine = Batch::new(threads);
    let mut grads = Grads::new(&params);
    let total = engine.accumulate(&params, &samples, loss_of(w, table), grad_seed, &mut grads);
    (total, grads)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For any model, batch size, and gradient seed, every worker count
    /// produces the same loss and gradient bits as a single worker.
    #[test]
    fn parallel_gradients_are_bit_equal_to_serial(
        model_seed in 0u64..1_000,
        count in 1usize..48,
        threads in 2usize..8,
        seed_scale in 1u32..16,
    ) {
        let grad_seed = 1.0 / seed_scale as f32;
        let (serial_loss, serial_grads) = run(1, model_seed, count, grad_seed);
        let (parallel_loss, parallel_grads) = run(threads, model_seed, count, grad_seed);
        prop_assert_eq!(serial_loss.to_bits(), parallel_loss.to_bits());
        prop_assert_eq!(serial_grads, parallel_grads);
    }
}

/// A multi-batch training-style loop (gradient steps between batches) stays
/// bit-identical across worker counts, covering slot/arena reuse.
#[test]
fn multi_batch_sgd_loop_is_bit_identical_across_worker_counts() {
    let train = |threads: usize| -> Params {
        let (mut params, w, table) = build_params(7, 5, 4);
        let samples = random_samples(7, 40, 4);
        let mut engine = Batch::new(threads);
        let mut grads = Grads::new(&params);
        for batch in samples.chunks(12) {
            grads.reset(&params);
            engine.accumulate(
                &params,
                batch,
                loss_of(w, table),
                1.0 / batch.len() as f32,
                &mut grads,
            );
            for id in [w, table] {
                if let Some(grad) = grads.get(id) {
                    let grad = grad.clone();
                    params.get_mut(id).add_scaled(&grad, -0.05);
                }
            }
        }
        params
    };
    let serial = train(1);
    for threads in [2, 4] {
        assert_eq!(serial, train(threads), "{threads} workers diverged");
    }
}
