//! Evaluation metrics: mean absolute percentage error and Kendall's tau.

/// Mean absolute percentage error, as defined in the paper (Section V-A):
/// `mean(|prediction - actual| / actual)`. Pairs whose actual value is zero
/// or non-finite are skipped (they carry no defined percentage error).
///
/// A non-finite *prediction* returns [`f64::INFINITY`] instead of silently
/// poisoning the mean with NaN: a diverged predictor reads as "infinitely
/// wrong", which stays loud in comparisons and thresholds (`NaN <= x` is
/// false in a way that hides the failure; `inf <= x` fails visibly).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mape(predictions: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        actuals.len(),
        "prediction/actual length mismatch"
    );
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &a) in predictions.iter().zip(actuals) {
        if a != 0.0 && a.is_finite() {
            if !p.is_finite() {
                return f64::INFINITY;
            }
            total += (p - a).abs() / a.abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Kendall's tau-a rank correlation coefficient: the fraction of concordant
/// pairs minus the fraction of discordant pairs, with pairs tied in either
/// variable counted as neither (the tau-a denominator stays `n(n-1)/2`).
///
/// Computed exactly in `O(n log n)`: the values are sorted by
/// `(actual, prediction)` and discordant pairs are counted as inversions in
/// the prediction order. The secondary prediction key makes the count
/// tie-exact — pairs tied in actuals sort by prediction and therefore
/// contribute no inversion, and pairs tied in predictions never compare
/// strictly, so neither is miscounted as discordant.
///
/// Non-finite values are ordered with [`f64::total_cmp`] (NaN sorts last), so
/// the result is deterministic and stays in `[-1, 1]` even for a diverged
/// predictor.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn kendall_tau(predictions: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        actuals.len(),
        "prediction/actual length mismatch"
    );
    let n = predictions.len();
    if n < 2 {
        return 1.0;
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        actuals[a]
            .total_cmp(&actuals[b])
            .then(predictions[a].total_cmp(&predictions[b]))
    });
    let ranked: Vec<f64> = order.iter().map(|&i| predictions[i]).collect();

    // Count tied pairs: in actuals, in predictions, and in both at once
    // (consecutive equal runs after sorting). The both-tied count corrects
    // the inclusion-exclusion when concordant pairs are recovered below.
    let tied_actual_pairs = tied_pairs(order.iter().map(|&i| actuals[i]));
    let mut sorted_preds = predictions.to_vec();
    sorted_preds.sort_by(f64::total_cmp);
    let tied_pred_pairs = tied_pairs(sorted_preds.iter().copied());
    let tied_both_pairs = tied_pairs_2d(order.iter().map(|&i| (actuals[i], predictions[i])));

    let mut scratch = ranked;
    let mut buffer = vec![0.0; n];
    let discordant = count_inversions(&mut scratch, &mut buffer) as f64;

    let total_pairs = (n as u64 * (n as u64 - 1) / 2) as f64;
    let tied = tied_actual_pairs as f64 + tied_pred_pairs as f64 - tied_both_pairs as f64;
    let concordant = total_pairs - discordant - tied;
    (concordant - discordant) / total_pairs
}

/// Number of pairs tied in a sorted sequence (sum of `k*(k-1)/2` over runs of
/// equal values under [`f64::total_cmp`]).
fn tied_pairs(sorted: impl Iterator<Item = f64>) -> u64 {
    let mut pairs = 0u64;
    let mut run = 0u64;
    let mut previous: Option<f64> = None;
    for value in sorted {
        match previous {
            Some(p) if p.total_cmp(&value).is_eq() => run += 1,
            _ => {
                pairs += run * run.saturating_sub(1) / 2;
                run = 1;
            }
        }
        previous = Some(value);
    }
    pairs + run * run.saturating_sub(1) / 2
}

/// [`tied_pairs`] over `(actual, prediction)` value pairs.
fn tied_pairs_2d(sorted: impl Iterator<Item = (f64, f64)>) -> u64 {
    let mut pairs = 0u64;
    let mut run = 0u64;
    let mut previous: Option<(f64, f64)> = None;
    for value in sorted {
        match previous {
            Some((a, p)) if a.total_cmp(&value.0).is_eq() && p.total_cmp(&value.1).is_eq() => {
                run += 1
            }
            _ => {
                pairs += run * run.saturating_sub(1) / 2;
                run = 1;
            }
        }
        previous = Some(value);
    }
    pairs + run * run.saturating_sub(1) / 2
}

/// Counts inversions in `values` via merge sort. `values` is sorted in place.
fn count_inversions(values: &mut [f64], buffer: &mut [f64]) -> u64 {
    let n = values.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = values.split_at_mut(mid);
    let mut inversions =
        count_inversions(left, &mut buffer[..mid]) + count_inversions(right, &mut buffer[mid..]);

    // Merge, counting cross inversions (right element strictly smaller than a
    // remaining left element).
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if right[j] < left[i] {
            inversions += (left.len() - i) as u64;
            buffer[k] = right[j];
            j += 1;
        } else {
            buffer[k] = left[i];
            i += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buffer[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buffer[k] = right[j];
        j += 1;
        k += 1;
    }
    values.copy_from_slice(&buffer[..n]);
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic_cases() {
        assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mape(&[1.5, 2.0], &[1.0, 2.0]) - 0.25).abs() < 1e-12);
        // Over-prediction can exceed 100% error, as the paper notes.
        assert!(mape(&[5.0], &[1.0]) > 1.0);
        // Zero actuals are skipped.
        assert_eq!(mape(&[3.0, 2.0], &[0.0, 2.0]), 0.0);
    }

    #[test]
    fn kendall_tau_perfect_and_reversed() {
        let actual = [1.0, 2.0, 3.0, 4.0, 5.0];
        let same = [10.0, 20.0, 30.0, 40.0, 50.0];
        let reversed = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&same, &actual) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&reversed, &actual) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_partial_order() {
        // One discordant pair out of six: tau = (5 - 1) / 6.
        let actual = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.0, 3.0, 2.0, 4.0];
        assert!((kendall_tau(&pred, &actual) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_matches_quadratic_reference_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200;
        let actual: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let pred: Vec<f64> = actual
            .iter()
            .map(|a| a + rng.gen_range(-30.0..30.0))
            .collect();

        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let da = actual[i] - actual[j];
                let dp = pred[i] - pred[j];
                if da * dp > 0.0 {
                    concordant += 1;
                } else if da * dp < 0.0 {
                    discordant += 1;
                }
            }
        }
        let expected = (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64;
        let fast = kendall_tau(&pred, &actual);
        assert!(
            (fast - expected).abs() < 1e-9,
            "fast {fast} vs reference {expected}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
        assert_eq!(mape(&[], &[]), 0.0);
        assert_eq!(mape(&[7.0], &[0.0]), 0.0, "only zero actuals: no pairs");
    }

    #[test]
    fn mape_hand_computed_fixtures() {
        // |2-1|/1 = 1.0, |3-4|/4 = 0.25, |5-5|/5 = 0 → mean = 1.25/3.
        let fixture = mape(&[2.0, 3.0, 5.0], &[1.0, 4.0, 5.0]);
        assert!((fixture - 1.25 / 3.0).abs() < 1e-15, "got {fixture}");
        // A zero actual is skipped, so only the second pair counts.
        let skipped = mape(&[9.0, 3.0], &[0.0, 2.0]);
        assert!((skipped - 0.5).abs() < 1e-15, "got {skipped}");
    }

    #[test]
    fn mape_guards_against_nan_and_infinite_predictions() {
        // A non-finite prediction must not silently poison the mean with NaN:
        // the result is +inf, which fails `learned <= threshold` checks loudly.
        assert_eq!(mape(&[f64::NAN, 1.0], &[1.0, 1.0]), f64::INFINITY);
        assert_eq!(mape(&[f64::INFINITY], &[2.0]), f64::INFINITY);
        assert_eq!(mape(&[f64::NEG_INFINITY, 2.0], &[3.0, 2.0]), f64::INFINITY);
        // Non-finite *actuals* carry no defined percentage error and are
        // skipped like zero actuals.
        assert_eq!(mape(&[1.0, 2.0], &[f64::NAN, 2.0]), 0.0);
    }

    #[test]
    fn kendall_tau_hand_computed_tie_fixtures() {
        // Pair tied in actuals, discordant in predictions: neither concordant
        // nor discordant under tau-a, so tau = 0 (the pre-fix implementation
        // returned -1 here by counting the pair as discordant).
        assert_eq!(kendall_tau(&[2.0, 1.0], &[1.0, 1.0]), 0.0);
        // Pair tied in predictions only: also neither → 0.
        assert_eq!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        // Pair tied in both: still neither → 0.
        assert_eq!(kendall_tau(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        // Three values: (0,1) tied in actuals, (0,2) discordant, (1,2)
        // concordant → (1 - 1) / 3 = 0.
        assert_eq!(kendall_tau(&[3.0, 1.0, 2.0], &[1.0, 1.0, 2.0]), 0.0);
        // Three values: (0,1) and (0,2) concordant, (1,2) tied in
        // predictions → (2 - 0) / 3.
        let tau = kendall_tau(&[1.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!((tau - 2.0 / 3.0).abs() < 1e-15, "got {tau}");
        // All actuals tied: every pair is a tie → 0, not ±1.
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn kendall_tau_matches_quadratic_reference_on_tied_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let n = 120;
        // Coarse integer-valued data: ties everywhere in both variables.
        let actual: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(0..8))).collect();
        let pred: Vec<f64> = actual
            .iter()
            .map(|a| (a + f64::from(rng.gen_range(-2..3))).max(0.0))
            .collect();

        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let da = actual[i] - actual[j];
                let dp = pred[i] - pred[j];
                if da * dp > 0.0 {
                    concordant += 1;
                } else if da * dp < 0.0 {
                    discordant += 1;
                }
            }
        }
        let expected = (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64;
        let fast = kendall_tau(&pred, &actual);
        assert!(
            (fast - expected).abs() < 1e-12,
            "fast {fast} vs tie-aware reference {expected}"
        );
    }

    #[test]
    fn kendall_tau_is_defined_and_bounded_for_nan_predictions() {
        let tau = kendall_tau(&[f64::NAN, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(tau.is_finite(), "NaN predictions must not produce NaN tau");
        assert!((-1.0..=1.0).contains(&tau));
        // Deterministic: the same inputs give the same answer.
        assert_eq!(tau, kendall_tau(&[f64::NAN, 1.0, 2.0], &[1.0, 2.0, 3.0]));
    }
}
