//! Evaluation metrics: mean absolute percentage error and Kendall's tau.

/// Mean absolute percentage error, as defined in the paper (Section V-A):
/// `mean(|prediction - actual| / actual)`. Pairs whose actual value is zero
/// are skipped (they carry no defined percentage error).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mape(predictions: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        actuals.len(),
        "prediction/actual length mismatch"
    );
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &a) in predictions.iter().zip(actuals) {
        if a != 0.0 {
            total += (p - a).abs() / a.abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Kendall's tau-a rank correlation coefficient: the fraction of concordant
/// pairs minus the fraction of discordant pairs.
///
/// Computed in `O(n log n)` by counting inversions with a merge sort, so it is
/// usable on the full test set.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn kendall_tau(predictions: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        actuals.len(),
        "prediction/actual length mismatch"
    );
    let n = predictions.len();
    if n < 2 {
        return 1.0;
    }

    // Sort by actual value; count inversions in the prediction order. Pairs
    // tied in either variable are counted as neither concordant nor
    // discordant (tau-a denominator still n(n-1)/2).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        actuals[a]
            .partial_cmp(&actuals[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let ranked: Vec<f64> = order.iter().map(|&i| predictions[i]).collect();

    // Count ties in actuals (consecutive equal groups after sorting).
    let mut tied_actual_pairs = 0u64;
    let mut run = 1u64;
    for window in order.windows(2) {
        if actuals[window[0]] == actuals[window[1]] {
            run += 1;
        } else {
            tied_actual_pairs += run * (run - 1) / 2;
            run = 1;
        }
    }
    tied_actual_pairs += run * (run - 1) / 2;

    // Count ties in predictions.
    let mut sorted_preds = predictions.to_vec();
    sorted_preds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tied_pred_pairs = 0u64;
    let mut run = 1u64;
    for window in sorted_preds.windows(2) {
        if window[0] == window[1] {
            run += 1;
        } else {
            tied_pred_pairs += run * (run - 1) / 2;
            run = 1;
        }
    }
    tied_pred_pairs += run * (run - 1) / 2;

    let mut scratch = ranked.clone();
    let mut buffer = vec![0.0; n];
    let discordant = count_inversions(&mut scratch, &mut buffer);

    let total_pairs = (n as u64 * (n as u64 - 1) / 2) as f64;
    // Discordant pairs counted by inversions include pairs tied in actuals that
    // are out of order in predictions; subtracting the tie counts keeps the
    // estimate close to the conventional tau-b numerator without a full
    // tie-aware pass. For the timing data in this workspace ties are rare.
    let discordant = discordant as f64;
    let concordant = total_pairs - discordant - tied_actual_pairs as f64 - tied_pred_pairs as f64;
    let concordant = concordant.max(0.0);
    (concordant - discordant) / total_pairs
}

/// Counts inversions in `values` via merge sort. `values` is sorted in place.
fn count_inversions(values: &mut [f64], buffer: &mut [f64]) -> u64 {
    let n = values.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = values.split_at_mut(mid);
    let mut inversions =
        count_inversions(left, &mut buffer[..mid]) + count_inversions(right, &mut buffer[mid..]);

    // Merge, counting cross inversions (right element strictly smaller than a
    // remaining left element).
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if right[j] < left[i] {
            inversions += (left.len() - i) as u64;
            buffer[k] = right[j];
            j += 1;
        } else {
            buffer[k] = left[i];
            i += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buffer[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buffer[k] = right[j];
        j += 1;
        k += 1;
    }
    values.copy_from_slice(&buffer[..n]);
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic_cases() {
        assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mape(&[1.5, 2.0], &[1.0, 2.0]) - 0.25).abs() < 1e-12);
        // Over-prediction can exceed 100% error, as the paper notes.
        assert!(mape(&[5.0], &[1.0]) > 1.0);
        // Zero actuals are skipped.
        assert_eq!(mape(&[3.0, 2.0], &[0.0, 2.0]), 0.0);
    }

    #[test]
    fn kendall_tau_perfect_and_reversed() {
        let actual = [1.0, 2.0, 3.0, 4.0, 5.0];
        let same = [10.0, 20.0, 30.0, 40.0, 50.0];
        let reversed = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&same, &actual) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&reversed, &actual) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_partial_order() {
        // One discordant pair out of six: tau = (5 - 1) / 6.
        let actual = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.0, 3.0, 2.0, 4.0];
        assert!((kendall_tau(&pred, &actual) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_matches_quadratic_reference_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200;
        let actual: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let pred: Vec<f64> = actual
            .iter()
            .map(|a| a + rng.gen_range(-30.0..30.0))
            .collect();

        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let da = actual[i] - actual[j];
                let dp = pred[i] - pred[j];
                if da * dp > 0.0 {
                    concordant += 1;
                } else if da * dp < 0.0 {
                    discordant += 1;
                }
            }
        }
        let expected = (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64;
        let fast = kendall_tau(&pred, &actual);
        assert!(
            (fast - expected).abs() < 1e-9,
            "fast {fast} vs reference {expected}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }
}
