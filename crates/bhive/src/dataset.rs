//! Measured datasets: corpus + ground truth timings + splits + evaluation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use difftune_cpu::{Machine, Microarch};
use difftune_isa::BasicBlock;

use crate::corpus::{generate_corpus, Application, Category, CorpusConfig};
use crate::metrics::{kendall_tau, mape};

/// Which split a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// 80% of the corpus, used to optimize parameters.
    Train,
    /// 10% of the corpus, used for development decisions.
    Validation,
    /// 10% of the corpus, used for the numbers reported in tables.
    Test,
}

/// One measured basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The basic block.
    pub block: BasicBlock,
    /// The measured timing (cycles per iteration) on the dataset's machine.
    pub timing: f64,
    /// Source applications.
    pub apps: Vec<Application>,
    /// Hardware-resource category.
    pub category: Category,
    /// The split this record belongs to.
    pub split: Split,
}

/// Table III-style summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Number of blocks per split (train, validation, test).
    pub split_sizes: (usize, usize, usize),
    /// Minimum block length.
    pub min_block_len: usize,
    /// Median block length.
    pub median_block_len: usize,
    /// Mean block length.
    pub mean_block_len: f64,
    /// Maximum block length.
    pub max_block_len: usize,
    /// Median measured timing (the paper reports this per microarchitecture,
    /// scaled by 100 iterations).
    pub median_timing: f64,
    /// Number of distinct opcodes appearing anywhere in the corpus.
    pub unique_opcodes: usize,
    /// Number of distinct opcodes appearing in the training split.
    pub unique_opcodes_train: usize,
    /// Number of distinct opcodes appearing in the test split.
    pub unique_opcodes_test: usize,
}

/// A measured dataset for one microarchitecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    uarch: Microarch,
    records: Vec<Record>,
}

impl Dataset {
    /// Generates a corpus, measures every block on the reference machine for
    /// `uarch`, and splits it 80/10/10 (block-wise disjoint by construction,
    /// since the corpus contains no duplicate blocks).
    pub fn build(uarch: Microarch, config: &CorpusConfig) -> Self {
        Dataset::build_with_machine(&Machine::new(uarch), config)
    }

    /// [`Dataset::build`] with a corpus seed mixed with a stable fingerprint
    /// of the microarchitecture's machine configuration
    /// ([`difftune_cpu::UarchConfig::stable_fingerprint`]), so every
    /// microarchitecture yields genuinely distinct ground truth: different
    /// corpus *blocks*, not just different timings of a shared corpus.
    ///
    /// Scenario sweeps that tune the same simulator against several target
    /// machines (the paper's Tables IV–VI evaluate per-microarchitecture)
    /// use this constructor; [`Dataset::build`] keeps the shared-corpus
    /// behavior for apples-to-apples comparisons on one machine.
    pub fn build_distinct(uarch: Microarch, config: &CorpusConfig) -> Self {
        let mut distinct = config.clone();
        distinct.seed ^= uarch.config().stable_fingerprint();
        Dataset::build_with_machine(&Machine::new(uarch), &distinct)
    }

    /// Measures a generated corpus on an explicit reference machine — the
    /// generation path behind [`Dataset::build`], exposed so callers can
    /// supply a [`Machine`] with a customized
    /// [`difftune_cpu::UarchConfig`] (what-if machines) or measurement
    /// settings.
    pub fn build_with_machine(machine: &Machine, config: &CorpusConfig) -> Self {
        let uarch = machine.uarch();
        let corpus = generate_corpus(config);

        // Measure in parallel: measurement is pure per-block work.
        let num_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let timings: Vec<f64> = if corpus.len() < 256 || num_threads == 1 {
            corpus.iter().map(|b| machine.measure(&b.block)).collect()
        } else {
            let mut timings = vec![0.0; corpus.len()];
            let chunk = corpus.len().div_ceil(num_threads);
            std::thread::scope(|scope| {
                for (blocks, out) in corpus.chunks(chunk).zip(timings.chunks_mut(chunk)) {
                    let machine = &machine;
                    scope.spawn(move || {
                        for (record, slot) in blocks.iter().zip(out.iter_mut()) {
                            *slot = machine.measure(&record.block);
                        }
                    });
                }
            });
            timings
        };

        let n = corpus.len();
        let train_end = n * 8 / 10;
        let valid_end = n * 9 / 10;
        let records = corpus
            .into_iter()
            .zip(timings)
            .enumerate()
            .map(|(i, (corpus_block, timing))| Record {
                block: corpus_block.block,
                timing,
                apps: corpus_block.apps,
                category: corpus_block.category,
                split: if i < train_end {
                    Split::Train
                } else if i < valid_end {
                    Split::Validation
                } else {
                    Split::Test
                },
            })
            .collect();
        Dataset { uarch, records }
    }

    /// The microarchitecture this dataset was measured on.
    pub fn uarch(&self) -> Microarch {
        self.uarch
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records in a given split.
    pub fn split(&self, split: Split) -> Vec<&Record> {
        self.records.iter().filter(|r| r.split == split).collect()
    }

    /// The training split.
    pub fn train(&self) -> Vec<&Record> {
        self.split(Split::Train)
    }

    /// The validation split.
    pub fn validation(&self) -> Vec<&Record> {
        self.split(Split::Validation)
    }

    /// The test split.
    pub fn test(&self) -> Vec<&Record> {
        self.split(Split::Test)
    }

    /// The held-out records — everything *not* used to optimize parameters
    /// (the validation and test splits together, 20% of the corpus).
    ///
    /// Scoring paths that want every block the optimizer never saw (the
    /// scenario matrix scores learned vs. default tables this way) use this
    /// instead of choosing one of the two held-out splits.
    pub fn heldout(&self) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.split != Split::Train)
            .collect()
    }

    /// Table III-style summary statistics.
    pub fn summary(&self) -> DatasetSummary {
        let mut lens: Vec<usize> = self.records.iter().map(|r| r.block.len()).collect();
        lens.sort_unstable();
        let mut timings: Vec<f64> = self.records.iter().map(|r| r.timing).collect();
        timings.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let unique = |records: &[&Record]| -> usize {
            let mut set = std::collections::HashSet::new();
            for r in records {
                for op in r.block.opcodes_used() {
                    set.insert(op);
                }
            }
            set.len()
        };
        let all: Vec<&Record> = self.records.iter().collect();
        DatasetSummary {
            split_sizes: (
                self.train().len(),
                self.validation().len(),
                self.test().len(),
            ),
            min_block_len: lens.first().copied().unwrap_or(0),
            median_block_len: lens.get(lens.len() / 2).copied().unwrap_or(0),
            mean_block_len: if lens.is_empty() {
                0.0
            } else {
                lens.iter().sum::<usize>() as f64 / lens.len() as f64
            },
            max_block_len: lens.last().copied().unwrap_or(0),
            median_timing: timings.get(timings.len() / 2).copied().unwrap_or(0.0),
            unique_opcodes: unique(&all),
            unique_opcodes_train: unique(&self.train()),
            unique_opcodes_test: unique(&self.test()),
        }
    }

    /// Evaluates a predictor on a set of records, returning
    /// `(error, kendall_tau)` where error is the mean absolute percentage
    /// error defined in the paper.
    pub fn evaluate<'a, F>(records: &[&'a Record], mut predict: F) -> (f64, f64)
    where
        F: FnMut(&'a BasicBlock) -> f64,
    {
        let predictions: Vec<f64> = records.iter().map(|r| predict(&r.block)).collect();
        Self::evaluate_predictions(records, &predictions)
    }

    /// Evaluates already-computed predictions (one per record, in order)
    /// against the records' measured timings, returning `(error, kendall_tau)`.
    ///
    /// This is the batched counterpart of [`Dataset::evaluate`]: callers that
    /// score a fixed parameter table produce all predictions in one
    /// `Simulator::predict_batch` call and hand them here.
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != records.len()` (a caller bug, not a
    /// data condition).
    pub fn evaluate_predictions(records: &[&Record], predictions: &[f64]) -> (f64, f64) {
        assert_eq!(
            predictions.len(),
            records.len(),
            "one prediction per record"
        );
        let actuals: Vec<f64> = records.iter().map(|r| r.timing).collect();
        (
            mape(predictions, &actuals),
            kendall_tau(predictions, &actuals),
        )
    }

    /// Per-category MAPE *and* Kendall's tau of already-computed predictions
    /// (one per record, in order), keyed by [`Category`] with the number of
    /// records in each group.
    ///
    /// This is the grouped counterpart of [`Dataset::evaluate_predictions`]:
    /// the scenario matrix reports each cell's error broken down by
    /// hardware-resource category (Table V-style), and both metrics come from
    /// the same one-pass grouping.
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != records.len()` (a caller bug, not a
    /// data condition).
    pub fn evaluate_predictions_by_category(
        records: &[&Record],
        predictions: &[f64],
    ) -> BTreeMap<Category, (usize, f64, f64)> {
        assert_eq!(
            predictions.len(),
            records.len(),
            "one prediction per record"
        );
        let mut grouped: BTreeMap<Category, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for (record, &prediction) in records.iter().zip(predictions) {
            let entry = grouped.entry(record.category).or_default();
            entry.0.push(prediction);
            entry.1.push(record.timing);
        }
        grouped
            .into_iter()
            .map(|(category, (preds, actuals))| {
                (
                    category,
                    (
                        preds.len(),
                        mape(&preds, &actuals),
                        kendall_tau(&preds, &actuals),
                    ),
                )
            })
            .collect()
    }

    /// Per-application error of a predictor over a set of records (Table V, top).
    pub fn error_by_application<'a, F>(
        records: &[&'a Record],
        mut predict: F,
    ) -> BTreeMap<Application, (usize, f64)>
    where
        F: FnMut(&'a BasicBlock) -> f64,
    {
        let mut grouped: BTreeMap<Application, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for record in records {
            let prediction = predict(&record.block);
            for &app in &record.apps {
                let entry = grouped.entry(app).or_default();
                entry.0.push(prediction);
                entry.1.push(record.timing);
            }
        }
        grouped
            .into_iter()
            .map(|(app, (preds, actuals))| (app, (preds.len(), mape(&preds, &actuals))))
            .collect()
    }

    /// Per-category error of a predictor over a set of records (Table V, bottom).
    pub fn error_by_category<'a, F>(
        records: &[&'a Record],
        mut predict: F,
    ) -> BTreeMap<Category, (usize, f64)>
    where
        F: FnMut(&'a BasicBlock) -> f64,
    {
        let mut grouped: BTreeMap<Category, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for record in records {
            let prediction = predict(&record.block);
            let entry = grouped.entry(record.category).or_default();
            entry.0.push(prediction);
            entry.1.push(record.timing);
        }
        grouped
            .into_iter()
            .map(|(category, (preds, actuals))| (category, (preds.len(), mape(&preds, &actuals))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        let config = CorpusConfig {
            num_blocks: 400,
            seed: 2,
            ..CorpusConfig::default()
        };
        Dataset::build(Microarch::Haswell, &config)
    }

    #[test]
    fn splits_partition_the_dataset() {
        let dataset = small_dataset();
        let summary = dataset.summary();
        let (train, valid, test) = summary.split_sizes;
        assert_eq!(train + valid + test, dataset.len());
        assert!(train >= 8 * valid - 8, "train should be ~8x validation");
        assert!(valid > 0 && test > 0);
    }

    #[test]
    fn splits_are_blockwise_disjoint() {
        let dataset = small_dataset();
        let train: std::collections::HashSet<String> = dataset
            .train()
            .iter()
            .map(|r| r.block.to_string())
            .collect();
        for record in dataset.test() {
            assert!(!train.contains(&record.block.to_string()));
        }
    }

    #[test]
    fn all_timings_are_positive() {
        let dataset = small_dataset();
        assert!(dataset.records().iter().all(|r| r.timing > 0.0));
    }

    #[test]
    fn evaluation_of_perfect_predictor_is_zero_error() {
        let dataset = small_dataset();
        let test = dataset.test();
        let lookup: std::collections::HashMap<String, f64> = test
            .iter()
            .map(|r| (r.block.to_string(), r.timing))
            .collect();
        let (error, tau) = Dataset::evaluate(&test, |block| lookup[&block.to_string()]);
        assert!(error < 1e-12);
        assert!(tau > 0.99);
    }

    #[test]
    fn per_application_and_category_groups_cover_all_records() {
        let dataset = small_dataset();
        let test = dataset.test();
        let by_app = Dataset::error_by_application(&test, |b| b.len() as f64);
        let by_cat = Dataset::error_by_category(&test, |b| b.len() as f64);
        assert!(!by_app.is_empty());
        assert!(!by_cat.is_empty());
        let cat_total: usize = by_cat.values().map(|(count, _)| count).sum();
        assert_eq!(cat_total, test.len());
    }

    #[test]
    fn heldout_is_validation_plus_test() {
        let dataset = small_dataset();
        let heldout = dataset.heldout();
        assert_eq!(
            heldout.len(),
            dataset.validation().len() + dataset.test().len()
        );
        let train: std::collections::HashSet<String> = dataset
            .train()
            .iter()
            .map(|r| r.block.to_string())
            .collect();
        assert!(heldout
            .iter()
            .all(|r| !train.contains(&r.block.to_string())));
    }

    #[test]
    fn distinct_datasets_differ_per_uarch_in_blocks_not_just_timings() {
        let config = CorpusConfig {
            num_blocks: 120,
            seed: 4,
            ..CorpusConfig::default()
        };
        let haswell = Dataset::build_distinct(Microarch::Haswell, &config);
        let skylake = Dataset::build_distinct(Microarch::Skylake, &config);
        let blocks = |d: &Dataset| -> std::collections::HashSet<String> {
            d.records().iter().map(|r| r.block.to_string()).collect()
        };
        assert_ne!(
            blocks(&haswell),
            blocks(&skylake),
            "distinct ground truth must use different corpus blocks per uarch"
        );
        // Deterministic: the same uarch always yields the same dataset.
        assert_eq!(
            Dataset::build_distinct(Microarch::Haswell, &config),
            haswell
        );
    }

    #[test]
    fn build_with_machine_matches_build_for_stock_machines() {
        let config = CorpusConfig {
            num_blocks: 100,
            seed: 9,
            ..CorpusConfig::default()
        };
        let via_build = Dataset::build(Microarch::Skylake, &config);
        let via_machine = Dataset::build_with_machine(&Machine::new(Microarch::Skylake), &config);
        assert_eq!(via_build, via_machine);
    }

    #[test]
    fn per_category_predictions_grouping_covers_all_records() {
        let dataset = small_dataset();
        let heldout = dataset.heldout();
        let predictions: Vec<f64> = heldout.iter().map(|r| r.timing * 1.25).collect();
        let grouped = Dataset::evaluate_predictions_by_category(&heldout, &predictions);
        let total: usize = grouped.values().map(|(count, _, _)| count).sum();
        assert_eq!(total, heldout.len());
        for (category, (count, error, tau)) in grouped {
            assert!(count > 0);
            // A uniform 25% over-prediction has exactly 25% error and perfect
            // rank correlation in every category with at least two blocks.
            assert!(
                (error - 0.25).abs() < 1e-12,
                "{category}: expected 25% error, got {error}"
            );
            if count >= 2 {
                assert!(tau > 0.0, "{category}: tau {tau} should be positive");
            }
        }
    }

    #[test]
    fn summary_matches_bhive_shape() {
        let dataset = small_dataset();
        let summary = dataset.summary();
        assert_eq!(summary.min_block_len, 1);
        assert!(summary.median_block_len <= 6);
        assert!(summary.mean_block_len >= summary.median_block_len as f64 * 0.8);
        assert!(summary.unique_opcodes_train <= summary.unique_opcodes);
        assert!(summary.unique_opcodes > 50);
    }
}
