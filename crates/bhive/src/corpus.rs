//! Synthetic corpus generation: applications, categories, and block sampling.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Geometric};
use serde::{Deserialize, Serialize};

use difftune_isa::{BasicBlock, BlockGenerator, GeneratorConfig, OpClass};

/// Source applications mirroring the BHive corpus (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Application {
    OpenBlas,
    Redis,
    Sqlite,
    Gzip,
    TensorFlow,
    ClangLlvm,
    Eigen,
    Embree,
    Ffmpeg,
}

impl Application {
    /// All applications, in the order used by Table V.
    pub const ALL: [Application; 9] = [
        Application::OpenBlas,
        Application::Redis,
        Application::Sqlite,
        Application::Gzip,
        Application::TensorFlow,
        Application::ClangLlvm,
        Application::Eigen,
        Application::Embree,
        Application::Ffmpeg,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Application::OpenBlas => "OpenBLAS",
            Application::Redis => "Redis",
            Application::Sqlite => "SQLite",
            Application::Gzip => "GZip",
            Application::TensorFlow => "TensorFlow",
            Application::ClangLlvm => "Clang/LLVM",
            Application::Eigen => "Eigen",
            Application::Embree => "Embree",
            Application::Ffmpeg => "FFmpeg",
        }
    }

    /// The relative share of the corpus drawn from this application, roughly
    /// matching the block counts in Table V (Clang/LLVM dominates).
    pub fn corpus_weight(self) -> f64 {
        match self {
            Application::OpenBlas => 5.0,
            Application::Redis => 3.0,
            Application::Sqlite => 2.5,
            Application::Gzip => 0.7,
            Application::TensorFlow => 21.0,
            Application::ClangLlvm => 60.0,
            Application::Eigen => 1.3,
            Application::Embree => 3.5,
            Application::Ffmpeg => 5.0,
        }
    }

    /// The instruction-mix profile used to generate blocks for this application.
    pub fn profile(self) -> GeneratorConfig {
        let weights = match self {
            // Dense numeric kernels: vector and FP heavy, some FMA.
            Application::OpenBlas | Application::Eigen => vec![
                (OpClass::IntAlu, 10.0),
                (OpClass::Mov, 10.0),
                (OpClass::Lea, 4.0),
                (OpClass::VecMov, 18.0),
                (OpClass::VecAlu, 8.0),
                (OpClass::VecShuffle, 6.0),
                (OpClass::FpAdd, 14.0),
                (OpClass::FpMul, 14.0),
                (OpClass::Fma, 12.0),
                (OpClass::FpDiv, 1.0),
                (OpClass::Convert, 2.0),
                (OpClass::Shift, 1.0),
            ],
            // Ray tracing / media: vector integer plus FP, shuffles.
            Application::Embree | Application::Ffmpeg => vec![
                (OpClass::IntAlu, 15.0),
                (OpClass::Mov, 14.0),
                (OpClass::Lea, 4.0),
                (OpClass::Shift, 4.0),
                (OpClass::VecMov, 14.0),
                (OpClass::VecAlu, 14.0),
                (OpClass::VecMul, 6.0),
                (OpClass::VecShuffle, 10.0),
                (OpClass::FpAdd, 7.0),
                (OpClass::FpMul, 6.0),
                (OpClass::Fma, 3.0),
                (OpClass::Convert, 3.0),
            ],
            // TensorFlow: a blend of numeric kernels and framework scalar code.
            Application::TensorFlow => vec![
                (OpClass::IntAlu, 20.0),
                (OpClass::Mov, 20.0),
                (OpClass::Lea, 6.0),
                (OpClass::Shift, 3.0),
                (OpClass::Stack, 3.0),
                (OpClass::VecMov, 12.0),
                (OpClass::VecAlu, 6.0),
                (OpClass::FpAdd, 10.0),
                (OpClass::FpMul, 10.0),
                (OpClass::Fma, 5.0),
                (OpClass::Convert, 2.0),
                (OpClass::BitScan, 1.0),
            ],
            // Pointer-chasing scalar server code.
            Application::Redis | Application::Sqlite | Application::ClangLlvm => vec![
                (OpClass::IntAlu, 34.0),
                (OpClass::Mov, 30.0),
                (OpClass::Lea, 8.0),
                (OpClass::Shift, 5.0),
                (OpClass::Stack, 6.0),
                (OpClass::IntMul, 1.5),
                (OpClass::IntDiv, 0.3),
                (OpClass::BitScan, 1.5),
                (OpClass::VecMov, 3.0),
                (OpClass::FpAdd, 0.5),
            ],
            // Compression: tight scalar loops with shifts and memory traffic.
            Application::Gzip => vec![
                (OpClass::IntAlu, 36.0),
                (OpClass::Mov, 26.0),
                (OpClass::Lea, 6.0),
                (OpClass::Shift, 14.0),
                (OpClass::BitScan, 3.0),
                (OpClass::Stack, 2.0),
                (OpClass::IntMul, 1.0),
            ],
        };
        let mem_operand_prob = match self {
            Application::Redis | Application::Sqlite | Application::ClangLlvm => 0.45,
            Application::Gzip => 0.4,
            Application::OpenBlas | Application::Eigen => 0.3,
            _ => 0.35,
        };
        GeneratorConfig {
            class_weights: weights,
            mem_operand_prob,
            dependency_prob: 0.45,
            min_len: 1,
            max_len: 64,
        }
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hardware-resource categories from Chen et al. (Table V, bottom half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Scalar ALU operations only.
    Scalar,
    /// Purely vector instructions.
    Vec,
    /// Scalar and vector arithmetic mixed.
    ScalarVec,
    /// Mostly loads.
    Ld,
    /// Mostly stores.
    St,
    /// A mix of loads and stores.
    LdSt,
}

impl Category {
    /// All categories in Table V order.
    pub const ALL: [Category; 6] = [
        Category::Scalar,
        Category::Vec,
        Category::ScalarVec,
        Category::Ld,
        Category::St,
        Category::LdSt,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Category::Scalar => "Scalar",
            Category::Vec => "Vec",
            Category::ScalarVec => "Scalar/Vec",
            Category::Ld => "Ld",
            Category::St => "St",
            Category::LdSt => "Ld/St",
        }
    }

    /// Classifies a block by the hardware resources it exercises.
    pub fn classify(block: &BasicBlock) -> Category {
        let loads = block.num_loads();
        let stores = block.num_stores();
        let vector = block.num_vector_insts();
        let scalar = block.len() - vector;
        if loads == 0 && stores == 0 {
            if vector == 0 {
                Category::Scalar
            } else if scalar == 0 {
                Category::Vec
            } else {
                Category::ScalarVec
            }
        } else if stores == 0 {
            Category::Ld
        } else if loads == 0 {
            Category::St
        } else {
            Category::LdSt
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for corpus generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Total number of blocks to generate (before deduplication).
    pub num_blocks: usize,
    /// Seed for the corpus generator.
    pub seed: u64,
    /// Maximum block length (BHive's maximum is 256).
    pub max_len: usize,
    /// Mean of the geometric length distribution (BHive's mean is ~4.9,
    /// median 3).
    pub mean_len: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_blocks: 10_000,
            seed: 0,
            max_len: 64,
            mean_len: 4.9,
        }
    }
}

/// A generated block together with its source applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusBlock {
    /// The basic block.
    pub block: BasicBlock,
    /// Source applications (usually one; occasionally shared between two, as
    /// in BHive where identical blocks appear in several applications).
    pub apps: Vec<Application>,
    /// The hardware-resource category.
    pub category: Category,
}

/// Generates a corpus of unique blocks with application labels.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<CorpusBlock> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let generators: Vec<(Application, BlockGenerator)> = Application::ALL
        .iter()
        .map(|&app| (app, BlockGenerator::new(app.profile())))
        .collect();
    let total_weight: f64 = Application::ALL.iter().map(|a| a.corpus_weight()).sum();
    // Geometric length distribution shifted to start at 1.
    let p = 1.0 / config.mean_len.max(1.1);
    let length_dist = Geometric::new(p).expect("valid geometric parameter");

    let mut seen = std::collections::HashSet::new();
    let mut corpus = Vec::with_capacity(config.num_blocks);
    let mut attempts = 0usize;
    while corpus.len() < config.num_blocks && attempts < config.num_blocks * 20 {
        attempts += 1;
        // Pick an application by corpus weight.
        let mut target = rng.gen_range(0.0..total_weight);
        let mut chosen = 0usize;
        for (i, (app, _)) in generators.iter().enumerate() {
            let w = app.corpus_weight();
            if target < w {
                chosen = i;
                break;
            }
            target -= w;
        }
        let (app, generator) = &generators[chosen];
        let len = (1 + length_dist.sample(&mut rng) as usize).min(config.max_len);
        let block = generator.generate_with_len(&mut rng, len);
        let text = block.to_string();
        if !seen.insert(text) {
            continue;
        }
        let mut apps = vec![*app];
        // A small fraction of blocks are shared between applications.
        if rng.gen_bool(0.05) {
            let other = Application::ALL[rng.gen_range(0..Application::ALL.len())];
            if other != *app {
                apps.push(other);
            }
        }
        let category = Category::classify(&block);
        corpus.push(CorpusBlock {
            block,
            apps,
            category,
        });
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_unique_blocks() {
        let config = CorpusConfig {
            num_blocks: 500,
            seed: 1,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        assert_eq!(corpus.len(), 500);
        let unique: std::collections::HashSet<String> =
            corpus.iter().map(|b| b.block.to_string()).collect();
        assert_eq!(unique.len(), corpus.len(), "blocks must be unique");
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let config = CorpusConfig {
            num_blocks: 100,
            seed: 7,
            ..CorpusConfig::default()
        };
        let a = generate_corpus(&config);
        let b = generate_corpus(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn length_distribution_is_bhive_like() {
        let config = CorpusConfig {
            num_blocks: 2000,
            seed: 3,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        let mut lens: Vec<usize> = corpus.iter().map(|b| b.block.len()).collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(
            (2..=5).contains(&median),
            "median length should be small like BHive's 3, got {median}"
        );
        assert!(
            mean > median as f64 * 0.8,
            "mean should exceed the median (long tail), got {mean}"
        );
        assert!(*lens.last().unwrap() <= config.max_len);
        assert_eq!(*lens.first().unwrap(), 1);
    }

    #[test]
    fn applications_have_distinct_profiles() {
        let blas = Application::OpenBlas.profile();
        let redis = Application::Redis.profile();
        let blas_fp: f64 = blas
            .class_weights
            .iter()
            .filter(|(c, _)| c.is_vector())
            .map(|(_, w)| w)
            .sum();
        let redis_fp: f64 = redis
            .class_weights
            .iter()
            .filter(|(c, _)| c.is_vector())
            .map(|(_, w)| w)
            .sum();
        assert!(
            blas_fp > redis_fp * 3.0,
            "OpenBLAS must be far more vector-heavy than Redis"
        );
    }

    #[test]
    fn every_application_appears_in_a_large_corpus() {
        let config = CorpusConfig {
            num_blocks: 3000,
            seed: 5,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        for app in Application::ALL {
            let count = corpus.iter().filter(|b| b.apps.contains(&app)).count();
            assert!(count > 0, "{app} missing from corpus");
        }
        // Clang/LLVM should dominate, as in Table V.
        let clang = corpus
            .iter()
            .filter(|b| b.apps.contains(&Application::ClangLlvm))
            .count();
        let gzip = corpus
            .iter()
            .filter(|b| b.apps.contains(&Application::Gzip))
            .count();
        assert!(clang > gzip * 5);
    }

    #[test]
    fn category_classification_rules() {
        let scalar: BasicBlock = "addq %rax, %rbx\nsubq %rcx, %rdx".parse().unwrap();
        assert_eq!(Category::classify(&scalar), Category::Scalar);
        let vec: BasicBlock = "addps %xmm1, %xmm0\nmulps %xmm2, %xmm3".parse().unwrap();
        assert_eq!(Category::classify(&vec), Category::Vec);
        let mixed: BasicBlock = "addq %rax, %rbx\naddps %xmm1, %xmm0".parse().unwrap();
        assert_eq!(Category::classify(&mixed), Category::ScalarVec);
        let load: BasicBlock = "movq (%rdi), %rax".parse().unwrap();
        assert_eq!(Category::classify(&load), Category::Ld);
        let store: BasicBlock = "movq %rax, (%rdi)".parse().unwrap();
        assert_eq!(Category::classify(&store), Category::St);
        let both: BasicBlock = "movq (%rdi), %rax\nmovq %rax, 8(%rdi)".parse().unwrap();
        assert_eq!(Category::classify(&both), Category::LdSt);
    }

    #[test]
    fn every_category_appears_in_a_large_corpus() {
        let config = CorpusConfig {
            num_blocks: 5000,
            seed: 11,
            ..CorpusConfig::default()
        };
        let corpus = generate_corpus(&config);
        for category in Category::ALL {
            assert!(
                corpus.iter().any(|b| b.category == category),
                "category {category} missing from corpus"
            );
        }
    }
}
