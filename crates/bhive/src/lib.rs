//! # difftune-bhive
//!
//! A synthetic BHive-style corpus and measurement pipeline.
//!
//! The paper's dataset is BHive (Chen et al. 2019): 287,639 basic blocks
//! sampled from real applications, each timed on real hardware. This crate
//! reproduces the *shape* of that dataset against the reference machines in
//! `difftune-cpu`:
//!
//! * [`corpus`] generates blocks per source application (OpenBLAS, Redis,
//!   SQLite, ...), with per-application instruction mixes and a BHive-like
//!   block length distribution;
//! * [`Category`] reproduces Chen et al.'s hardware-resource categories
//!   (Scalar, Vec, Scalar/Vec, Ld, St, Ld/St);
//! * [`Dataset`] measures every block on a reference machine, splits the
//!   corpus 80/10/10 into block-wise-disjoint train/validation/test sets, and
//!   reports Table III-style summary statistics;
//! * [`metrics`] implements the paper's error metrics: mean absolute
//!   percentage error and Kendall's tau rank correlation.
//!
//! # Example
//!
//! ```
//! use difftune_bhive::{CorpusConfig, Dataset};
//! use difftune_cpu::Microarch;
//!
//! let config = CorpusConfig { num_blocks: 200, seed: 0, ..CorpusConfig::default() };
//! let dataset = Dataset::build(Microarch::Haswell, &config);
//! assert_eq!(dataset.train().len() + dataset.validation().len() + dataset.test().len(), dataset.len());
//! assert!(dataset.summary().mean_block_len > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
mod dataset;
pub mod metrics;

pub use corpus::{Application, Category, CorpusConfig};
pub use dataset::{Dataset, DatasetSummary, Record, Split};
