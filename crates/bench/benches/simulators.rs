//! Criterion benchmarks for the simulators and the reference machine.

use criterion::{criterion_group, criterion_main, Criterion};

use difftune_cpu::{default_params, AnalyticalModel, Machine, Microarch};
use difftune_isa::{BasicBlock, BlockGenerator};
use difftune_sim::{McaSimulator, Simulator, UopSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn blocks() -> Vec<BasicBlock> {
    let generator = BlockGenerator::default();
    let mut rng = StdRng::seed_from_u64(0);
    (0..32)
        .map(|_| generator.generate_with_len(&mut rng, 8))
        .collect()
}

fn bench_simulators(c: &mut Criterion) {
    let blocks = blocks();
    let params = default_params(Microarch::Haswell);
    let mca = McaSimulator::default();
    let uop = UopSimulator::default();
    let machine = Machine::new(Microarch::Haswell);
    let analytical = AnalyticalModel::new(Microarch::Haswell).expect("haswell is supported");

    c.bench_function("mca_predict_8inst_block", |b| {
        let mut index = 0;
        b.iter(|| {
            index = (index + 1) % blocks.len();
            mca.predict(&params, &blocks[index])
        })
    });
    c.bench_function("uop_predict_8inst_block", |b| {
        let mut index = 0;
        b.iter(|| {
            index = (index + 1) % blocks.len();
            uop.predict(&params, &blocks[index])
        })
    });
    // Per-block loop vs the trait's parallel batched entry point over the
    // same 32 blocks: quantifies what the batched evaluation paths gain.
    c.bench_function("mca_predict_32blocks_loop", |b| {
        b.iter(|| -> Vec<f64> {
            blocks
                .iter()
                .map(|block| mca.predict(&params, block))
                .collect()
        })
    });
    c.bench_function("mca_predict_32blocks_batch", |b| {
        b.iter(|| mca.predict_batch(&params, &blocks))
    });
    c.bench_function("reference_machine_measure", |b| {
        let mut index = 0;
        b.iter(|| {
            index = (index + 1) % blocks.len();
            machine.measure(&blocks[index])
        })
    });
    c.bench_function("analytical_model_predict", |b| {
        let mut index = 0;
        b.iter(|| {
            index = (index + 1) % blocks.len();
            analytical.predict(&blocks[index])
        })
    });
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
