//! Criterion benchmarks for the surrogate models and training steps.

use criterion::{criterion_group, criterion_main, Criterion};

use difftune_cpu::{default_params, Microarch};
use difftune_isa::{BasicBlock, BlockGenerator};
use difftune_surrogate::train::{train_with_optimizer, TrainConfig, TrainSample};
use difftune_surrogate::{
    block_param_features, global_features, FeatureMlpConfig, FeatureMlpModel, IthemalConfig,
    IthemalModel, Vocab,
};
use difftune_tensor::optim::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn samples(count: usize) -> Vec<TrainSample> {
    let generator = BlockGenerator::default();
    let mut rng = StdRng::seed_from_u64(1);
    let vocab = Vocab::new();
    let params = default_params(Microarch::Haswell);
    (0..count)
        .map(|i| {
            let block: BasicBlock = generator.generate_with_len(&mut rng, 5);
            let tokenized = vocab.tokenize_block(&block);
            TrainSample {
                per_inst_features: Some(block_param_features(&params, &tokenized)),
                global_features: Some(global_features(&params)),
                block: tokenized,
                target: 1.0 + (i % 7) as f64,
            }
        })
        .collect()
}

fn bench_surrogate(c: &mut Criterion) {
    let data = samples(64);
    let lstm = IthemalModel::new(IthemalConfig {
        embed_dim: 16,
        hidden_dim: 32,
        instr_layers: 1,
        block_layers: 1,
        parameter_inputs: true,
        seed: 0,
    });
    let mlp = FeatureMlpModel::new(FeatureMlpConfig::default());

    c.bench_function("lstm_surrogate_forward", |b| {
        let sample = &data[0];
        b.iter(|| {
            lstm.predict(
                &sample.block,
                sample.per_inst_features.as_deref(),
                sample.global_features.as_ref(),
            )
        })
    });
    c.bench_function("mlp_surrogate_forward", |b| {
        let sample = &data[0];
        b.iter(|| {
            mlp.predict(
                &sample.block,
                sample.per_inst_features.as_deref(),
                sample.global_features.as_ref(),
            )
        })
    });
    c.bench_function("mlp_surrogate_train_batch64", |b| {
        b.iter(|| {
            let mut model = FeatureMlpModel::new(FeatureMlpConfig::default());
            let mut adam = Adam::new(1e-3);
            let config = TrainConfig {
                epochs: 1,
                batch_size: 64,
                threads: 1,
                ..TrainConfig::default()
            };
            train_with_optimizer(&mut model, &data, &config, &mut adam)
                .expect("bench training config is valid")
        })
    });
}

criterion_group!(benches, bench_surrogate);
criterion_main!(benches);
