//! Criterion benchmarks for dataset generation, metrics, and the black-box
//! baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use difftune::{generate_simulated_dataset, sample_table, ParamSpec};
use difftune_bhive::corpus::{generate_corpus, CorpusConfig};
use difftune_bhive::metrics::kendall_tau;
use difftune_cpu::{default_params, Microarch};
use difftune_opentuner::{BanditTuner, SearchSpace, TunerConfig};
use difftune_sim::McaSimulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("corpus_generate_200_blocks", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            generate_corpus(&CorpusConfig {
                num_blocks: 200,
                seed,
                ..CorpusConfig::default()
            })
        })
    });

    c.bench_function("sample_parameter_table", |b| {
        let spec = ParamSpec::llvm_mca();
        let defaults = default_params(Microarch::Haswell);
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| sample_table(&mut rng, &spec, &defaults))
    });

    c.bench_function("simulated_dataset_256_samples", |b| {
        let corpus = generate_corpus(&CorpusConfig {
            num_blocks: 64,
            seed: 0,
            ..CorpusConfig::default()
        });
        let blocks: Vec<_> = corpus.into_iter().map(|c| c.block).collect();
        let simulator = McaSimulator::new(16);
        let defaults = default_params(Microarch::Haswell);
        b.iter(|| {
            generate_simulated_dataset(
                &simulator,
                &ParamSpec::llvm_mca(),
                &defaults,
                &blocks,
                256,
                0,
                1,
            )
            .expect("bench blocks are non-empty")
        })
    });

    c.bench_function("kendall_tau_10k", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let actual: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let predicted: Vec<f64> = actual
            .iter()
            .map(|a| a + rng.gen_range(-5.0..5.0))
            .collect();
        b.iter(|| kendall_tau(&predicted, &actual))
    });

    c.bench_function("opentuner_100_iterations_sphere", |b| {
        b.iter(|| {
            let space = SearchSpace::uniform(64, 0.0, 5.0);
            let mut tuner = BanditTuner::new(space, TunerConfig::default());
            tuner.optimize(|x| x.iter().map(|v| (v - 2.0).powi(2)).sum(), 100)
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
