//! The shared benchmark-record schema behind `BENCH_*.json`.
//!
//! Every performance artifact this repository produces — the
//! `difftune-bench` stage runner and the vendored criterion shim's optional
//! JSON output — serializes to the same [`BenchRecord`] shape (schema
//! `difftune-bench/1`), so one set of tooling can consume the whole perf
//! trajectory.

use difftune_sim::SimParams;
use serde::{Deserialize, Serialize};

/// The schema tag every record carries.
pub const BENCH_SCHEMA: &str = "difftune-bench/1";

/// One benchmark measurement: a pipeline stage (`generate`, `fit`,
/// `optimize`, `simulate`) or a criterion benchmark (`criterion:<id>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Stage name: `generate` / `fit` / `optimize` / `simulate`, or
    /// `criterion:<benchmark id>` for criterion output.
    pub stage: String,
    /// The `DIFFTUNE_SCALE` the stage ran at (absent for criterion records).
    pub scale: Option<String>,
    /// Worker-thread count the stage ran with (`DIFFTUNE_THREADS`).
    pub threads: usize,
    /// Available cores on the machine that produced the record — the context
    /// needed to interpret `threads` and any speedup.
    pub cpu_cores: usize,
    /// The run seed.
    pub seed: u64,
    /// Stage wall time in seconds (for criterion records, the median time of
    /// one iteration).
    pub wall_time_seconds: f64,
    /// Number of samples the stage processed (dataset samples generated,
    /// training samples visited, blocks simulated; 0 for criterion records).
    pub samples: usize,
    /// Throughput: `samples / wall_time_seconds` (for criterion records,
    /// iterations per second).
    pub samples_per_second: f64,
    /// Median nanoseconds per iteration (criterion records only).
    pub median_ns_per_iter: Option<f64>,
    /// FNV-1a fingerprint of the learned table (`optimize` stage only) —
    /// two runs with equal fingerprints produced bit-identical tables.
    pub table_fingerprint: Option<String>,
    /// Wall-time ratio of a serial (`threads = 1`) rerun of the same stage
    /// to this run, when `--compare-serial` measured one.
    pub speedup_vs_serial: Option<f64>,
}

impl BenchRecord {
    /// Builds a pipeline-stage record; optional fields start empty.
    pub fn stage(
        stage: &str,
        scale: &str,
        threads: usize,
        seed: u64,
        wall_time_seconds: f64,
        samples: usize,
    ) -> Self {
        BenchRecord {
            schema: BENCH_SCHEMA.to_string(),
            stage: stage.to_string(),
            scale: Some(scale.to_string()),
            threads,
            cpu_cores: available_cores(),
            seed,
            wall_time_seconds,
            samples,
            samples_per_second: if wall_time_seconds > 0.0 {
                samples as f64 / wall_time_seconds
            } else {
                0.0
            },
            median_ns_per_iter: None,
            table_fingerprint: None,
            speedup_vs_serial: None,
        }
    }

    /// The conventional file name for this record (`BENCH_<stage>.json`,
    /// with non-alphanumeric stage characters mapped to `_`).
    pub fn file_name(&self) -> String {
        let sanitized: String = self
            .stage
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("BENCH_{sanitized}.json")
    }

    /// Serializes the record to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a BenchRecord always serializes")
    }

    /// Deserializes a record from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|error| format!("{error:?}"))
    }
}

/// The machine's available core count (1 if it cannot be determined).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-sensitive FNV-1a fingerprint of a parameter table's flat encoding.
/// Two tables fingerprint equal exactly when their flat `f64` encodings are
/// bit-identical; the digest is stable across processes and Rust versions.
pub fn fingerprint_table(params: &SimParams) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for value in params.to_flat() {
        for byte in value.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    }
    format!("{hash:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let mut record = BenchRecord::stage("fit", "smoke", 4, 7, 1.5, 6000);
        record.table_fingerprint = Some("0xdeadbeef".to_string());
        record.speedup_vs_serial = Some(2.5);
        let json = record.to_json();
        assert_eq!(BenchRecord::from_json(&json).unwrap(), record);
        assert_eq!(record.file_name(), "BENCH_fit.json");
        assert_eq!(record.samples_per_second, 4000.0);
    }

    #[test]
    fn criterion_stage_names_sanitize_into_file_names() {
        let record = BenchRecord::stage("criterion:mca/predict", "smoke", 1, 0, 0.0, 0);
        assert_eq!(record.file_name(), "BENCH_criterion_mca_predict.json");
        assert_eq!(record.samples_per_second, 0.0);
    }

    #[test]
    fn fingerprints_detect_any_table_change() {
        let base = SimParams::uniform_default();
        let mut changed = base.clone();
        changed.per_inst[3].write_latency += 1;
        assert_eq!(fingerprint_table(&base), fingerprint_table(&base));
        assert_ne!(fingerprint_table(&base), fingerprint_table(&changed));
    }

    #[test]
    fn the_criterion_shim_emits_this_schema() {
        // The vendored criterion shim hand-formats its JSON (it cannot depend
        // on this crate); this test pins the two to the same schema by
        // parsing a shim-produced record.
        let json = criterion::bench_record_json("mca/predict batch", 125.5);
        let record = BenchRecord::from_json(&json).expect("shim output parses as a BenchRecord");
        assert_eq!(record.schema, BENCH_SCHEMA);
        assert_eq!(record.stage, "criterion:mca/predict batch");
        assert_eq!(record.median_ns_per_iter, Some(125.5));
        assert!((record.samples_per_second - 1e9 / 125.5).abs() < 1e-3);
        assert!((record.wall_time_seconds - 125.5e-9).abs() < 1e-18);
        assert_eq!(record.scale, None);
        assert_eq!(record.samples, 0);
        assert_eq!(record.table_fingerprint, None);
        assert_eq!(record.speedup_vs_serial, None);
    }
}
