//! The shared artifact schemas behind `BENCH_*.json` and `MATRIX_*.json`.
//!
//! Every performance artifact this repository produces — the
//! `difftune-bench` stage runner and the vendored criterion shim's optional
//! JSON output — serializes to the same [`BenchRecord`] shape (schema
//! `difftune-bench/2`; `/1` records still load), so one set of tooling can
//! consume the whole perf trajectory. The scenario-matrix runner (`difftune-matrix`, see
//! [`crate::matrix`]) emits one [`MatrixRecord`] per tuned cell plus a
//! [`MatrixSummary`] roll-up, both under schema `difftune-matrix/3`
//! (`/2` records still load).
//!
//! Matrix records deliberately contain **no wall-clock or machine-dependent
//! fields by default** (no timings, thread counts, or core counts): a cell's
//! JSON is a pure function of its `(simulator, uarch, spec)` key and scale,
//! so reruns — on any machine, at any `DIFFTUNE_THREADS` — produce
//! byte-identical files, which is what the determinism suite asserts. The
//! one exception is explicit opt-in: `difftune-matrix --measure-throughput`
//! populates the `Option`-typed blocks/s fields (absent otherwise), trading
//! byte-reproducibility of those two fields for a throughput column — the
//! determinism suite never passes the flag.

use difftune_sim::SimParams;
use serde::{Deserialize, Serialize};

/// The schema tag every benchmark record carries.
///
/// `difftune-bench/2` extends `/1` with [`BenchRecord::engine`] (which
/// execution engine ran the stage) and [`BenchRecord::speedup_vs_taped`]
/// (the compiled engine's core-count-independent speedup over the tape).
/// [`BenchRecord::from_json`] still accepts `/1` records — the two added
/// fields read back as absent.
pub const BENCH_SCHEMA: &str = "difftune-bench/2";

/// The schema tag every matrix record and summary carries.
///
/// `difftune-matrix/2` extends `/1` with [`MatrixRecord::learned_table`] (the
/// learned table's flat encoding), making every cell record a self-contained
/// servable backend for `difftune-serve`. `/1` records lack the table and are
/// simply re-run by a resumed sweep (the sweep-level resume check matches on
/// the schema tag).
///
/// `difftune-matrix/3` extends `/2` with the surrogate column: held-out
/// scores of the trained surrogate against ground truth and against the
/// learned-table simulator ([`MatrixRecord::surrogate_mape`] and friends),
/// the exported `SURROGATE_*.json` artifact's content fingerprint, and —
/// only when the sweep opts in with `--measure-throughput` — predicted
/// blocks/s for the surrogate and the simulator.
/// [`MatrixRecord::from_json`] still accepts `/2` records — the added
/// fields read back as absent.
pub const MATRIX_SCHEMA: &str = "difftune-matrix/3";

/// One benchmark measurement: a pipeline stage (`generate`, `fit`,
/// `optimize`, `simulate`) or a criterion benchmark (`criterion:<id>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Stage name: `generate` / `fit` / `optimize` / `simulate`, or
    /// `criterion:<benchmark id>` for criterion output.
    pub stage: String,
    /// The `DIFFTUNE_SCALE` the stage ran at (absent for criterion records).
    pub scale: Option<String>,
    /// Worker-thread count the stage ran with (`DIFFTUNE_THREADS`).
    pub threads: usize,
    /// Available cores on the machine that produced the record — the context
    /// needed to interpret `threads` and any speedup.
    pub cpu_cores: usize,
    /// The run seed.
    pub seed: u64,
    /// Stage wall time in seconds (for criterion records, the median time of
    /// one iteration).
    pub wall_time_seconds: f64,
    /// Number of samples the stage processed (dataset samples generated,
    /// training samples visited, blocks simulated; 0 for criterion records).
    pub samples: usize,
    /// Throughput: `samples / wall_time_seconds` (for criterion records,
    /// iterations per second).
    pub samples_per_second: f64,
    /// Median nanoseconds per iteration (criterion records only).
    pub median_ns_per_iter: Option<f64>,
    /// FNV-1a fingerprint of the learned table (`optimize` stage only) —
    /// two runs with equal fingerprints produced bit-identical tables.
    pub table_fingerprint: Option<String>,
    /// Wall-time ratio of a serial (`threads = 1`) rerun of the same stage
    /// to this run, when `--compare-serial` measured one.
    ///
    /// **Interpret against [`cpu_cores`](BenchRecord::cpu_cores):** the ratio
    /// only measures parallel scaling when the machine has at least `threads`
    /// real cores. On a 1-core container a "4-thread" run time-slices one
    /// core and this ratio legitimately reads *below* 1 (the committed smoke
    /// baselines were produced on such a machine) — that is scheduler
    /// overhead, not an engine regression.
    pub speedup_vs_serial: Option<f64>,
    /// Which execution engine ran the stage's forward/backward passes:
    /// `"taped"` or `"compiled"`. Absent on stages that have no engine
    /// choice (generate/simulate/serve/criterion) and on `/1` records.
    pub engine: Option<String>,
    /// Wall-time ratio of a taped-engine rerun of the same stage to this
    /// (compiled) run, when `--compare-taped` measured one. Both runs use
    /// the same thread count, so — unlike
    /// [`speedup_vs_serial`](BenchRecord::speedup_vs_serial) — this ratio is
    /// meaningful on any machine, including 1-core CI containers.
    pub speedup_vs_taped: Option<f64>,
}

impl BenchRecord {
    /// Builds a pipeline-stage record; optional fields start empty.
    pub fn stage(
        stage: &str,
        scale: &str,
        threads: usize,
        seed: u64,
        wall_time_seconds: f64,
        samples: usize,
    ) -> Self {
        BenchRecord {
            schema: BENCH_SCHEMA.to_string(),
            stage: stage.to_string(),
            scale: Some(scale.to_string()),
            threads,
            cpu_cores: available_cores(),
            seed,
            wall_time_seconds,
            samples,
            samples_per_second: if wall_time_seconds > 0.0 {
                samples as f64 / wall_time_seconds
            } else {
                0.0
            },
            median_ns_per_iter: None,
            table_fingerprint: None,
            speedup_vs_serial: None,
            engine: None,
            speedup_vs_taped: None,
        }
    }

    /// Builds a serving-throughput record for the `difftune-loadtest` closed
    /// loop: stage `serve`, no scale (serving has no `DIFFTUNE_SCALE`; like
    /// criterion records the field stays empty), `samples` counting predicted
    /// blocks.
    pub fn serve(threads: usize, seed: u64, wall_time_seconds: f64, samples: usize) -> Self {
        BenchRecord {
            scale: None,
            ..BenchRecord::stage("serve", "", threads, seed, wall_time_seconds, samples)
        }
    }

    /// Builds a routed-serving-throughput record for `difftune-loadtest
    /// --via-router` runs: stage `route`, otherwise shaped like
    /// [`BenchRecord::serve`]. The CI artifact is written as
    /// `BENCH_router.json` by the loadtest (the stage stays `route`).
    pub fn route(threads: usize, seed: u64, wall_time_seconds: f64, samples: usize) -> Self {
        BenchRecord {
            scale: None,
            ..BenchRecord::stage("route", "", threads, seed, wall_time_seconds, samples)
        }
    }

    /// The conventional file name for this record (`BENCH_<stage>.json`,
    /// with non-alphanumeric stage characters mapped to `_`).
    pub fn file_name(&self) -> String {
        let sanitized: String = self
            .stage
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("BENCH_{sanitized}.json")
    }

    /// Serializes the record to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a BenchRecord always serializes")
    }

    /// Deserializes a record from JSON.
    ///
    /// Accepts both `difftune-bench/2` and legacy `/1` records: the fields
    /// `/2` added ([`engine`](BenchRecord::engine),
    /// [`speedup_vs_taped`](BenchRecord::speedup_vs_taped)) are treated as
    /// absent when a record predates them.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut value = serde_json::from_str_value(json).map_err(|error| format!("{error:?}"))?;
        if let serde::Value::Map(entries) = &mut value {
            for key in ["engine", "speedup_vs_taped"] {
                if !entries.iter().any(|(name, _)| name == key) {
                    entries.push((key.to_string(), serde::Value::Null));
                }
            }
        }
        <Self as serde::Deserialize>::deserialize(&value).map_err(|error| format!("{error:?}"))
    }
}

/// One scenario-matrix cell's scores: a `(simulator, microarchitecture,
/// parameter spec)` combination tuned through the session pipeline and scored
/// on the held-out corpus (schema [`MATRIX_SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixRecord {
    /// Schema tag ([`MATRIX_SCHEMA`]).
    pub schema: String,
    /// The cell key, `<simulator>:<uarch>:<spec>` (e.g.
    /// `mca:haswell:llvm_mca`).
    pub cell: String,
    /// Simulator short name (`mca` or `uop`).
    pub simulator: String,
    /// Microarchitecture short name (`ivybridge`, `haswell`, `skylake`,
    /// `zen2`).
    pub uarch: String,
    /// Parameter-spec name (`llvm_mca`, `write_latency_only`, `llvm_sim`).
    pub spec: String,
    /// The `DIFFTUNE_SCALE` the cell ran at.
    pub scale: String,
    /// The cell's run seed — a stable FNV-1a hash of the cell key, never a
    /// function of enumeration order or scheduling.
    pub seed: u64,
    /// Non-empty training blocks the session optimized against.
    pub train_blocks: usize,
    /// Held-out blocks (validation + test splits) the tables were scored on.
    pub heldout_blocks: usize,
    /// Simulated samples used for surrogate training.
    pub simulated_samples: usize,
    /// Number of learned scalar parameters in the cell's spec.
    pub num_learned_parameters: usize,
    /// Held-out MAPE of the expert-provided default table.
    pub default_mape: f64,
    /// Held-out Kendall's tau of the default table.
    pub default_tau: f64,
    /// Held-out MAPE of the learned table.
    pub learned_mape: f64,
    /// Held-out Kendall's tau of the learned table.
    pub learned_tau: f64,
    /// Per-hardware-resource-category breakdown (Table V-style), in
    /// [`difftune_bhive::Category`] order.
    pub by_category: Vec<CategoryScore>,
    /// FNV-1a fingerprint of the learned table (see [`fingerprint_table`]):
    /// equal fingerprints mean bit-identical learned tables.
    pub table_fingerprint: String,
    /// The learned table's flat `f64` encoding
    /// ([`SimParams::to_flat`]), so the record is a self-contained servable
    /// backend: `difftune-serve` reconstructs the table with
    /// [`SimParams::from_flat`] and verifies it against
    /// [`MatrixRecord::table_fingerprint`]. Learned values are integral, so
    /// the round trip is exact (pinned by `fingerprints_are_stable...` in
    /// `difftune-sim`). Empty in [`MatrixSummary`] rows — the roll-up omits
    /// tables rather than duplicating every per-cell file's.
    pub learned_table: Vec<f64>,
    /// Held-out MAPE of the trained surrogate against ground truth —
    /// how good the fast path is as a predictor in its own right. Absent on
    /// `/2` records.
    pub surrogate_mape: Option<f64>,
    /// Held-out Kendall's tau of the surrogate against ground truth.
    pub surrogate_tau: Option<f64>,
    /// Held-out MAPE of the surrogate against the learned-table simulator —
    /// the surrogate's *fidelity* to what it mimics (Equation 2's residual
    /// on real blocks). Absent on `/2` records.
    pub surrogate_vs_sim_mape: Option<f64>,
    /// Held-out Kendall's tau of the surrogate against the learned-table
    /// simulator.
    pub surrogate_vs_sim_tau: Option<f64>,
    /// Content fingerprint of the exported `SURROGATE_*.json` artifact, so a
    /// record pins exactly which surrogate its scores describe. Absent on
    /// `/2` records.
    pub surrogate_fingerprint: Option<String>,
    /// Surrogate predicted blocks/s over the held-out corpus. Wall-clock, so
    /// it is **only** populated under `--measure-throughput` — byte-identity
    /// of default sweeps stays intact (see the module docs).
    pub surrogate_blocks_per_second: Option<f64>,
    /// Learned-table simulator predicted blocks/s over the held-out corpus
    /// (same `--measure-throughput` gate).
    pub simulator_blocks_per_second: Option<f64>,
}

impl MatrixRecord {
    /// The conventional file name for this cell
    /// (`MATRIX_<simulator>_<uarch>_<spec>.json`).
    pub fn file_name(&self) -> String {
        matrix_cell_file_name(&self.simulator, &self.uarch, &self.spec)
    }

    /// Serializes the record to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a MatrixRecord always serializes")
    }

    /// Deserializes a record from JSON.
    ///
    /// Accepts both `difftune-matrix/3` and `/2` records: the surrogate
    /// fields `/3` added are treated as absent when a record predates them.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut value = serde_json::from_str_value(json).map_err(|error| format!("{error:?}"))?;
        if let serde::Value::Map(entries) = &mut value {
            for key in [
                "surrogate_mape",
                "surrogate_tau",
                "surrogate_vs_sim_mape",
                "surrogate_vs_sim_tau",
                "surrogate_fingerprint",
                "surrogate_blocks_per_second",
                "simulator_blocks_per_second",
            ] {
                if !entries.iter().any(|(name, _)| name == key) {
                    entries.push((key.to_string(), serde::Value::Null));
                }
            }
        }
        <Self as serde::Deserialize>::deserialize(&value).map_err(|error| format!("{error:?}"))
    }
}

/// The per-cell file name (`MATRIX_<simulator>_<uarch>_<spec>.json`, with
/// non-alphanumeric characters mapped to `_`). The spec is part of the name
/// because one `(simulator, uarch)` pair is tuned under several specs.
pub fn matrix_cell_file_name(simulator: &str, uarch: &str, spec: &str) -> String {
    let sanitize = |raw: &str| -> String {
        raw.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    };
    format!(
        "MATRIX_{}_{}_{}.json",
        sanitize(simulator),
        sanitize(uarch),
        sanitize(spec)
    )
}

/// One category row of a [`MatrixRecord`]: default vs. learned error and rank
/// correlation over the held-out blocks in one hardware-resource category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryScore {
    /// Category name as displayed in the paper (`Scalar`, `Vec`, ...).
    pub category: String,
    /// Number of held-out blocks in the category.
    pub blocks: usize,
    /// Default-table MAPE over the category.
    pub default_mape: f64,
    /// Default-table Kendall's tau over the category.
    pub default_tau: f64,
    /// Learned-table MAPE over the category.
    pub learned_mape: f64,
    /// Learned-table Kendall's tau over the category.
    pub learned_tau: f64,
}

/// A cell the matrix enumerated but did not run, with the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedCell {
    /// The cell key (`<simulator>:<uarch>:<spec>`).
    pub cell: String,
    /// Why the cell was skipped (e.g. the spec learns parameters the
    /// simulator never reads).
    pub reason: String,
}

/// The conventional file name of the matrix roll-up.
pub const MATRIX_SUMMARY_FILE: &str = "MATRIX_summary.json";

/// The roll-up across every enumerated cell of one sweep (schema
/// [`MATRIX_SCHEMA`]), written as `MATRIX_summary.json`.
///
/// Like [`MatrixRecord`], the summary holds no wall-clock or machine state:
/// an interrupted sweep that is later resumed writes a summary byte-identical
/// to an uninterrupted run's. Its rows carry an empty `learned_table` —
/// the tables live in the per-cell files, which `difftune-serve` loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixSummary {
    /// Schema tag ([`MATRIX_SCHEMA`]).
    pub schema: String,
    /// The scale the sweep ran at.
    pub scale: String,
    /// Cells enumerated (completed + skipped + any not yet run).
    pub cells_total: usize,
    /// Cells with a completed [`MatrixRecord`].
    pub cells_completed: usize,
    /// Cells skipped as incompatible.
    pub cells_skipped: usize,
    /// The skipped cells with reasons, in enumeration order.
    pub skipped: Vec<SkippedCell>,
    /// Completed cell records, sorted by cell key.
    pub records: Vec<MatrixRecord>,
}

impl MatrixSummary {
    /// Serializes the summary to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a MatrixSummary always serializes")
    }

    /// Deserializes a summary from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|error| format!("{error:?}"))
    }
}

/// The machine's available core count (1 if it cannot be determined).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-sensitive FNV-1a hash of a byte stream, stable across processes and
/// Rust versions (the digests it produces are persisted in artifacts). Shared
/// by [`fingerprint_table`] and the matrix's cell-seed derivation.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Order-sensitive FNV-1a fingerprint of a parameter table's flat encoding.
/// Two tables fingerprint equal exactly when their flat `f64` encodings are
/// bit-identical; the digest is stable across processes and Rust versions.
///
/// This is [`SimParams::fingerprint_hex`]; the alias is kept because the
/// digest convention predates the method and every artifact consumer imports
/// it from here.
pub fn fingerprint_table(params: &SimParams) -> String {
    params.fingerprint_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let mut record = BenchRecord::stage("fit", "smoke", 4, 7, 1.5, 6000);
        record.table_fingerprint = Some("0xdeadbeef".to_string());
        record.speedup_vs_serial = Some(2.5);
        record.engine = Some("compiled".to_string());
        record.speedup_vs_taped = Some(1.8);
        let json = record.to_json();
        assert!(json.contains("difftune-bench/2"));
        assert_eq!(BenchRecord::from_json(&json).unwrap(), record);
        assert_eq!(record.file_name(), "BENCH_fit.json");
        assert_eq!(record.samples_per_second, 4000.0);
    }

    #[test]
    fn legacy_schema_1_records_still_load() {
        // A committed baseline produced before the /2 schema: no `engine`,
        // no `speedup_vs_taped`. The loader must accept it and report the
        // missing fields as absent.
        let json = r#"{"schema":"difftune-bench/1","stage":"fit","scale":"smoke",
            "threads":4,"cpu_cores":1,"seed":0,"wall_time_seconds":10.5,
            "samples":6000,"samples_per_second":571.4,"median_ns_per_iter":null,
            "table_fingerprint":"0xabc","speedup_vs_serial":0.53}"#;
        let record = BenchRecord::from_json(json).expect("/1 records parse");
        assert_eq!(record.schema, "difftune-bench/1");
        assert_eq!(record.engine, None);
        assert_eq!(record.speedup_vs_taped, None);
        assert_eq!(record.speedup_vs_serial, Some(0.53));
        assert_eq!(record.table_fingerprint.as_deref(), Some("0xabc"));
    }

    #[test]
    fn criterion_stage_names_sanitize_into_file_names() {
        let record = BenchRecord::stage("criterion:mca/predict", "smoke", 1, 0, 0.0, 0);
        assert_eq!(record.file_name(), "BENCH_criterion_mca_predict.json");
        assert_eq!(record.samples_per_second, 0.0);
    }

    #[test]
    fn fingerprints_detect_any_table_change() {
        let base = SimParams::uniform_default();
        let mut changed = base.clone();
        changed.per_inst[3].write_latency += 1;
        assert_eq!(fingerprint_table(&base), fingerprint_table(&base));
        assert_ne!(fingerprint_table(&base), fingerprint_table(&changed));
    }

    fn sample_matrix_record() -> MatrixRecord {
        MatrixRecord {
            schema: MATRIX_SCHEMA.to_string(),
            cell: "mca:haswell:llvm_mca".to_string(),
            simulator: "mca".to_string(),
            uarch: "haswell".to_string(),
            spec: "llvm_mca".to_string(),
            scale: "smoke".to_string(),
            seed: 0x1234,
            train_blocks: 480,
            heldout_blocks: 120,
            simulated_samples: 1440,
            num_learned_parameters: 9000,
            default_mape: 0.25,
            default_tau: 0.8,
            learned_mape: 0.2,
            learned_tau: 0.82,
            by_category: vec![CategoryScore {
                category: "Scalar".to_string(),
                blocks: 40,
                default_mape: 0.3,
                default_tau: 0.7,
                learned_mape: 0.25,
                learned_tau: 0.75,
            }],
            table_fingerprint: "0xdeadbeef".to_string(),
            learned_table: vec![4.0, 128.0, 1.0, 2.0],
            surrogate_mape: Some(0.18),
            surrogate_tau: Some(0.84),
            surrogate_vs_sim_mape: Some(0.05),
            surrogate_vs_sim_tau: Some(0.95),
            surrogate_fingerprint: Some("0xfeedface".to_string()),
            surrogate_blocks_per_second: None,
            simulator_blocks_per_second: None,
        }
    }

    #[test]
    fn matrix_record_round_trips_through_json() {
        let record = sample_matrix_record();
        let json = record.to_json();
        assert_eq!(MatrixRecord::from_json(&json).unwrap(), record);
        assert_eq!(record.file_name(), "MATRIX_mca_haswell_llvm_mca.json");
        assert!(json.contains("difftune-matrix/3"));
        assert!(json.contains("learned_table"));
        assert!(json.contains("surrogate_mape"));
    }

    #[test]
    fn legacy_matrix_schema_2_records_still_load() {
        // A /2-era record: no surrogate fields at all. The loader must
        // accept it and report the missing columns as absent.
        let mut v2 = sample_matrix_record();
        v2.schema = "difftune-matrix/2".to_string();
        let value = serde_json::from_str_value(&v2.to_json()).unwrap();
        let entries: Vec<(String, serde::Value)> = value
            .as_map()
            .unwrap()
            .iter()
            .filter(|(key, _)| {
                !key.starts_with("surrogate_") && !key.ends_with("_blocks_per_second")
            })
            .cloned()
            .collect();
        let json = serde_json::to_string(&serde::Value::Map(entries)).unwrap();
        let record = MatrixRecord::from_json(&json).expect("/2 records parse");
        assert_eq!(record.schema, "difftune-matrix/2");
        assert_eq!(record.surrogate_mape, None);
        assert_eq!(record.surrogate_fingerprint, None);
        assert_eq!(record.simulator_blocks_per_second, None);
        assert_eq!(record.learned_table, v2.learned_table);
    }

    #[test]
    fn serve_records_carry_the_stage_and_no_scale() {
        let record = BenchRecord::serve(4, 7, 2.0, 128);
        assert_eq!(record.schema, BENCH_SCHEMA);
        assert_eq!(record.stage, "serve");
        assert_eq!(record.scale, None);
        assert_eq!(record.file_name(), "BENCH_serve.json");
        assert_eq!(record.samples_per_second, 64.0);
        let json = record.to_json();
        assert_eq!(BenchRecord::from_json(&json).unwrap(), record);
    }

    #[test]
    fn fingerprint_table_matches_the_sim_crate_digest() {
        // The helper predates SimParams::fingerprint_hex; pin the delegation
        // so artifacts produced before the move stay comparable.
        let params = SimParams::uniform_default();
        let expected = fnv1a(
            params
                .to_flat()
                .into_iter()
                .flat_map(|value| value.to_bits().to_le_bytes()),
        );
        assert_eq!(fingerprint_table(&params), format!("{expected:#018x}"));
        assert_eq!(params.stable_fingerprint(), expected);
    }

    #[test]
    fn matrix_summary_round_trips_through_json() {
        let summary = MatrixSummary {
            schema: MATRIX_SCHEMA.to_string(),
            scale: "smoke".to_string(),
            cells_total: 24,
            cells_completed: 19,
            cells_skipped: 4,
            skipped: vec![SkippedCell {
                cell: "uop:haswell:llvm_mca".to_string(),
                reason: "spec learns parameters llvm_sim never reads".to_string(),
            }],
            records: vec![sample_matrix_record()],
        };
        let json = summary.to_json();
        assert_eq!(MatrixSummary::from_json(&json).unwrap(), summary);
    }

    #[test]
    fn matrix_file_names_sanitize_their_components() {
        assert_eq!(
            matrix_cell_file_name("llvm-mca", "ivy bridge", "llvm_sim"),
            "MATRIX_llvm_mca_ivy_bridge_llvm_sim.json"
        );
    }

    #[test]
    fn the_criterion_shim_emits_this_schema() {
        // The vendored criterion shim hand-formats its JSON (it cannot depend
        // on this crate); this test pins the two to the same schema by
        // parsing a shim-produced record.
        let json = criterion::bench_record_json("mca/predict batch", 125.5);
        let record = BenchRecord::from_json(&json).expect("shim output parses as a BenchRecord");
        assert_eq!(record.schema, BENCH_SCHEMA);
        assert_eq!(record.stage, "criterion:mca/predict batch");
        assert_eq!(record.median_ns_per_iter, Some(125.5));
        assert!((record.samples_per_second - 1e9 / 125.5).abs() < 1e-3);
        assert!((record.wall_time_seconds - 125.5e-9).abs() < 1e-18);
        assert_eq!(record.scale, None);
        assert_eq!(record.samples, 0);
        assert_eq!(record.table_fingerprint, None);
        assert_eq!(record.speedup_vs_serial, None);
        assert_eq!(record.engine, None);
        assert_eq!(record.speedup_vs_taped, None);
    }
}
