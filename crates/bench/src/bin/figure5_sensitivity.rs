//! Figure 5: llvm-mca's sensitivity to DispatchWidth and ReorderBufferSize
//! within the default and learned parameter tables (Haswell).

use difftune::ParamSpec;
use difftune_bench::{dataset_for, evaluate_params, mca, pct, run_difftune, Scale};
use difftune_cpu::{default_params, Microarch};
use difftune_sim::SimParams;

fn main() {
    let scale = Scale::from_env_or_exit();
    let uarch = Microarch::Haswell;
    let simulator = mca();
    let dataset = dataset_for(uarch, scale, 0);
    let test = dataset.test();
    let defaults = default_params(uarch);
    let result = run_difftune(
        &simulator,
        &ParamSpec::llvm_mca(),
        uarch,
        &dataset,
        scale,
        0,
    );

    let sweep = |name: &str, base: &SimParams| {
        println!("\n{name}: error while sweeping DispatchWidth");
        println!("{:<14} Error", "DispatchWidth");
        for width in 1..=10u32 {
            let mut params = base.clone();
            params.dispatch_width = width;
            let (error, _) = evaluate_params(&simulator, &params, &test);
            println!("{width:<14} {}", pct(error));
        }
        println!("\n{name}: error while sweeping ReorderBufferSize");
        println!("{:<18} Error", "ReorderBufferSize");
        for rob in [10u32, 25, 50, 75, 100, 150, 200, 250, 300, 400] {
            let mut params = base.clone();
            params.reorder_buffer_size = rob;
            let (error, _) = evaluate_params(&simulator, &params, &test);
            println!("{rob:<18} {}", pct(error));
        }
    };

    println!("Figure 5: sensitivity to global parameters (Haswell, scale: {scale:?})");
    sweep("Default parameters", &defaults);
    sweep("Learned parameters", &result.learned);
}
