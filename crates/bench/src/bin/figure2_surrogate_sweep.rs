//! Figure 2: timing predicted by the simulator and by a trained surrogate for
//! the block `shrq $5, 16(%rsp)` while sweeping DispatchWidth from 1 to 10.

use difftune::{build_surrogate, generate_simulated_dataset, ParamSpec};
use difftune_bench::{mca, Scale};
use difftune_cpu::{default_params, Microarch};
use difftune_isa::BasicBlock;
use difftune_sim::Simulator;
use difftune_surrogate::train::train;
use difftune_surrogate::{block_param_features, global_features, Vocab};

fn main() {
    let scale = Scale::from_env_or_exit();
    let simulator = mca();
    let defaults = default_params(Microarch::Haswell);
    let block: BasicBlock = "shrq $5, 16(%rsp)".parse().expect("figure 2 block parses");

    // Train a surrogate on simulated data for this block only (the figure's
    // purpose is to show that the surrogate smooths the simulator's step
    // function over DispatchWidth).
    let spec = ParamSpec::llvm_mca();
    let samples = generate_simulated_dataset(
        &simulator,
        &spec,
        &defaults,
        std::slice::from_ref(&block),
        match scale {
            Scale::Smoke => 500,
            Scale::Small => 4_000,
            Scale::Paper => 20_000,
        },
        0,
        0,
    )
    .expect("figure 2 uses a non-empty block set");
    let mut surrogate = build_surrogate(&scale.difftune_config(0).surrogate);
    let mut config = scale.difftune_config(0).surrogate_train;
    config.epochs = 4;
    train(&mut surrogate, &samples, &config).expect("figure 2 training config is valid");

    let vocab = Vocab::new();
    let tokenized = vocab.tokenize_block(&block);

    println!("Figure 2: SHR64mi timing while sweeping DispatchWidth (scale: {scale:?})\n");
    println!("{:<14} {:<12} Surrogate", "DispatchWidth", "llvm-mca");
    for width in 1..=10u32 {
        let mut params = defaults.clone();
        params.dispatch_width = width;
        let simulated = simulator.predict(&params, &block);
        let features = block_param_features(&params, &tokenized);
        let global = global_features(&params);
        let mut graph = difftune_tensor::Graph::new(surrogate.params());
        let feature_vars: Vec<_> = features.iter().map(|f| graph.input(f.clone())).collect();
        let global_var = graph.input(global);
        let out = difftune_surrogate::SurrogateModel::forward(
            &surrogate,
            &mut graph,
            &tokenized,
            Some(&feature_vars),
            Some(global_var),
        );
        let predicted = f64::from(graph.value(out)[0]);
        println!("{width:<14} {simulated:<12.3} {predicted:.3}");
    }
}
