//! Quick sanity check of the DiffTune pipeline at a reduced scale (not a paper
//! table; used during development).

use difftune::ParamSpec;
use difftune_bench::{evaluate_params, mca, run_difftune, Scale};
use difftune_bhive::{CorpusConfig, Dataset};
use difftune_cpu::{default_params, Microarch};

fn main() {
    let uarch = Microarch::Haswell;
    let blocks: usize = std::env::var("SANITY_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let dataset = Dataset::build(
        uarch,
        &CorpusConfig {
            num_blocks: blocks,
            seed: 0,
            ..CorpusConfig::default()
        },
    );
    let simulator = mca();
    let test = dataset.test();

    let defaults = default_params(uarch);
    let (default_error, default_tau) = evaluate_params(&simulator, &defaults, &test);
    println!(
        "default : err {:6.1}% tau {default_tau:.3}",
        default_error * 100.0
    );

    let start = std::time::Instant::now();
    let result = run_difftune(
        &simulator,
        &ParamSpec::llvm_mca(),
        uarch,
        &dataset,
        Scale::Small,
        0,
    );
    let (initial_error, _) = evaluate_params(&simulator, &result.initial, &test);
    let (learned_error, learned_tau) = evaluate_params(&simulator, &result.learned, &test);
    println!("initial : err {:6.1}%", initial_error * 100.0);
    println!(
        "learned : err {:6.1}% tau {learned_tau:.3}  (surrogate loss {:.3}, table losses {:?}, {:.0?})",
        learned_error * 100.0,
        result.surrogate_report.final_loss(),
        result.table_losses,
        start.elapsed()
    );
    let zero_latency = result
        .learned
        .per_inst
        .iter()
        .filter(|p| p.write_latency == 0)
        .count();
    println!(
        "learned globals: width {} rob {}; opcodes with WriteLatency 0: {}",
        result.learned.dispatch_width, result.learned.reorder_buffer_size, zero_latency
    );
}
