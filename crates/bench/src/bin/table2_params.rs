//! Table II: the parameters learned for llvm-mca.

use difftune::ParamSpec;
use difftune_isa::OpcodeRegistry;
use difftune_sim::{NUM_PORTS, NUM_READ_ADVANCE};

fn main() {
    let registry = OpcodeRegistry::global();
    let spec = ParamSpec::llvm_mca();
    println!("Table II: parameters learned for the llvm-mca-style simulator\n");
    println!(
        "{:<20} {:<22} {:<14} Description",
        "Parameter", "Count", "Constraint"
    );
    println!(
        "{:<20} {:<22} {:<14} micro-ops dispatched per cycle",
        "DispatchWidth", "1 global", "integer, >= 1"
    );
    println!(
        "{:<20} {:<22} {:<14} micro-ops resident in the reorder buffer",
        "ReorderBufferSize", "1 global", "integer, >= 1"
    );
    println!(
        "{:<20} {:<22} {:<14} micro-ops per instruction",
        "NumMicroOps", "1 per-instruction", "integer, >= 1"
    );
    println!(
        "{:<20} {:<22} {:<14} cycles before destinations can be read",
        "WriteLatency", "1 per-instruction", "integer, >= 0"
    );
    println!(
        "{:<20} {:<22} {:<14} cycles subtracted from source latencies",
        "ReadAdvanceCycles",
        format!("{NUM_READ_ADVANCE} per-instruction"),
        "integer, >= 0"
    );
    println!(
        "{:<20} {:<22} {:<14} cycles each execution port is occupied",
        "PortMap",
        format!("{NUM_PORTS} per-instruction"),
        "integer, >= 0"
    );
    println!();
    println!("opcodes in the registry:      {}", registry.len());
    println!(
        "learned scalar parameters:    {}",
        spec.num_learned(registry.len())
    );
    println!("(the paper reports 11265 parameters over its 837-opcode dataset)");
}
