//! Table III: dataset summary statistics.

use difftune_bench::{dataset_for, Scale};
use difftune_cpu::Microarch;

fn main() {
    let scale = Scale::from_env_or_exit();
    println!("Table III: dataset summary statistics (scale: {scale:?})\n");

    let haswell = dataset_for(Microarch::Haswell, scale, 0);
    let summary = haswell.summary();
    let (train, validation, test) = summary.split_sizes;
    println!("# Blocks");
    println!("  Train                {train}");
    println!("  Validation           {validation}");
    println!("  Test                 {test}");
    println!("  Total                {}", haswell.len());
    println!("Block length");
    println!("  Min                  {}", summary.min_block_len);
    println!("  Median               {}", summary.median_block_len);
    println!("  Mean                 {:.2}", summary.mean_block_len);
    println!("  Max                  {}", summary.max_block_len);
    println!("Median block timing (cycles per iteration x 100, as reported by BHive)");
    for uarch in Microarch::ALL {
        let dataset = if uarch == Microarch::Haswell {
            haswell.clone()
        } else {
            dataset_for(uarch, scale, 0)
        };
        println!(
            "  {:<20} {:.0}",
            uarch.name(),
            dataset.summary().median_timing * 100.0
        );
    }
    println!("# Unique opcodes");
    println!("  Train                {}", summary.unique_opcodes_train);
    println!("  Test                 {}", summary.unique_opcodes_test);
    println!("  Total                {}", summary.unique_opcodes);
}
