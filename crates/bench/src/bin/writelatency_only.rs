//! Section VI-B: learning only WriteLatency (all other parameters stay at
//! their expert defaults), compared to learning the full parameter set.

use difftune::ParamSpec;
use difftune_bench::{dataset_for, evaluate_params, mca, pct, run_difftune, Scale};
use difftune_cpu::{default_params, Microarch};

fn main() {
    let scale = Scale::from_env_or_exit();
    let uarch = Microarch::Haswell;
    let simulator = mca();
    let dataset = dataset_for(uarch, scale, 0);
    let test = dataset.test();
    let defaults = default_params(uarch);

    println!("Section VI-B: WriteLatency-only optimization on Haswell (scale: {scale:?})\n");
    let (default_error, default_tau) = evaluate_params(&simulator, &defaults, &test);
    println!(
        "{:<28} error {:<8} tau {:.3}",
        "Default",
        pct(default_error),
        default_tau
    );

    let full = run_difftune(
        &simulator,
        &ParamSpec::llvm_mca(),
        uarch,
        &dataset,
        scale,
        0,
    );
    let (full_error, full_tau) = evaluate_params(&simulator, &full.learned, &test);
    println!(
        "{:<28} error {:<8} tau {:.3}",
        "DiffTune (all parameters)",
        pct(full_error),
        full_tau
    );

    let latency_only = run_difftune(
        &simulator,
        &ParamSpec::write_latency_only(),
        uarch,
        &dataset,
        scale,
        0,
    );
    let (latency_error, latency_tau) = evaluate_params(&simulator, &latency_only.learned, &test);
    println!(
        "{:<28} error {:<8} tau {:.3}",
        "DiffTune (WriteLatency only)",
        pct(latency_error),
        latency_tau
    );
    println!(
        "\n(the paper reports 23.7% for the full set and 16.2% for WriteLatency-only,\n demonstrating that the full-set optimum found is not global)"
    );
}
