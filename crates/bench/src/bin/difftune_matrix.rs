//! `difftune-matrix` — the scenario-matrix sweep runner.
//!
//! Tunes and scores every `Simulator × Microarch × ParamSpec` cell (or a
//! `--cell` selection) at the chosen scale, writing one
//! `MATRIX_<sim>_<uarch>_<spec>.json` per completed cell (schema
//! `difftune-matrix/3`: default, learned, and surrogate scores) plus the
//! trained surrogate as `SURROGATE_<sim>_<uarch>_<spec>.json` and a
//! `MATRIX_summary.json` roll-up. Cells run in parallel (`DIFFTUNE_THREADS`
//! cells at a time; outputs are byte-identical for every thread count), and
//! an interrupted sweep resumes: completed cells are recognized by their
//! on-disk records and unfinished cells restart from their per-stage session
//! checkpoints.
//!
//! ```text
//! difftune-matrix [--scale smoke|small|paper] [--out-dir DIR]
//!                 [--cell SIM:UARCH:SPEC]... [--max-cells N]
//!                 [--stop-after generate|fit|optimize]
//!                 [--max-seconds cell=SECS] [--max-seconds total=SECS]
//!                 [--measure-throughput] [--list]
//! ```
//!
//! `--max-seconds` turns the run into a CI tripwire: `cell=SECS` caps every
//! individual cell's wall time, `total=SECS` caps the whole sweep, and any
//! violation makes the process exit nonzero after the records (which carry no
//! wall-clock data and stay deterministic) have been written.
//! `--measure-throughput` opts in to the machine-dependent
//! `surrogate_blocks_per_second` / `simulator_blocks_per_second` record
//! fields (off by default — with it, records are no longer byte-identical
//! across hosts).

use std::time::Instant;

use difftune::Stage;
use difftune_bench::matrix::{enumerate_cells, run_matrix, CellKey, MatrixOptions};
use difftune_bench::Scale;

struct Args {
    scale: Option<String>,
    out_dir: String,
    cells: Vec<CellKey>,
    max_cells: Option<usize>,
    stop_after: Option<Stage>,
    /// Per-cell wall ceiling from `--max-seconds cell=SECS`.
    cell_ceiling: Option<f64>,
    /// Whole-sweep wall ceiling from `--max-seconds total=SECS`.
    total_ceiling: Option<f64>,
    /// Populate the machine-dependent `*_blocks_per_second` record fields.
    measure_throughput: bool,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-matrix [--scale smoke|small|paper] [--out-dir DIR] \
         [--cell SIM:UARCH:SPEC]... [--max-cells N] \
         [--stop-after generate|fit|optimize] \
         [--max-seconds cell=SECS] [--max-seconds total=SECS] \
         [--measure-throughput] [--list]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: None,
        out_dir: ".".to_string(),
        cells: Vec::new(),
        max_cells: None,
        stop_after: None,
        cell_ceiling: None,
        total_ceiling: None,
        measure_throughput: false,
        list: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--scale" => args.scale = Some(value("--scale")),
            "--out-dir" => args.out_dir = value("--out-dir"),
            "--cell" => {
                let raw = value("--cell");
                match CellKey::parse(&raw) {
                    Ok(key) => args.cells.push(key),
                    Err(error) => {
                        eprintln!("--cell {raw:?}: {error}");
                        usage()
                    }
                }
            }
            "--max-cells" => {
                let raw = value("--max-cells");
                args.max_cells = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--max-cells must be an unsigned integer, got {raw:?}");
                    usage()
                }));
            }
            "--stop-after" => {
                let raw = value("--stop-after");
                args.stop_after = Some(match raw.as_str() {
                    "generate" => Stage::GenerateDataset,
                    "fit" => Stage::FitSurrogate,
                    "optimize" => Stage::OptimizeTable,
                    other => {
                        eprintln!(
                            "--stop-after names unknown stage {other:?} (valid: generate, \
                             fit, optimize)"
                        );
                        usage()
                    }
                });
            }
            "--max-seconds" => {
                let raw = value("--max-seconds");
                let Some((what, seconds)) = raw.split_once('=') else {
                    eprintln!("--max-seconds expects cell=SECS or total=SECS, got {raw:?}");
                    usage()
                };
                let Ok(seconds) = seconds.parse::<f64>() else {
                    eprintln!("--max-seconds expects a numeric value, got {raw:?}");
                    usage()
                };
                match what {
                    "cell" => args.cell_ceiling = Some(seconds),
                    "total" => args.total_ceiling = Some(seconds),
                    other => {
                        eprintln!(
                            "--max-seconds names unknown ceiling {other:?} (valid: cell, total)"
                        );
                        usage()
                    }
                }
            }
            "--measure-throughput" => args.measure_throughput = true,
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    if args.list {
        println!("{:<32} {:>20} status", "cell", "seed");
        for cell in enumerate_cells() {
            println!(
                "{:<32} {:>#20x} {}",
                cell.key.id(),
                cell.key.seed(),
                match &cell.skip {
                    Some(reason) => format!("skipped: {reason}"),
                    None => "runs".to_string(),
                }
            );
        }
        return;
    }

    let scale = match &args.scale {
        Some(raw) => Scale::parse(raw).unwrap_or_else(|error| {
            eprintln!("{error}");
            std::process::exit(2);
        }),
        None => Scale::from_env_or_exit(),
    };
    let threads = difftune::threads_from_env().unwrap_or_else(|error| {
        eprintln!("{error}");
        std::process::exit(2);
    });

    eprintln!(
        "[difftune-matrix] scale {} out-dir {} threads {}",
        scale.name(),
        args.out_dir,
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        },
    );

    let options = MatrixOptions {
        scale,
        threads,
        out_dir: args.out_dir.clone().into(),
        cells: (!args.cells.is_empty()).then_some(args.cells),
        max_cells: args.max_cells,
        stop_after: args.stop_after,
        measure_throughput: args.measure_throughput,
    };

    let sweep_start = Instant::now();
    let outcome = run_matrix(&options).unwrap_or_else(|error| {
        eprintln!("difftune-matrix: sweep failed: {error}");
        std::process::exit(1);
    });
    let total_seconds = sweep_start.elapsed().as_secs_f64();

    println!(
        "{:<32} {:>10} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "cell", "def MAPE", "def tau", "lrn MAPE", "lrn tau", "sur MAPE", "sur tau"
    );
    for record in &outcome.summary.records {
        let sur_mape = record
            .surrogate_mape
            .map_or("-".to_string(), |m| format!("{:.1}%", m * 100.0));
        let sur_tau = record
            .surrogate_tau
            .map_or("-".to_string(), |t| format!("{t:.3}"));
        println!(
            "{:<32} {:>9.1}% {:>8.3} {:>9.1}% {:>8.3} {:>10} {:>8}",
            record.cell,
            record.default_mape * 100.0,
            record.default_tau,
            record.learned_mape * 100.0,
            record.learned_tau,
            sur_mape,
            sur_tau,
        );
    }
    for skipped in &outcome.summary.skipped {
        println!("{:<32} skipped: {}", skipped.cell, skipped.reason);
    }
    println!(
        "{} completed ({} reused), {} skipped, {} checkpointed, {} pending; {:.1}s",
        outcome.summary.cells_completed,
        outcome.reused,
        outcome.summary.cells_skipped,
        outcome.interrupted,
        outcome.pending,
        total_seconds,
    );

    let mut violations = Vec::new();
    if let Some(ceiling) = args.cell_ceiling {
        for timing in &outcome.timings {
            if timing.seconds > ceiling {
                violations.push(format!(
                    "cell {} took {:.2}s, over the {ceiling:.2}s ceiling",
                    timing.cell, timing.seconds
                ));
            }
        }
    }
    if let Some(ceiling) = args.total_ceiling {
        if total_seconds > ceiling {
            violations.push(format!(
                "the sweep took {total_seconds:.2}s, over the {ceiling:.2}s ceiling"
            ));
        }
    }
    for violation in &violations {
        eprintln!("difftune-matrix: PERF CEILING EXCEEDED: {violation}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
