//! Table V: error of llvm-mca with default and learned parameters on Haswell,
//! grouped by BHive application and category.

use difftune::ParamSpec;
use difftune_bench::{dataset_for, mca, pct, run_difftune, Scale};
use difftune_bhive::Dataset;
use difftune_cpu::{default_params, Microarch};
use difftune_sim::Simulator;

fn main() {
    let scale = Scale::from_env_or_exit();
    let simulator = mca();
    let uarch = Microarch::Haswell;
    let dataset = dataset_for(uarch, scale, 0);
    let test = dataset.test();
    let defaults = default_params(uarch);
    let result = run_difftune(
        &simulator,
        &ParamSpec::llvm_mca(),
        uarch,
        &dataset,
        scale,
        0,
    );

    println!("Table V: Haswell error by application and category (scale: {scale:?})\n");
    println!(
        "{:<28} {:>8} {:>14} {:>14}",
        "Block type", "# blocks", "Default error", "Learned error"
    );

    let default_by_app = Dataset::error_by_application(&test, |b| simulator.predict(&defaults, b));
    let learned_by_app =
        Dataset::error_by_application(&test, |b| simulator.predict(&result.learned, b));
    for (app, (count, default_error)) in &default_by_app {
        let learned_error = learned_by_app.get(app).map(|(_, e)| *e).unwrap_or(f64::NAN);
        println!(
            "{:<28} {:>8} {:>14} {:>14}",
            app.name(),
            count,
            pct(*default_error),
            pct(learned_error)
        );
    }
    println!();
    let default_by_cat = Dataset::error_by_category(&test, |b| simulator.predict(&defaults, b));
    let learned_by_cat =
        Dataset::error_by_category(&test, |b| simulator.predict(&result.learned, b));
    for (category, (count, default_error)) in &default_by_cat {
        let learned_error = learned_by_cat
            .get(category)
            .map(|(_, e)| *e)
            .unwrap_or(f64::NAN);
        println!(
            "{:<28} {:>8} {:>14} {:>14}",
            category.name(),
            count,
            pct(*default_error),
            pct(learned_error)
        );
    }
}
