//! `difftune-bench` — the stage-by-stage pipeline performance runner.
//!
//! Runs the DiffTune pipeline at a chosen scale, timing each stage
//! separately, and (with `--json`) emits one `BENCH_<stage>.json` record per
//! stage in the shared `difftune-bench/2` schema:
//!
//! * `generate` — simulated-dataset generation (`Session::generate_dataset`)
//! * `fit`      — surrogate training (`Session::fit_surrogate`)
//! * `optimize` — parameter-table optimization (`Session::optimize_table`)
//! * `simulate` — batch simulation of the test split under the learned table
//!
//! Thread count comes from `DIFFTUNE_THREADS` (unset = all cores). Because
//! training runs on the deterministic batch engine, the learned table is
//! bit-identical for every thread count; `--compare-serial` verifies that by
//! rerunning fit/optimize with one thread, recording the speedup and failing
//! if the tables' fingerprints diverge.
//!
//! `--engine` picks the execution engine for surrogate training (`compiled`
//! records one schedule per graph structure and replays it; `taped` rebuilds
//! a tape per sample). The engines are bit-identical; `--compare-taped`
//! proves it by rerunning the pipeline on the tape at the same thread count,
//! failing if the learned tables' fingerprints diverge, and recording the
//! compiled engine's fit-stage speedup — a ratio that, unlike
//! `--compare-serial`'s, is meaningful on 1-core machines. The speedup is
//! the median over back-to-back (taped, compiled) run pairs: each pair's
//! runs are temporally adjacent so machine-load noise hits both engines
//! alike, and the median over pairs keeps one scheduler hiccup on a shared
//! runner from faking a regression.
//!
//! ```text
//! difftune-bench [--scale smoke|small|paper] [--seed N] [--json]
//!                [--out-dir DIR] [--engine taped|compiled]
//!                [--compare-serial] [--compare-taped]
//!                [--max-seconds STAGE=SECS]... [--min-speedup STAGE=RATIO]...
//!                [--min-taped-speedup STAGE=RATIO]...
//! ```
//!
//! `--max-seconds`, `--min-speedup`, and `--min-taped-speedup` turn the run
//! into a CI tripwire: if any stage's wall time exceeds its ceiling, or a
//! measured speedup falls under its floor, the process exits nonzero after
//! reporting every violation.

use std::time::Instant;

use difftune::{DiffTuneBuilder, ParamSpec, Session};
use difftune_bench::record::{fingerprint_table, BenchRecord};
use difftune_bench::{dataset_for, mca, pairs, Scale};
use difftune_cpu::{default_params, Microarch};
use difftune_sim::{SimParams, Simulator};
use difftune_surrogate::train::Engine;

struct Args {
    scale: Option<String>,
    seed: u64,
    json: bool,
    out_dir: String,
    engine: Engine,
    compare_serial: bool,
    compare_taped: bool,
    /// `(stage, ceiling_seconds)` pairs from `--max-seconds`.
    ceilings: Vec<(String, f64)>,
    /// `(stage, minimum speedup_vs_serial)` pairs from `--min-speedup`
    /// (requires `--compare-serial`).
    min_speedups: Vec<(String, f64)>,
    /// `(stage, minimum speedup_vs_taped)` pairs from `--min-taped-speedup`
    /// (requires `--compare-taped`).
    min_taped_speedups: Vec<(String, f64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-bench [--scale smoke|small|paper] [--seed N] [--json] \
         [--out-dir DIR] [--engine taped|compiled] [--compare-serial] \
         [--compare-taped] [--max-seconds STAGE=SECS]... \
         [--min-speedup STAGE=RATIO]... [--min-taped-speedup STAGE=RATIO]..."
    );
    std::process::exit(2);
}

/// The record-facing name of an engine.
fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Taped => "taped",
        Engine::Compiled => "compiled",
    }
}

/// Parses a repeatable `STAGE=NUMBER` flag operand.
fn parse_stage_number(flag: &str, raw: &str) -> (String, f64) {
    let Some((stage, number)) = raw.split_once('=') else {
        eprintln!("{flag} expects STAGE=NUMBER, got {raw:?}");
        usage()
    };
    let Ok(number) = number.parse::<f64>() else {
        eprintln!("{flag} expects a numeric value, got {raw:?}");
        usage()
    };
    (stage.to_string(), number)
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: None,
        seed: 0,
        json: false,
        out_dir: ".".to_string(),
        engine: Engine::default(),
        compare_serial: false,
        compare_taped: false,
        ceilings: Vec::new(),
        min_speedups: Vec::new(),
        min_taped_speedups: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--scale" => args.scale = Some(value("--scale")),
            "--seed" => {
                let raw = value("--seed");
                args.seed = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--seed must be an unsigned integer, got {raw:?}");
                    usage()
                });
            }
            "--json" => args.json = true,
            "--out-dir" => args.out_dir = value("--out-dir"),
            "--engine" => {
                let raw = value("--engine");
                args.engine = match raw.as_str() {
                    "taped" => Engine::Taped,
                    "compiled" => Engine::Compiled,
                    other => {
                        eprintln!("--engine must be taped or compiled, got {other:?}");
                        usage()
                    }
                };
            }
            "--compare-serial" => args.compare_serial = true,
            "--compare-taped" => args.compare_taped = true,
            "--max-seconds" => {
                let raw = value("--max-seconds");
                args.ceilings
                    .push(parse_stage_number("--max-seconds", &raw));
            }
            "--min-speedup" => {
                let raw = value("--min-speedup");
                args.min_speedups
                    .push(parse_stage_number("--min-speedup", &raw));
            }
            "--min-taped-speedup" => {
                let raw = value("--min-taped-speedup");
                args.min_taped_speedups
                    .push(parse_stage_number("--min-taped-speedup", &raw));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    args
}

/// Wall times and throughput inputs of one full pipeline run.
struct StageTimes {
    generate_seconds: f64,
    generate_samples: usize,
    fit_seconds: f64,
    fit_samples: usize,
    optimize_seconds: f64,
    optimize_samples: usize,
    learned: SimParams,
}

/// Runs dataset generation, surrogate fitting, and table optimization with
/// the given thread count, timing each stage.
fn run_pipeline(
    simulator: &dyn Simulator,
    scale: Scale,
    seed: u64,
    threads: usize,
    engine: Engine,
    train_pairs: &[(difftune_isa::BasicBlock, f64)],
) -> StageTimes {
    let mut config = scale.difftune_config(seed);
    if threads != 0 {
        config.threads = threads;
        config.surrogate_train.threads = threads;
    }
    config.surrogate_train.engine = engine;
    let epochs = config.surrogate_train.epochs;
    let table_epochs = config.table_epochs;
    let defaults = default_params(Microarch::Haswell);
    let mut session: Session<'_> = DiffTuneBuilder::new(config)
        .build(simulator, &ParamSpec::llvm_mca(), &defaults, train_pairs)
        .unwrap_or_else(|error| {
            eprintln!("difftune-bench: invalid pipeline input: {error}");
            std::process::exit(1);
        });

    let fail = |error: difftune::DiffTuneError| -> ! {
        eprintln!("difftune-bench: pipeline stage failed: {error}");
        std::process::exit(1);
    };

    let start = Instant::now();
    let generated = session.generate_dataset().unwrap_or_else(|e| fail(e));
    let generate_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    session.fit_surrogate().unwrap_or_else(|e| fail(e));
    let fit_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    session.optimize_table().unwrap_or_else(|e| fail(e));
    let optimize_seconds = start.elapsed().as_secs_f64();

    let result = session.finish().unwrap_or_else(|e| fail(e));
    StageTimes {
        generate_seconds,
        generate_samples: generated,
        fit_seconds,
        // The fit stage visits every simulated sample once per epoch.
        fit_samples: generated * epochs,
        optimize_seconds,
        optimize_samples: train_pairs.len() * table_epochs,
        learned: result.learned,
    }
}

/// Times batch simulation of the test split under the learned table,
/// repeating until at least ~0.2 s of work has been measured.
fn run_simulate_stage(
    simulator: &dyn Simulator,
    learned: &SimParams,
    blocks: &[difftune_isa::BasicBlock],
) -> (f64, usize) {
    let mut total_blocks = 0usize;
    let start = Instant::now();
    loop {
        let predictions = simulator.predict_batch(learned, blocks);
        assert_eq!(predictions.len(), blocks.len());
        total_blocks += blocks.len();
        if start.elapsed().as_secs_f64() >= 0.2 {
            break;
        }
    }
    (start.elapsed().as_secs_f64(), total_blocks)
}

fn main() {
    let args = parse_args();
    let scale = match &args.scale {
        Some(raw) => Scale::parse(raw).unwrap_or_else(|error| {
            eprintln!("{error}");
            std::process::exit(2);
        }),
        None => Scale::from_env_or_exit(),
    };
    let threads = difftune::threads_from_env().unwrap_or_else(|error| {
        eprintln!("{error}");
        std::process::exit(2);
    });
    // The records report the worker count the stages actually ran with, so
    // resolve the knob's "0 = all cores" before building them.
    let record_threads = if threads == 0 {
        difftune_bench::record::available_cores()
    } else {
        threads
    };
    let seed = args.seed;

    eprintln!(
        "[difftune-bench] scale {} seed {seed} threads {} ({} cores) engine {}",
        scale.name(),
        if threads == 0 {
            "all".to_string()
        } else {
            threads.to_string()
        },
        difftune_bench::record::available_cores(),
        engine_name(args.engine),
    );

    let corpus_start = Instant::now();
    let dataset = dataset_for(Microarch::Haswell, scale, seed);
    let train_pairs = pairs(&dataset.train());
    let test_blocks: Vec<difftune_isa::BasicBlock> =
        dataset.test().iter().map(|r| r.block.clone()).collect();
    eprintln!(
        "[difftune-bench] corpus ready in {:.2}s ({} train blocks, {} test blocks)",
        corpus_start.elapsed().as_secs_f64(),
        train_pairs.len(),
        test_blocks.len(),
    );

    let simulator = mca();
    let times = run_pipeline(&simulator, scale, seed, threads, args.engine, &train_pairs);
    let fingerprint = fingerprint_table(&times.learned);

    let mut generate = BenchRecord::stage(
        "generate",
        scale.name(),
        record_threads,
        seed,
        times.generate_seconds,
        times.generate_samples,
    );
    let mut fit = BenchRecord::stage(
        "fit",
        scale.name(),
        record_threads,
        seed,
        times.fit_seconds,
        times.fit_samples,
    );
    let mut optimize = BenchRecord::stage(
        "optimize",
        scale.name(),
        record_threads,
        seed,
        times.optimize_seconds,
        times.optimize_samples,
    );
    optimize.table_fingerprint = Some(fingerprint.clone());
    // Only the fit stage has an engine choice: generate/optimize/simulate
    // run the same code under either engine.
    fit.engine = Some(engine_name(args.engine).to_string());

    // Determinism violations are reported *after* the records are written:
    // when a check trips in CI, the measurements (and all fingerprints)
    // are exactly what the investigator needs.
    let mut violations = Vec::new();
    if args.compare_serial {
        eprintln!("[difftune-bench] rerunning with 1 thread for the determinism/speedup check");
        let serial = run_pipeline(&simulator, scale, seed, 1, args.engine, &train_pairs);
        let serial_fingerprint = fingerprint_table(&serial.learned);
        if serial_fingerprint == fingerprint {
            eprintln!("[difftune-bench] learned tables bit-identical across thread counts ✓");
        } else {
            violations.push(format!(
                "DETERMINISM VIOLATION: the learned table depends on the thread count \
                 (serial {serial_fingerprint}, parallel {fingerprint})"
            ));
        }
        generate.speedup_vs_serial = Some(serial.generate_seconds / times.generate_seconds);
        fit.speedup_vs_serial = Some(serial.fit_seconds / times.fit_seconds);
        optimize.speedup_vs_serial = Some(serial.optimize_seconds / times.optimize_seconds);
    }
    if args.compare_taped {
        // Wall-clock ratios of a single ~10ms fit run swing ±30% on a busy
        // shared runner, and slow phases last seconds — long enough to
        // swallow several consecutive runs, so neither a single rerun nor a
        // best-of-N over each engine separately is stable. Instead the two
        // engines run back-to-back in pairs (temporally adjacent runs see
        // the same machine load), each pair yields a taped/compiled fit
        // ratio, and the reported speedup is the median over the pairs. The
        // fingerprint check covers every taped run (they are deterministic,
        // so all must match the main run's table).
        const COMPARE_TAPED_PAIRS: usize = 5;
        eprintln!(
            "[difftune-bench] rerunning on the taped engine for the engine-equality/speedup \
             check (median of {COMPARE_TAPED_PAIRS} back-to-back pairs)"
        );
        let mut ratios = Vec::with_capacity(COMPARE_TAPED_PAIRS);
        let mut engines_match = true;
        for _ in 0..COMPARE_TAPED_PAIRS {
            let taped = run_pipeline(
                &simulator,
                scale,
                seed,
                threads,
                Engine::Taped,
                &train_pairs,
            );
            let taped_fingerprint = fingerprint_table(&taped.learned);
            if taped_fingerprint != fingerprint {
                engines_match = false;
                violations.push(format!(
                    "DETERMINISM VIOLATION: the learned table depends on the execution engine \
                     (taped {taped_fingerprint}, {} {fingerprint})",
                    engine_name(args.engine)
                ));
                break;
            }
            let rerun = run_pipeline(&simulator, scale, seed, threads, args.engine, &train_pairs);
            ratios.push(taped.fit_seconds / rerun.fit_seconds);
        }
        if engines_match {
            eprintln!("[difftune-bench] learned tables bit-identical across engines ✓");
            ratios.sort_by(|a, b| a.total_cmp(b));
            fit.speedup_vs_taped = Some(ratios[ratios.len() / 2]);
        }
    }

    let (simulate_seconds, simulated_blocks) =
        run_simulate_stage(&simulator, &times.learned, &test_blocks);
    let simulate = BenchRecord::stage(
        "simulate",
        scale.name(),
        record_threads,
        seed,
        simulate_seconds,
        simulated_blocks,
    );

    let records = [generate, fit, optimize, simulate];
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>10} {:>10} {:>10}",
        "stage", "seconds", "samples", "samples/sec", "engine", "vs-serial", "vs-taped"
    );
    for record in &records {
        let ratio = |value: Option<f64>| {
            value
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "{:<10} {:>10.3} {:>12} {:>14.1} {:>10} {:>10} {:>10}",
            record.stage,
            record.wall_time_seconds,
            record.samples,
            record.samples_per_second,
            record.engine.as_deref().unwrap_or("-"),
            ratio(record.speedup_vs_serial),
            ratio(record.speedup_vs_taped),
        );
    }
    println!("learned table fingerprint: {fingerprint}");

    if args.json {
        if let Err(error) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("difftune-bench: cannot create {}: {error}", args.out_dir);
            std::process::exit(1);
        }
        for record in &records {
            let path = std::path::Path::new(&args.out_dir).join(record.file_name());
            if let Err(error) = std::fs::write(&path, record.to_json()) {
                eprintln!("difftune-bench: cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!("[difftune-bench] wrote {}", path.display());
        }
    }

    for (stage, ceiling) in &args.ceilings {
        match records.iter().find(|r| &r.stage == stage) {
            Some(record) if record.wall_time_seconds > *ceiling => violations.push(format!(
                "stage {stage} took {:.2}s, over the {ceiling:.2}s ceiling",
                record.wall_time_seconds
            )),
            Some(_) => {}
            None => violations.push(format!(
                "--max-seconds names unknown stage {stage:?} (valid: generate, fit, optimize, \
                 simulate)"
            )),
        }
    }
    for (stage, floor) in &args.min_speedups {
        match records.iter().find(|r| &r.stage == stage) {
            Some(record) => match record.speedup_vs_serial {
                Some(speedup) if speedup < *floor => violations.push(format!(
                    "stage {stage} sped up only {speedup:.2}x over serial, under the {floor:.2}x \
                     floor (threads {}, {} cores)",
                    record.threads, record.cpu_cores
                )),
                Some(_) => {}
                None => violations.push(format!(
                    "no speedup was measured for stage {stage} (requires --compare-serial; \
                     only generate/fit/optimize are compared)"
                )),
            },
            None => violations.push(format!(
                "--min-speedup names unknown stage {stage:?} (valid: generate, fit, optimize, \
                 simulate)"
            )),
        }
    }
    for (stage, floor) in &args.min_taped_speedups {
        match records.iter().find(|r| &r.stage == stage) {
            Some(record) => match record.speedup_vs_taped {
                Some(speedup) if speedup < *floor => violations.push(format!(
                    "stage {stage} ran only {speedup:.2}x faster than the taped engine, under \
                     the {floor:.2}x floor (threads {}, {} cores)",
                    record.threads, record.cpu_cores
                )),
                Some(_) => {}
                None => violations.push(format!(
                    "no taped-engine comparison was measured for stage {stage} (requires \
                     --compare-taped; only fit has an engine choice)"
                )),
            },
            None => violations.push(format!(
                "--min-taped-speedup names unknown stage {stage:?} (valid: generate, fit, \
                 optimize, simulate)"
            )),
        }
    }
    for violation in &violations {
        eprintln!("difftune-bench: PERF GATE VIOLATION: {violation}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
