//! Section VI-C case studies: PUSH64r, XOR32rr, and ADD32mr under the default
//! and learned parameters, compared to the measured timing.

use difftune::ParamSpec;
use difftune_bench::{dataset_for, mca, run_difftune, Scale};
use difftune_cpu::{default_params, Machine, MeasurementConfig, Microarch};
use difftune_isa::{BasicBlock, OpcodeRegistry};
use difftune_sim::Simulator;

fn main() {
    let scale = Scale::from_env_or_exit();
    let uarch = Microarch::Haswell;
    let simulator = mca();
    let machine = Machine::with_measurement(
        uarch,
        MeasurementConfig {
            iterations: 100,
            apply_noise: false,
        },
    );
    let dataset = dataset_for(uarch, scale, 0);
    let defaults = default_params(uarch);
    // The paper's case studies use the WriteLatency-only experiment to keep the
    // learned tables interpretable; we do the same.
    let result = run_difftune(
        &simulator,
        &ParamSpec::write_latency_only(),
        uarch,
        &dataset,
        scale,
        0,
    );

    let registry = OpcodeRegistry::global();
    println!("Section VI-C case studies (Haswell, scale: {scale:?})\n");

    let cases = [
        (
            "PUSH64r",
            "pushq %rbx\ntestl %r8d, %r8d",
            "push forms a dependency chain with itself through %rsp",
        ),
        (
            "XOR32rr",
            "xorl %r13d, %r13d",
            "a zero idiom the simulator cannot express",
        ),
        (
            "ADD32mr",
            "addl %eax, 16(%rsp)",
            "a memory RMW chain the simulator cannot express",
        ),
    ];

    for (opcode_name, text, note) in cases {
        let block: BasicBlock = text.parse().expect("case-study block parses");
        let opcode = registry
            .by_name(opcode_name)
            .expect("case-study opcode exists");
        let measured = machine.measure_exact(&block);
        let default_prediction = simulator.predict(&defaults, &block);
        let learned_prediction = simulator.predict(&result.learned, &block);
        println!("{opcode_name}: {note}");
        println!("  block:                {}", text.replace('\n', " ; "));
        println!("  measured timing:      {measured:.2}");
        println!(
            "  default prediction:   {default_prediction:.2}   (WriteLatency {})",
            defaults.inst(opcode).write_latency
        );
        println!(
            "  learned prediction:   {learned_prediction:.2}   (WriteLatency {})",
            result.learned.inst(opcode).write_latency
        );
        println!();
    }
}
