//! Table VI: default and learned global parameters on Haswell.

use difftune::ParamSpec;
use difftune_bench::{dataset_for, mca, run_difftune, Scale};
use difftune_cpu::{default_params, Microarch};

fn main() {
    let scale = Scale::from_env_or_exit();
    let uarch = Microarch::Haswell;
    let simulator = mca();
    let dataset = dataset_for(uarch, scale, 0);
    let defaults = default_params(uarch);
    let result = run_difftune(
        &simulator,
        &ParamSpec::llvm_mca(),
        uarch,
        &dataset,
        scale,
        0,
    );

    println!("Table VI: default and learned global parameters (Haswell, scale: {scale:?})\n");
    println!(
        "{:<12} {:<16} ReorderBufferSize",
        "Parameters", "DispatchWidth"
    );
    println!(
        "{:<12} {:<16} {}",
        "Default", defaults.dispatch_width, defaults.reorder_buffer_size
    );
    println!(
        "{:<12} {:<16} {}",
        "Learned", result.learned.dispatch_width, result.learned.reorder_buffer_size
    );
}
