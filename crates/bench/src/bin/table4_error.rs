//! Table IV: error of llvm-mca with the default and learned parameters,
//! compared against the Ithemal, IACA-style, and OpenTuner baselines, on all
//! four microarchitectures.

use difftune::ParamSpec;
use difftune_bench::{
    analytical_baseline, dataset_for, evaluate_params, ithemal_baseline, mca, opentuner_baseline,
    pct, row, run_difftune, Scale,
};
use difftune_cpu::{default_params, Microarch};

fn main() {
    let scale = Scale::from_env_or_exit();
    let simulator = mca();
    println!("Table IV: test error and Kendall's tau per predictor (scale: {scale:?})\n");
    println!(
        "{:<12} {:<12} {:<10} Tau",
        "Architecture", "Predictor", "Error"
    );

    for uarch in Microarch::ALL {
        let dataset = dataset_for(uarch, scale, 0);
        let test = dataset.test();

        let defaults = default_params(uarch);
        let (default_error, default_tau) = evaluate_params(&simulator, &defaults, &test);
        row(uarch.name(), "Default", default_error, default_tau);

        let result = run_difftune(
            &simulator,
            &ParamSpec::llvm_mca(),
            uarch,
            &dataset,
            scale,
            0,
        );
        let (learned_error, learned_tau) = evaluate_params(&simulator, &result.learned, &test);
        row(uarch.name(), "DiffTune", learned_error, learned_tau);

        let (ithemal_error, ithemal_tau) = ithemal_baseline(&dataset, scale, 0);
        row(uarch.name(), "Ithemal", ithemal_error, ithemal_tau);

        match analytical_baseline(uarch, &dataset) {
            Some((error, tau)) => row(uarch.name(), "IACA-like", error, tau),
            None => println!("{:<12} {:<12} {:<10} N/A", uarch.name(), "IACA-like", "N/A"),
        }

        let (_, opentuner_error, opentuner_tau) =
            opentuner_baseline(&simulator, uarch, &dataset, scale, 0);
        row(uarch.name(), "OpenTuner", opentuner_error, opentuner_tau);

        eprintln!(
            "[{}] default {} -> difftune {} (surrogate loss {:.3}, {} learned params)",
            uarch.name(),
            pct(default_error),
            pct(learned_error),
            result.surrogate_report.final_loss(),
            result.num_learned_parameters,
        );
        println!();
    }
}
