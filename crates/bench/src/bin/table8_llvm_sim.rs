//! Table VIII (Appendix A): error of the llvm_sim-style micro-op simulator
//! with default and learned parameters on Haswell.

use difftune::ParamSpec;
use difftune_bench::{
    dataset_for, evaluate_params, ithemal_baseline, opentuner_baseline, row, run_difftune, Scale,
};
use difftune_cpu::{default_params, Microarch};
use difftune_sim::UopSimulator;

fn main() {
    let scale = Scale::from_env_or_exit();
    let uarch = Microarch::Haswell;
    let simulator = UopSimulator::default();
    let dataset = dataset_for(uarch, scale, 0);
    let test = dataset.test();

    println!("Table VIII: llvm_sim-style simulator on Haswell (scale: {scale:?})\n");
    println!(
        "{:<12} {:<12} {:<10} Tau",
        "Architecture", "Predictor", "Error"
    );

    let defaults = default_params(uarch);
    let (default_error, default_tau) = evaluate_params(&simulator, &defaults, &test);
    row(uarch.name(), "Default", default_error, default_tau);

    let result = run_difftune(
        &simulator,
        &ParamSpec::llvm_sim(),
        uarch,
        &dataset,
        scale,
        0,
    );
    let (learned_error, learned_tau) = evaluate_params(&simulator, &result.learned, &test);
    row(uarch.name(), "DiffTune", learned_error, learned_tau);

    let (ithemal_error, ithemal_tau) = ithemal_baseline(&dataset, scale, 0);
    row(uarch.name(), "Ithemal", ithemal_error, ithemal_tau);

    let (_, opentuner_error, opentuner_tau) =
        opentuner_baseline(&simulator, uarch, &dataset, scale, 0);
    row(uarch.name(), "OpenTuner", opentuner_error, opentuner_tau);
}
