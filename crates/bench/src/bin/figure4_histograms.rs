//! Figure 4: distributions of default and learned per-instruction parameter
//! values on Haswell.

use difftune::ParamSpec;
use difftune_bench::{dataset_for, mca, run_difftune, Scale};
use difftune_cpu::{default_params, Microarch};
use difftune_sim::SimParams;

/// Prints a text histogram of values clamped into buckets `0..=max_bucket`.
fn histogram(name: &str, default_values: &[u32], learned_values: &[u32], max_bucket: u32) {
    println!("{name} distribution (count per value, values above {max_bucket} clamped)");
    println!("{:<8} {:>10} {:>10}", "value", "default", "learned");
    for bucket in 0..=max_bucket {
        let count = |values: &[u32]| {
            values
                .iter()
                .filter(|&&v| v.min(max_bucket) == bucket)
                .count()
        };
        println!(
            "{bucket:<8} {:>10} {:>10}",
            count(default_values),
            count(learned_values)
        );
    }
    println!();
}

fn collect(params: &SimParams) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut uops = Vec::new();
    let mut latency = Vec::new();
    let mut read_advance = Vec::new();
    let mut port_map = Vec::new();
    for entry in &params.per_inst {
        uops.push(entry.num_micro_ops);
        latency.push(entry.write_latency);
        read_advance.extend_from_slice(&entry.read_advance_cycles);
        port_map.extend_from_slice(&entry.port_map);
    }
    (uops, latency, read_advance, port_map)
}

fn main() {
    let scale = Scale::from_env_or_exit();
    let uarch = Microarch::Haswell;
    let simulator = mca();
    let dataset = dataset_for(uarch, scale, 0);
    let defaults = default_params(uarch);
    let result = run_difftune(
        &simulator,
        &ParamSpec::llvm_mca(),
        uarch,
        &dataset,
        scale,
        0,
    );

    println!("Figure 4: default vs learned parameter distributions (Haswell, scale: {scale:?})\n");
    let (default_uops, default_latency, default_advance, default_ports) = collect(&defaults);
    let (learned_uops, learned_latency, learned_advance, learned_ports) = collect(&result.learned);
    histogram("NumMicroOps", &default_uops, &learned_uops, 10);
    histogram("WriteLatency", &default_latency, &learned_latency, 10);
    histogram("ReadAdvanceCycles", &default_advance, &learned_advance, 10);
    histogram("PortMap entries", &default_ports, &learned_ports, 10);

    let zero_latency_default = default_latency.iter().filter(|&&v| v == 0).count();
    let zero_latency_learned = learned_latency.iter().filter(|&&v| v == 0).count();
    println!(
        "opcodes with WriteLatency 0: default {zero_latency_default}, learned {zero_latency_learned} (the paper reports 1 vs 251)"
    );
}
