//! The scenario-matrix runner: tune and score every
//! `Simulator × Microarch × ParamSpec` cell.
//!
//! The paper's headline results are a *matrix*, not a single run: DiffTune is
//! evaluated per target microarchitecture (Tables IV–VI) and per simulator
//! (llvm-mca and llvm_sim, Appendix A). This module drives that cross
//! product:
//!
//! * [`enumerate_cells`] lists every cell over
//!   `{mca, uop} × Microarch::ALL × {llvm_mca, write_latency_only, llvm_sim}`,
//!   marking incompatible simulator/spec pairs with a recorded skip reason
//!   instead of silently dropping them;
//! * [`run_cell`] tunes one cell through the staged
//!   [`Session`](difftune::Session) pipeline and scores the learned table
//!   against the expert defaults on the held-out corpus, with per-category
//!   breakdowns ([`MatrixRecord`]);
//! * [`run_matrix`] sweeps the selected cells in parallel on
//!   `std::thread::scope` and writes one `MATRIX_<sim>_<uarch>_<spec>.json`
//!   per completed cell plus a `MATRIX_summary.json` roll-up
//!   ([`MatrixSummary`]).
//!
//! # Determinism
//!
//! Every cell derives its run seed from a stable FNV-1a hash of its
//! `(simulator, uarch, spec)` key ([`CellKey::seed`]) — never from
//! enumeration order, scheduling, or thread ids — and cells train on the
//! deterministic batch engine, so a cell's JSON is a pure function of its key
//! and the scale. Re-running a sweep with any `DIFFTUNE_THREADS` value, on
//! any machine, produces byte-identical cell files (the records carry no
//! wall-clock or machine fields); `tests/matrix.rs` asserts this bit for
//! bit.
//!
//! # Resume
//!
//! The sweep is resumable at two granularities. A completed cell's JSON is
//! written as soon as the cell finishes, and a later sweep over the same
//! output directory recognizes it (matching schema, cell, scale, and seed)
//! and does not re-run the cell. Within a cell, a
//! [`RunCheckpoint`] is saved after every pipeline
//! stage, so a killed sweep resumes mid-cell and — because checkpoint resume
//! is bit-identical — the finished sweep's summary is byte-identical to an
//! uninterrupted run's.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use difftune::{DiffTuneBuilder, RunCheckpoint, Stage};
use difftune_bhive::{metrics, Category, CorpusConfig, Dataset};
use difftune_cpu::{default_params, Microarch};
use difftune_surrogate::{SurrogateArtifact, SurrogateForward};

use crate::record::{
    fingerprint_table, matrix_cell_file_name, CategoryScore, MatrixRecord, MatrixSummary,
    SkippedCell, MATRIX_SCHEMA, MATRIX_SUMMARY_FILE,
};
use crate::{pairs, Scale};

pub use difftune::{SimulatorKind, SpecKind};

/// The short microarchitecture name used in cell keys and file names
/// (an alias for [`Microarch::key`], kept for existing callers).
pub fn uarch_key(uarch: Microarch) -> &'static str {
    uarch.key()
}

/// One cell of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// The simulator family under tuning.
    pub simulator: SimulatorKind,
    /// The target microarchitecture providing the ground truth.
    pub uarch: Microarch,
    /// Which parameters are learned.
    pub spec: SpecKind,
}

impl CellKey {
    /// The canonical cell id, `<simulator>:<uarch>:<spec>`.
    pub fn id(&self) -> String {
        format!(
            "{}:{}:{}",
            self.simulator.key(),
            uarch_key(self.uarch),
            self.spec.key()
        )
    }

    /// The cell's run seed: an order-sensitive FNV-1a hash of [`CellKey::id`].
    ///
    /// Deriving the seed from the key — never from enumeration order or the
    /// thread that happens to run the cell — keeps every cell's result a pure
    /// function of the cell itself: filtering with `--cell`, reordering the
    /// sweep, or changing `DIFFTUNE_THREADS` cannot change any cell's output.
    pub fn seed(&self) -> u64 {
        crate::record::fnv1a(self.id().bytes())
    }

    /// The cell's record file name (`MATRIX_<sim>_<uarch>_<spec>.json`).
    pub fn file_name(&self) -> String {
        matrix_cell_file_name(self.simulator.key(), uarch_key(self.uarch), self.spec.key())
    }

    /// The cell's mid-run checkpoint file name.
    pub fn checkpoint_file_name(&self) -> String {
        format!(
            "MATRIX_ckpt_{}_{}_{}.json",
            self.simulator.key(),
            uarch_key(self.uarch),
            self.spec.key()
        )
    }

    /// Parses a `SIM:UARCH:SPEC` cell id (as accepted by `--cell`).
    pub fn parse(raw: &str) -> Result<CellKey, String> {
        let parts: Vec<&str> = raw.split(':').collect();
        let [sim, uarch, spec] = parts.as_slice() else {
            return Err(format!(
                "cell {raw:?} must have the form SIM:UARCH:SPEC (e.g. mca:haswell:llvm_mca)"
            ));
        };
        Ok(CellKey {
            simulator: SimulatorKind::parse(sim)?,
            uarch: uarch
                .parse::<Microarch>()
                .map_err(|e| format!("{e} (valid: ivybridge, haswell, skylake, zen2)"))?,
            spec: SpecKind::parse(spec)?,
        })
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

/// One enumerated cell: the key plus, for incompatible simulator/spec pairs,
/// the reason the matrix will not run it.
#[derive(Debug, Clone)]
pub struct EnumeratedCell {
    /// The cell.
    pub key: CellKey,
    /// `Some(reason)` when the cell is skipped as incompatible.
    pub skip: Option<String>,
}

/// Why a simulator/spec pair is incompatible, or `None` when the cell runs.
///
/// A spec is incompatible with a simulator when it learns parameters the
/// simulator never reads: the simulated dataset would carry inputs with no
/// effect on the output, so most of the learned table would be noise fit to
/// the surrogate rather than to the simulator.
pub fn skip_reason(simulator: SimulatorKind, spec: SpecKind) -> Option<String> {
    match (simulator, spec) {
        (SimulatorKind::Uop, SpecKind::LlvmMca) => Some(
            "llvm_sim reads only WriteLatency and PortMap, so the llvm_mca spec would learn \
             DispatchWidth, ReorderBufferSize, NumMicroOps, and ReadAdvanceCycles parameters \
             the simulator never consumes"
                .to_string(),
        ),
        _ => None,
    }
}

/// Enumerates every cell of the matrix in stable
/// `(simulator, uarch, spec)` order, with skip reasons for incompatible
/// pairs.
pub fn enumerate_cells() -> Vec<EnumeratedCell> {
    let mut cells = Vec::new();
    for simulator in SimulatorKind::ALL {
        for uarch in Microarch::ALL {
            for spec in SpecKind::ALL {
                cells.push(EnumeratedCell {
                    key: CellKey {
                        simulator,
                        uarch,
                        spec,
                    },
                    skip: skip_reason(simulator, spec),
                });
            }
        }
    }
    cells
}

/// Builds the measured dataset a cell is tuned and scored against: a
/// per-microarchitecture *distinct* corpus
/// ([`Dataset::build_distinct`] — different blocks, not just different
/// timings) at the scale's corpus size. Cells sharing a microarchitecture
/// share this dataset.
pub fn dataset_for_cell(uarch: Microarch, scale: Scale) -> Dataset {
    Dataset::build_distinct(
        uarch,
        &CorpusConfig {
            num_blocks: scale.corpus_blocks(),
            seed: 0,
            ..CorpusConfig::default()
        },
    )
}

/// The simulated-dataset size a cell's generate stage produces — computable
/// without running the stage, so resumed cells report it too.
fn expected_simulated(scale: Scale, seed: u64, train_blocks: usize) -> usize {
    let config = scale.difftune_config(seed);
    ((train_blocks as f64 * config.simulated_multiplier) as usize).clamp(1, config.max_simulated)
}

/// The outcome of [`run_cell`].
#[derive(Debug)]
pub enum CellRun {
    /// The cell finished; its record was written to the output directory.
    /// (Boxed: a record is two orders of magnitude larger than a [`Stage`].)
    Completed(Box<MatrixRecord>),
    /// The cell stopped at a stage checkpoint (`stop_after`); the contained
    /// stage is the one a resumed run will execute next.
    Checkpointed(Stage),
}

/// Tunes and scores one cell.
///
/// The session runs at the cell's stable seed with single-threaded training
/// (sweep-level parallelism comes from [`run_matrix`] running whole cells
/// concurrently; the result is bit-identical either way). After every stage a
/// [`RunCheckpoint`] is written to the output directory, and an existing
/// checkpoint is resumed from — so a killed sweep re-runs only the stages a
/// cell had not finished. On completion the cell's `MATRIX_*.json` is
/// written, the checkpoint is removed, and the record is returned.
///
/// `stop_after` stops the cell at its checkpoint once the named stage has
/// run (used to budget long sweeps stage by stage, and by the resume tests).
///
/// # Errors
///
/// Returns a message for pipeline failures and output-directory I/O errors.
pub fn run_cell(
    key: &CellKey,
    scale: Scale,
    dataset: &Dataset,
    out_dir: &Path,
    stop_after: Option<Stage>,
) -> Result<CellRun, String> {
    run_cell_with(key, scale, dataset, out_dir, stop_after, false)
}

/// [`run_cell`] with opt-in wall-clock throughput measurement.
///
/// With `measure_throughput` the record's `surrogate_blocks_per_second` /
/// `simulator_blocks_per_second` fields are populated from timed held-out
/// prediction passes; without it they stay `None` and the record remains
/// fully machine-independent (the byte-identity tests never pass it).
pub fn run_cell_with(
    key: &CellKey,
    scale: Scale,
    dataset: &Dataset,
    out_dir: &Path,
    stop_after: Option<Stage>,
    measure_throughput: bool,
) -> Result<CellRun, String> {
    let seed = key.seed();
    let mut config = scale.difftune_config(seed);
    config.threads = 1;
    config.surrogate_train.threads = 1;
    let surrogate_kind = config.surrogate;

    let simulator = key.simulator.build();
    let spec = key.spec.spec();
    let defaults = default_params(key.uarch);
    let train_pairs = pairs(&dataset.train());
    let builder = DiffTuneBuilder::new(config);

    let checkpoint_path = out_dir.join(key.checkpoint_file_name());
    let mut session = match load_checkpoint(&checkpoint_path) {
        Some(checkpoint) => builder
            .resume(&*simulator, &spec, &defaults, &train_pairs, &checkpoint)
            .or_else(|resume_error| {
                // A checkpoint from a different scale/seed/corpus does not fit
                // this cell: start over rather than fail the sweep.
                eprintln!("[difftune-matrix] {key}: stale checkpoint ignored ({resume_error})");
                builder.build(&*simulator, &spec, &defaults, &train_pairs)
            }),
        None => builder.build(&*simulator, &spec, &defaults, &train_pairs),
    }
    .map_err(|error| format!("cell {key}: session rejected its input: {error}"))?;

    while session.stage() != Stage::Finished {
        let ran = session
            .advance()
            .map_err(|error| format!("cell {key}: stage failed: {error}"))?;
        let checkpoint = session
            .checkpoint()
            .to_json()
            .map_err(|error| format!("cell {key}: checkpoint failed: {error}"))?;
        std::fs::write(&checkpoint_path, checkpoint).map_err(|error| {
            format!(
                "cell {key}: cannot write {}: {error}",
                checkpoint_path.display()
            )
        })?;
        if stop_after == Some(ran) {
            return Ok(CellRun::Checkpointed(session.stage()));
        }
    }

    let train_blocks = session.train_blocks();
    let result = session
        .finish()
        .map_err(|error| format!("cell {key}: finish failed: {error}"))?;

    // Score learned vs. default on the held-out blocks (validation + test),
    // overall and per hardware-resource category.
    let heldout = dataset.heldout();
    let blocks: Vec<difftune_isa::BasicBlock> = heldout.iter().map(|r| r.block.clone()).collect();
    let default_predictions = simulator.predict_batch(&defaults, &blocks);
    let sim_started = Instant::now();
    let learned_predictions = simulator.predict_batch(&result.learned, &blocks);
    let sim_elapsed = sim_started.elapsed();
    let (default_mape, default_tau) = Dataset::evaluate_predictions(&heldout, &default_predictions);
    let (learned_mape, learned_tau) = Dataset::evaluate_predictions(&heldout, &learned_predictions);
    let by_default = Dataset::evaluate_predictions_by_category(&heldout, &default_predictions);
    let by_learned = Dataset::evaluate_predictions_by_category(&heldout, &learned_predictions);
    let by_category = Category::ALL
        .iter()
        .filter_map(|category| {
            let (blocks, default_mape, default_tau) = by_default.get(category)?;
            let (_, learned_mape, learned_tau) = by_learned.get(category)?;
            Some(CategoryScore {
                category: category.name().to_string(),
                blocks: *blocks,
                default_mape: *default_mape,
                default_tau: *default_tau,
                learned_mape: *learned_mape,
                learned_tau: *learned_tau,
            })
        })
        .collect();

    // Export the trained surrogate alongside the table and score the
    // artifact's own round trip: predictions come from a
    // [`SurrogateForward`] loaded back from the exact bytes written to
    // disk, so the recorded surrogate column is provably what
    // `difftune-serve` will answer with.
    let artifact = SurrogateArtifact::new(
        &key.id(),
        surrogate_kind.into(),
        result.surrogate.as_ref(),
        &result.learned,
    );
    let artifact_path = out_dir.join(artifact.file_name());
    std::fs::write(&artifact_path, artifact.to_json()).map_err(|error| {
        format!(
            "cell {key}: cannot write {}: {error}",
            artifact_path.display()
        )
    })?;
    let mut forward = SurrogateForward::from_artifact(&artifact)
        .map_err(|error| format!("cell {key}: exported surrogate does not load: {error}"))?;
    // Warm the compiled-program cache off the clock, then time a pure
    // replay pass — the steady-state throughput a server would see.
    if measure_throughput {
        forward.predict_batch(&blocks);
    }
    let surrogate_started = Instant::now();
    let surrogate_predictions = forward.predict_batch(&blocks);
    let surrogate_elapsed = surrogate_started.elapsed();
    let (surrogate_mape, surrogate_tau) =
        Dataset::evaluate_predictions(&heldout, &surrogate_predictions);
    let surrogate_vs_sim_mape = metrics::mape(&surrogate_predictions, &learned_predictions);
    let surrogate_vs_sim_tau = metrics::kendall_tau(&surrogate_predictions, &learned_predictions);
    let blocks_per_second = |elapsed: std::time::Duration| {
        let seconds = elapsed.as_secs_f64();
        (measure_throughput && seconds > 0.0).then(|| blocks.len() as f64 / seconds)
    };

    let record = MatrixRecord {
        schema: MATRIX_SCHEMA.to_string(),
        cell: key.id(),
        simulator: key.simulator.key().to_string(),
        uarch: uarch_key(key.uarch).to_string(),
        spec: key.spec.key().to_string(),
        scale: scale.name().to_string(),
        seed,
        train_blocks,
        heldout_blocks: heldout.len(),
        simulated_samples: expected_simulated(scale, seed, train_blocks),
        num_learned_parameters: result.num_learned_parameters,
        default_mape,
        default_tau,
        learned_mape,
        learned_tau,
        surrogate_mape: Some(surrogate_mape),
        surrogate_tau: Some(surrogate_tau),
        surrogate_vs_sim_mape: Some(surrogate_vs_sim_mape),
        surrogate_vs_sim_tau: Some(surrogate_vs_sim_tau),
        surrogate_fingerprint: Some(artifact.fingerprint.clone()),
        surrogate_blocks_per_second: blocks_per_second(surrogate_elapsed),
        simulator_blocks_per_second: blocks_per_second(sim_elapsed),
        by_category,
        table_fingerprint: fingerprint_table(&result.learned),
        learned_table: result.learned.to_flat(),
    };

    let record_path = out_dir.join(record.file_name());
    std::fs::write(&record_path, record.to_json()).map_err(|error| {
        format!(
            "cell {key}: cannot write {}: {error}",
            record_path.display()
        )
    })?;
    // The cell is durably complete; its mid-run checkpoint is now dead weight.
    let _ = std::fs::remove_file(&checkpoint_path);
    Ok(CellRun::Completed(Box::new(record)))
}

/// Reads a cell checkpoint if one exists and parses.
fn load_checkpoint(path: &Path) -> Option<RunCheckpoint> {
    let json = std::fs::read_to_string(path).ok()?;
    RunCheckpoint::from_json(&json).ok()
}

/// Reads a previously completed cell record if it exists and still matches
/// the cell (schema, id, scale, and seed) — the sweep-level resume check.
fn load_existing_record(key: &CellKey, scale: Scale, out_dir: &Path) -> Option<MatrixRecord> {
    let json = std::fs::read_to_string(out_dir.join(key.file_name())).ok()?;
    let record = MatrixRecord::from_json(&json).ok()?;
    let matches = record.schema == MATRIX_SCHEMA
        && record.cell == key.id()
        && record.scale == scale.name()
        && record.seed == key.seed();
    matches.then_some(record)
}

/// Configuration of a [`run_matrix`] sweep.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// The scale every cell runs at.
    pub scale: Scale,
    /// Number of cells run concurrently (`0` = all available cores); the
    /// binary wires `DIFFTUNE_THREADS` here. Cell outputs are identical for
    /// every value.
    pub threads: usize,
    /// Directory receiving `MATRIX_*.json` files (created if missing).
    pub out_dir: PathBuf,
    /// Restrict the sweep to these cells (`None` = the full matrix).
    pub cells: Option<Vec<CellKey>>,
    /// Run at most this many not-yet-completed cells, then stop (resume
    /// later); `None` = no limit.
    pub max_cells: Option<usize>,
    /// Stop every newly run cell at its checkpoint once this stage has run.
    pub stop_after: Option<Stage>,
    /// Populate the wall-clock `*_blocks_per_second` record fields from
    /// timed held-out passes (machine-dependent; off by default so records
    /// stay byte-identical across hosts — see [`run_cell_with`]).
    pub measure_throughput: bool,
}

impl MatrixOptions {
    /// Options for a full sweep at a scale into a directory.
    pub fn new(scale: Scale, out_dir: impl Into<PathBuf>) -> Self {
        MatrixOptions {
            scale,
            threads: 0,
            out_dir: out_dir.into(),
            cells: None,
            max_cells: None,
            stop_after: None,
            measure_throughput: false,
        }
    }
}

/// Wall time of one newly executed cell (reporting only — never serialized
/// into the deterministic records).
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// The cell id.
    pub cell: String,
    /// Wall-clock seconds the cell took in this process.
    pub seconds: f64,
}

/// The outcome of a [`run_matrix`] sweep.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// The roll-up written to `MATRIX_summary.json`.
    pub summary: MatrixSummary,
    /// Cells whose records were reused from a previous sweep over the same
    /// directory.
    pub reused: usize,
    /// Cells left at a mid-run checkpoint (`stop_after`).
    pub interrupted: usize,
    /// Runnable cells not attempted because of `max_cells`.
    pub pending: usize,
    /// Per-cell wall times of the cells executed by this call, in cell
    /// enumeration order.
    pub timings: Vec<CellTiming>,
}

/// Runs a sweep: enumerates (and optionally filters) the matrix, reuses
/// completed cell records found in the output directory, executes the
/// remaining cells in parallel on `std::thread::scope`, and writes the
/// [`MatrixSummary`] roll-up.
///
/// # Errors
///
/// Returns a message when the output directory cannot be created or any cell
/// fails; completed cells keep their on-disk records either way, so a fixed
/// rerun resumes instead of starting over.
pub fn run_matrix(options: &MatrixOptions) -> Result<MatrixOutcome, String> {
    std::fs::create_dir_all(&options.out_dir)
        .map_err(|error| format!("cannot create {}: {error}", options.out_dir.display()))?;

    let selected: Vec<EnumeratedCell> = enumerate_cells()
        .into_iter()
        .filter(|cell| match &options.cells {
            Some(filter) => filter.contains(&cell.key),
            None => true,
        })
        .collect();
    let skipped: Vec<SkippedCell> = selected
        .iter()
        .filter_map(|cell| {
            cell.skip.as_ref().map(|reason| SkippedCell {
                cell: cell.key.id(),
                reason: reason.clone(),
            })
        })
        .collect();
    let runnable: Vec<CellKey> = selected
        .iter()
        .filter(|cell| cell.skip.is_none())
        .map(|cell| cell.key)
        .collect();

    // Sweep-level resume: completed records found on disk are kept as-is.
    let mut records: Vec<MatrixRecord> = Vec::new();
    let mut to_run: Vec<CellKey> = Vec::new();
    for key in &runnable {
        match load_existing_record(key, options.scale, &options.out_dir) {
            Some(record) => records.push(record),
            None => to_run.push(*key),
        }
    }
    let reused = records.len();
    let budget = options.max_cells.unwrap_or(to_run.len()).min(to_run.len());
    let pending = to_run.len() - budget;
    let to_run = &to_run[..budget];

    // One measured dataset per microarchitecture, shared by that
    // microarchitecture's cells.
    let mut datasets: BTreeMap<Microarch, Dataset> = BTreeMap::new();
    for key in to_run {
        datasets
            .entry(key.uarch)
            .or_insert_with(|| dataset_for_cell(key.uarch, options.scale));
    }

    let workers = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    }
    .min(to_run.len())
    .max(1);

    // Work-stealing over the cell list: workers pull the next unclaimed index.
    // Scheduling affects only wall time — each cell's output is a pure
    // function of its key.
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, Result<CellRun, String>, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let datasets = &datasets;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(key) = to_run.get(index) else {
                            break;
                        };
                        eprintln!("[difftune-matrix] cell {key} starting");
                        let started = Instant::now();
                        let run = run_cell_with(
                            key,
                            options.scale,
                            &datasets[&key.uarch],
                            &options.out_dir,
                            options.stop_after,
                            options.measure_throughput,
                        );
                        local.push((index, run, started.elapsed().as_secs_f64()));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("matrix worker panicked"))
            .collect()
    });
    results.sort_by_key(|(index, _, _)| *index);

    let mut interrupted = 0usize;
    let mut timings = Vec::new();
    let mut errors = Vec::new();
    for (index, run, seconds) in results {
        let key = &to_run[index];
        timings.push(CellTiming {
            cell: key.id(),
            seconds,
        });
        match run {
            Ok(CellRun::Completed(record)) => records.push(*record),
            Ok(CellRun::Checkpointed(stage)) => {
                eprintln!("[difftune-matrix] cell {key} checkpointed before {stage:?}");
                interrupted += 1;
            }
            Err(error) => errors.push(error),
        }
    }
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }

    records.sort_by(|a, b| a.cell.cmp(&b.cell));
    // The roll-up omits the learned tables: every completed cell's own
    // MATRIX_*.json (already on disk at this point) carries its table, and
    // duplicating all of them would roughly double the sweep's artifact
    // size.
    for record in &mut records {
        record.learned_table.clear();
    }
    let summary = MatrixSummary {
        schema: MATRIX_SCHEMA.to_string(),
        scale: options.scale.name().to_string(),
        cells_total: selected.len(),
        cells_completed: records.len(),
        cells_skipped: skipped.len(),
        skipped,
        records,
    };
    let summary_path = options.out_dir.join(MATRIX_SUMMARY_FILE);
    std::fs::write(&summary_path, summary.to_json())
        .map_err(|error| format!("cannot write {}: {error}", summary_path.display()))?;

    Ok(MatrixOutcome {
        summary,
        reused,
        interrupted,
        pending,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_covers_the_full_cross_product_with_recorded_skips() {
        let cells = enumerate_cells();
        assert_eq!(
            cells.len(),
            SimulatorKind::ALL.len() * Microarch::ALL.len() * SpecKind::ALL.len()
        );
        let skipped: Vec<&EnumeratedCell> = cells.iter().filter(|c| c.skip.is_some()).collect();
        // Exactly the uop × llvm_mca pairs are incompatible, one per uarch.
        assert_eq!(skipped.len(), Microarch::ALL.len());
        for cell in &skipped {
            assert_eq!(cell.key.simulator, SimulatorKind::Uop);
            assert_eq!(cell.key.spec, SpecKind::LlvmMca);
            assert!(cell.skip.as_ref().unwrap().contains("WriteLatency"));
        }
        // Cell ids are unique.
        let ids: std::collections::HashSet<String> = cells.iter().map(|c| c.key.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn cell_seeds_are_stable_hashes_of_the_key_alone() {
        let cells = enumerate_cells();
        let mut seeds = std::collections::HashSet::new();
        for cell in &cells {
            assert_eq!(cell.key.seed(), cell.key.seed(), "seed must be stable");
            assert!(
                seeds.insert(cell.key.seed()),
                "cell {} seed collides",
                cell.key
            );
        }
        // Pin one seed to the FNV-1a of its id so accidental changes to the
        // derivation (which would invalidate every committed artifact) fail
        // loudly.
        let key = CellKey::parse("mca:haswell:llvm_mca").unwrap();
        let mut expected: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in "mca:haswell:llvm_mca".bytes() {
            expected ^= u64::from(byte);
            expected = expected.wrapping_mul(0x0100_0000_01b3);
        }
        assert_eq!(key.seed(), expected);
    }

    #[test]
    fn cell_keys_parse_and_round_trip() {
        let key = CellKey::parse("mca:haswell:llvm_mca").unwrap();
        assert_eq!(key.simulator, SimulatorKind::Mca);
        assert_eq!(key.uarch, Microarch::Haswell);
        assert_eq!(key.spec, SpecKind::LlvmMca);
        assert_eq!(CellKey::parse(&key.id()).unwrap(), key);
        assert_eq!(key.file_name(), "MATRIX_mca_haswell_llvm_mca.json");

        // Aliases and case-insensitivity.
        let aliased = CellKey::parse("llvm-mca:IVB:write-latency-only").unwrap();
        assert_eq!(aliased.simulator, SimulatorKind::Mca);
        assert_eq!(aliased.uarch, Microarch::IvyBridge);
        assert_eq!(aliased.spec, SpecKind::WriteLatencyOnly);

        // Errors name the valid values.
        assert!(CellKey::parse("mca:haswell").is_err());
        assert!(CellKey::parse("qemu:haswell:llvm_mca")
            .unwrap_err()
            .contains("mca"));
        assert!(CellKey::parse("mca:pentium:llvm_mca")
            .unwrap_err()
            .contains("haswell"));
        assert!(CellKey::parse("mca:haswell:everything")
            .unwrap_err()
            .contains("llvm_sim"));
    }

    #[test]
    fn expected_simulated_matches_the_generate_stage_formula() {
        // Smoke scale: multiplier 3, cap 2000.
        assert_eq!(expected_simulated(Scale::Smoke, 0, 480), 1440);
        assert_eq!(expected_simulated(Scale::Smoke, 0, 10_000), 2_000);
        assert_eq!(expected_simulated(Scale::Smoke, 0, 0), 1);
    }
}
