//! Shared infrastructure for the benchmark harness.
//!
//! Every paper table and figure has a binary in `src/bin/` that reproduces it;
//! this library holds the pieces they share: the scale configuration (smoke /
//! small / paper, selected with the `DIFFTUNE_SCALE` environment variable),
//! dataset construction, the standard DiffTune configuration per scale, and
//! the baseline runners (Ithemal, the IACA-style analytical model, and the
//! OpenTuner-style black-box tuner with evaluation-budget parity).

pub mod matrix;
pub mod record;

use difftune::{DiffTuneBuilder, DiffTuneConfig, DiffTuneResult, ParamSpec, SurrogateKind};
use difftune_bhive::{CorpusConfig, Dataset, Record};
use difftune_cpu::{default_params, AnalyticalModel, Microarch};
use difftune_opentuner::{BanditTuner, SearchSpace, TunerConfig};
use difftune_sim::{McaSimulator, ParamBounds, SimParams, Simulator};
use difftune_surrogate::train::{train, TrainConfig, TrainSample};
use difftune_surrogate::{IthemalConfig, IthemalModel, Vocab};

/// An unrecognized `DIFFTUNE_SCALE` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScale {
    /// The value the environment supplied.
    pub given: String,
}

impl std::fmt::Display for UnknownScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown DIFFTUNE_SCALE {:?}: valid scales are \"smoke\", \"small\", and \"paper\"",
            self.given
        )
    }
}

impl std::error::Error for UnknownScale {}

/// The evaluation scale, selected by the `DIFFTUNE_SCALE` environment variable
/// (`smoke`, `small` — the default, or `paper`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A seconds-long scale for CI-style smoke runs.
    Smoke,
    /// The default laptop scale used for the numbers in EXPERIMENTS.md.
    Small,
    /// A larger scale approaching the paper's dataset sizes (hours).
    Paper,
}

impl Scale {
    /// Parses a scale name. Empty means [`Scale::Small`]; anything else must
    /// name a valid scale — a typo such as `papper` is reported instead of
    /// silently running at the default scale.
    pub fn parse(raw: &str) -> Result<Scale, UnknownScale> {
        match raw.to_ascii_lowercase().as_str() {
            "" => Ok(Scale::Small),
            "smoke" => Ok(Scale::Smoke),
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            _ => Err(UnknownScale {
                given: raw.to_string(),
            }),
        }
    }

    /// Reads the scale from the `DIFFTUNE_SCALE` environment variable via
    /// [`Scale::parse`] (unset means [`Scale::Small`]).
    pub fn from_env() -> Result<Scale, UnknownScale> {
        Scale::parse(&std::env::var("DIFFTUNE_SCALE").unwrap_or_default())
    }

    /// The scale's lowercase name, as accepted by [`Scale::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// [`Scale::from_env`] for the table/figure binaries: prints the error and
    /// exits with a nonzero status on an unrecognized value.
    pub fn from_env_or_exit() -> Scale {
        Scale::from_env().unwrap_or_else(|error| {
            eprintln!("{error}");
            std::process::exit(2);
        })
    }

    /// Number of corpus blocks generated per microarchitecture.
    pub fn corpus_blocks(self) -> usize {
        match self {
            Scale::Smoke => 600,
            Scale::Small => 4_000,
            Scale::Paper => 60_000,
        }
    }

    /// The simulated-dataset cap used for surrogate training.
    pub fn max_simulated(self) -> usize {
        match self {
            Scale::Smoke => 2_000,
            Scale::Small => 16_000,
            Scale::Paper => 600_000,
        }
    }

    /// The DiffTune configuration for this scale.
    pub fn difftune_config(self, seed: u64) -> DiffTuneConfig {
        let surrogate = match self {
            // The smoke scale uses the fast feature-MLP surrogate; the other
            // scales use the paper's LSTM surrogate (reduced width at the small
            // scale, see EXPERIMENTS.md).
            Scale::Smoke => SurrogateKind::Mlp(difftune_surrogate::FeatureMlpConfig {
                hidden_dim: 32,
                seed,
                ..Default::default()
            }),
            Scale::Small => SurrogateKind::Lstm(IthemalConfig {
                embed_dim: 32,
                hidden_dim: 64,
                instr_layers: 1,
                block_layers: 1,
                parameter_inputs: true,
                seed,
            }),
            Scale::Paper => SurrogateKind::Lstm(IthemalConfig {
                embed_dim: 64,
                hidden_dim: 128,
                instr_layers: 1,
                block_layers: 4,
                parameter_inputs: true,
                seed,
            }),
        };
        DiffTuneConfig {
            surrogate,
            simulated_multiplier: match self {
                Scale::Smoke => 3.0,
                Scale::Small => 5.0,
                Scale::Paper => 10.0,
            },
            max_simulated: self.max_simulated(),
            surrogate_train: TrainConfig {
                epochs: match self {
                    Scale::Smoke => 3,
                    Scale::Small => 5,
                    Scale::Paper => 6,
                },
                // The paper trains the surrogate with batch 256; the smaller
                // library default exists for laptop-scale datasets.
                batch_size: if self == Scale::Paper { 256 } else { 32 },
                ..TrainConfig::default()
            },
            table_learning_rate: 0.05,
            table_epochs: if self == Scale::Paper { 1 } else { 5 },
            table_batch_size: if self == Scale::Paper { 256 } else { 32 },
            clamp_to_sampling: true,
            seed,
            threads: 0,
        }
    }
}

/// Builds the measured dataset for a microarchitecture at a scale.
pub fn dataset_for(uarch: Microarch, scale: Scale, seed: u64) -> Dataset {
    let config = CorpusConfig {
        num_blocks: scale.corpus_blocks(),
        seed,
        ..CorpusConfig::default()
    };
    Dataset::build(uarch, &config)
}

/// `(block, timing)` pairs for a split, as consumed by
/// [`DiffTuneBuilder::build`].
pub fn pairs(records: &[&Record]) -> Vec<(difftune_isa::BasicBlock, f64)> {
    records
        .iter()
        .map(|r| (r.block.clone(), r.timing))
        .collect()
}

/// Evaluates a parameter table under a simulator on a set of records,
/// returning `(error, kendall_tau)`. The predictions are computed in one
/// [`Simulator::predict_batch`] call (parallel across cores) rather than a
/// per-block loop.
pub fn evaluate_params(
    simulator: &dyn Simulator,
    params: &SimParams,
    records: &[&Record],
) -> (f64, f64) {
    let blocks: Vec<difftune_isa::BasicBlock> = records.iter().map(|r| r.block.clone()).collect();
    let predictions = simulator.predict_batch(params, &blocks);
    Dataset::evaluate_predictions(records, &predictions)
}

/// Runs DiffTune for a microarchitecture at a scale through the session API,
/// printing stage transitions and losses to stderr so long runs show
/// progress.
pub fn run_difftune(
    simulator: &dyn Simulator,
    spec: &ParamSpec,
    uarch: Microarch,
    dataset: &Dataset,
    scale: Scale,
    seed: u64,
) -> DiffTuneResult {
    let mut config = scale.difftune_config(seed);
    apply_env_threads_or_exit(&mut config);
    let train_pairs = pairs(&dataset.train());
    let mut session = DiffTuneBuilder::new(config)
        .build(simulator, spec, &default_params(uarch), &train_pairs)
        .unwrap_or_else(|error| panic!("DiffTune session rejected its input: {error}"));
    session.add_observer(Box::new(|event: &difftune::ProgressEvent| {
        use difftune::ProgressEvent;
        match event {
            ProgressEvent::StageStarted { stage } => eprintln!("[difftune] stage {stage:?}"),
            ProgressEvent::SurrogateEpoch {
                epoch,
                epochs,
                mean_loss,
            } => eprintln!(
                "[difftune] surrogate epoch {}/{epochs}: loss {mean_loss:.4}",
                epoch + 1
            ),
            ProgressEvent::TableEpoch {
                epoch,
                epochs,
                mean_loss,
            } => eprintln!(
                "[difftune] table epoch {}/{epochs}: loss {mean_loss:.4}",
                epoch + 1
            ),
            _ => {}
        }
    }));
    session
        .run_to_completion()
        .unwrap_or_else(|error| panic!("DiffTune run failed: {error}"))
}

/// Applies the `DIFFTUNE_THREADS` knob to a configuration, printing the typed
/// error and exiting with a nonzero status on an invalid value — the binary
/// entry points' counterpart of [`difftune::apply_env_threads`], mirroring
/// [`Scale::from_env_or_exit`].
pub fn apply_env_threads_or_exit(config: &mut DiffTuneConfig) {
    if let Err(error) = difftune::apply_env_threads(config) {
        eprintln!("{error}");
        std::process::exit(2);
    }
}

/// Trains the Ithemal baseline (the surrogate architecture without parameter
/// inputs) directly on the measured training set and returns its test error
/// and Kendall's tau.
pub fn ithemal_baseline(dataset: &Dataset, scale: Scale, seed: u64) -> (f64, f64) {
    let vocab = Vocab::new();
    let make_samples = |records: &[&Record]| -> Vec<TrainSample> {
        records
            .iter()
            .filter(|r| !r.block.is_empty())
            .map(|r| TrainSample {
                block: vocab.tokenize_block(&r.block),
                per_inst_features: None,
                global_features: None,
                target: r.timing,
            })
            .collect()
    };
    let train_samples = make_samples(&dataset.train());
    let config = match scale {
        Scale::Smoke => IthemalConfig {
            embed_dim: 12,
            hidden_dim: 24,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: false,
            seed,
        },
        Scale::Small => IthemalConfig {
            embed_dim: 16,
            hidden_dim: 32,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: false,
            seed,
        },
        Scale::Paper => IthemalConfig {
            embed_dim: 64,
            hidden_dim: 128,
            instr_layers: 1,
            block_layers: 4,
            parameter_inputs: false,
            seed,
        },
    };
    let mut model = IthemalModel::new(config);
    let train_config = TrainConfig {
        epochs: match scale {
            Scale::Smoke => 2,
            Scale::Small => 6,
            Scale::Paper => 10,
        },
        batch_size: if scale == Scale::Paper { 256 } else { 32 },
        ..TrainConfig::default()
    };
    train(&mut model, &train_samples, &train_config).expect("baseline hyperparameters are valid");

    let test = dataset.test();
    Dataset::evaluate(&test, |block| {
        let tokenized = vocab.tokenize_block(block);
        model.predict(&tokenized, None, None)
    })
}

/// The IACA-style analytical baseline's test error and Kendall's tau, or
/// `None` for microarchitectures it does not support (Zen 2).
pub fn analytical_baseline(uarch: Microarch, dataset: &Dataset) -> Option<(f64, f64)> {
    let model = AnalyticalModel::new(uarch)?;
    Some(Dataset::evaluate(&dataset.test(), |block| {
        model.predict(block)
    }))
}

/// Runs the OpenTuner-style black-box baseline with evaluation-budget parity:
/// the tuner may evaluate as many basic blocks end-to-end as DiffTune does
/// (simulated dataset plus its passes over the training set), grouped into
/// objective evaluations over a fixed subsample of training blocks.
pub fn opentuner_baseline(
    simulator: &dyn Simulator,
    uarch: Microarch,
    dataset: &Dataset,
    scale: Scale,
    seed: u64,
) -> (SimParams, f64, f64) {
    let train = dataset.train();
    let subsample: Vec<&Record> = train.iter().take(100).copied().collect();
    let difftune_block_budget =
        scale.max_simulated() + train.len() * scale.difftune_config(seed).table_epochs;
    let evaluations = (difftune_block_budget / subsample.len().max(1)).clamp(20, 5_000);

    // Search space: the paper constrains per-instruction parameters to 0–5,
    // DispatchWidth to 1–10 and ReorderBufferSize to 50–250.
    let defaults = default_params(uarch);
    let flat_len = defaults.to_flat().len();
    let mut lower = vec![0.0; flat_len];
    let mut upper = vec![5.0; flat_len];
    lower[0] = 1.0;
    upper[0] = 10.0;
    lower[1] = 50.0;
    upper[1] = 250.0;
    let space = SearchSpace::new(lower, upper);

    let mut tuner = BanditTuner::new(
        space,
        TunerConfig {
            seed,
            ..TunerConfig::default()
        },
    );
    let bounds = ParamBounds::default();
    let subsample_blocks: Vec<difftune_isa::BasicBlock> =
        subsample.iter().map(|r| r.block.clone()).collect();
    let result = tuner.optimize(
        |flat| {
            let params = SimParams::from_flat(flat, &bounds);
            let predictions = simulator.predict_batch(&params, &subsample_blocks);
            Dataset::evaluate_predictions(&subsample, &predictions).0
        },
        evaluations,
    );
    let params = SimParams::from_flat(&result.best, &bounds);
    let (error, tau) = evaluate_params(simulator, &params, &dataset.test());
    (params, error, tau)
}

/// Formats a percentage for table output.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a standard table row.
pub fn row(architecture: &str, predictor: &str, error: f64, tau: f64) {
    println!(
        "{architecture:<12} {predictor:<12} {:<10} {tau:.3}",
        pct(error)
    );
}

/// A default llvm-mca-style simulator instance shared by the binaries.
pub fn mca() -> McaSimulator {
    McaSimulator::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_accepts_valid_scales_and_rejects_typos() {
        // One test touches the env var sequentially, so parallel tests never
        // observe a transient value.
        assert_eq!(Scale::from_env(), Ok(Scale::Small), "unset means small");
        std::env::set_var("DIFFTUNE_SCALE", "SMOKE");
        assert_eq!(Scale::from_env(), Ok(Scale::Smoke), "case-insensitive");
        std::env::set_var("DIFFTUNE_SCALE", "papper");
        let error = Scale::from_env().unwrap_err();
        assert_eq!(error.given, "papper");
        let message = error.to_string();
        for valid in ["smoke", "small", "paper"] {
            assert!(message.contains(valid), "{message:?} must list {valid:?}");
        }
        std::env::remove_var("DIFFTUNE_SCALE");

        assert!(Scale::Smoke.corpus_blocks() < Scale::Small.corpus_blocks());
        assert!(Scale::Small.corpus_blocks() < Scale::Paper.corpus_blocks());
    }

    #[test]
    fn smoke_scale_pipeline_helpers_work_end_to_end() {
        let scale = Scale::Smoke;
        let dataset = dataset_for(Microarch::Haswell, scale, 1);
        let sim = mca();
        let defaults = default_params(Microarch::Haswell);
        let (default_error, default_tau) = evaluate_params(&sim, &defaults, &dataset.test());
        assert!(default_error > 0.0 && default_error < 2.0);
        assert!(default_tau > 0.3);
        let analytical = analytical_baseline(Microarch::Haswell, &dataset);
        assert!(analytical.is_some());
        assert!(
            analytical_baseline(Microarch::Zen2, &dataset_for(Microarch::Zen2, scale, 1)).is_none()
        );
    }
}
