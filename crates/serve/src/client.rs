//! A minimal blocking HTTP/1.1 client for the loadtest binary and the test
//! suites — just enough protocol to drive `difftune-serve` over a keep-alive
//! connection (request writing, `Content-Length` framed response reading).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    /// True when the server announced it will close the connection after
    /// this response (`Connection: close`) — a pooling client must retire
    /// the connection instead of reusing it.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|value| value.eq_ignore_ascii_case("close"))
    }
}

/// A keep-alive connection to the server.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects once.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Retries [`HttpClient::connect`] until the server accepts or the wait
    /// budget runs out — the standard way to wait for a server that was just
    /// spawned.
    ///
    /// # Errors
    ///
    /// The last connection error once the budget is exhausted.
    pub fn connect_with_retry(addr: &str, wait: Duration) -> std::io::Result<Self> {
        let deadline = Instant::now() + wait;
        loop {
            match HttpClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(error) if Instant::now() >= deadline => return Err(error),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Bounds every read on this connection (`None` = block forever). A
    /// proxy must not hang on a dead upstream longer than its failover
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends an arbitrary request with a raw byte body and reads the
    /// response. This is the proxy path: the body is forwarded verbatim —
    /// even invalid UTF-8 — so the upstream's answer (including its error
    /// bodies) is byte-identical to what a direct client would get.
    ///
    /// # Errors
    ///
    /// I/O and protocol-framing errors.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: difftune-serve\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Sends a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// I/O and protocol-framing errors.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        let head = format!("GET {path} HTTP/1.1\r\nHost: difftune-serve\r\n\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Sends a `POST` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// I/O and protocol-framing errors.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: difftune-serve\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Writes raw request bytes (for pipelining tests) and reads `count`
    /// responses back.
    ///
    /// # Errors
    ///
    /// I/O and protocol-framing errors.
    pub fn send_raw(&mut self, raw: &[u8], count: usize) -> std::io::Result<Vec<ClientResponse>> {
        self.stream.write_all(raw)?;
        self.stream.flush()?;
        (0..count).map(|_| self.read_response()).collect()
    }

    /// Reads one `Content-Length` framed response off the stream.
    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |message: String| std::io::Error::new(std::io::ErrorKind::InvalidData, message);

        // Read until the head terminator.
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("connection closed mid-response".to_string())),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };

        let head = String::from_utf8(self.buf[..head_end].to_vec())
            .map_err(|_| bad("response head is not UTF-8".to_string()))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_string()))
            .collect();
        let body_len: usize = headers
            .iter()
            .find(|(name, _)| name == "content-length")
            .and_then(|(_, value)| value.parse().ok())
            .ok_or_else(|| bad("response has no Content-Length".to_string()))?;

        let total = head_end + 4 + body_len;
        while self.buf.len() < total {
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("connection closed mid-body".to_string())),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
