//! # difftune-serve
//!
//! A sharded, caching HTTP prediction service over learned DiffTune
//! parameter tables.
//!
//! The tuning pipeline ends in artifacts — expert defaults, session
//! [`RunCheckpoint`](difftune::RunCheckpoint)s, and `MATRIX_*.json` scenario
//! cells. This crate puts those artifacts behind a socket: a hand-rolled
//! HTTP/1.1 server (`std::net::TcpListener` and threads; every external
//! dependency in this workspace is a vendored shim, so there is no async
//! runtime to import) that answers basic-block timing predictions from any
//! loaded backend.
//!
//! * [`http`] — incremental request parser (partial reads, pipelining, size
//!   limits) and response writer;
//! * [`backend`] — the table registry: `default` / `checkpoint` / `matrix`
//!   / `surrogate` sources, fingerprint-verified loading, per-request
//!   resolution;
//! * [`policy`] — the derived three-tier `policy:` backends (per-shard LRU
//!   → surrogate → full simulator, gated by `--error-budget`), the default
//!   answer for sourceless requests;
//! * [`cache`] — the fingerprint-keyed LRU prediction cache;
//! * [`server`] — accept loop, connection threads, the shard-per-worker
//!   predict pool batching through [`Simulator::predict_batch`], and the ops
//!   endpoints (`POST /reload` hot table swap, `POST /drain` graceful exit);
//! * [`metrics`] — request/cache/latency counters behind `GET /metrics`;
//! * [`client`] — the minimal blocking client used by `difftune-loadtest`
//!   and the test suites.
//!
//! Two binaries ship with the crate: `difftune-serve` (the server) and
//! `difftune-loadtest` (a closed-loop generator that measures throughput
//! into `BENCH_serve.json`, schema `difftune-bench/2`).
//!
//! [`Simulator::predict_batch`]: difftune_sim::Simulator::predict_batch
//!
//! # Determinism
//!
//! `/predict` response bodies are bit-identical across shard counts, cache
//! states, and request batching: simulators are pure functions, cache hits
//! return the exact value a miss would recompute, and floats serialize in
//! Rust's shortest-exact form — the serving extension of the determinism
//! contract the training engine established (see `docs/ARCHITECTURE.md`).
//! Policy backends extend the same contract (invariant #8): the tier a
//! block is answered from is a pure function of the block, the budget, and
//! the cell's frozen metadata, so responses stay byte-identical across
//! shard counts, cache states, and tier configurations given the same
//! budget.
//!
//! # Example
//!
//! ```no_run
//! use difftune_serve::backend::BackendRegistry;
//! use difftune_serve::client::HttpClient;
//! use difftune_serve::server::{spawn, ServeConfig};
//!
//! let mut registry = BackendRegistry::with_defaults();
//! registry.add_matrix_dir(std::path::Path::new("matrix-out"))?;
//! let handle = spawn(ServeConfig::default(), registry)?;
//!
//! let mut client = HttpClient::connect(&handle.addr().to_string())?;
//! let response = client.post_json(
//!     "/predict",
//!     r#"{"block": "addq %rax, %rbx", "sim": "mca", "uarch": "haswell"}"#,
//! )?;
//! println!("{}", response.body_text());
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod policy;
pub mod server;

pub use backend::{Backend, BackendQuery, BackendRegistry, Predictor, ReloadSpec, Source};
pub use cache::LruCache;
pub use client::{ClientResponse, HttpClient};
pub use http::{HttpError, HttpLimits, Request, RequestBuffer, Response};
pub use metrics::{Endpoint, Metrics};
pub use policy::{PolicyPredictor, TIER_PLAIN, TIER_SIMULATOR, TIER_SURROGATE};
pub use server::{parse_backend_query, spawn, ServeConfig, ServerHandle};
