//! A hand-rolled HTTP/1.1 layer over raw byte streams.
//!
//! The build environment vendors every dependency as a minimal shim, so there
//! is no hyper/tokio to lean on: this module implements exactly the protocol
//! surface the prediction service needs — an incremental request parser
//! ([`RequestBuffer`]) that survives partial reads and pipelined requests,
//! and a [`Response`] writer. Anything malformed or oversized becomes a typed
//! [`HttpError`] carrying the 4xx/5xx status to answer with; the parser never
//! panics on hostile input (`tests` below feed it truncations, garbage, and
//! oversized payloads). Protocol rejections use a fixed status vocabulary:
//! `400` (malformed request line, header, or Content-Length), `411` (POST or
//! PUT without a Content-Length), `413` (declared body over the limit),
//! `431` (head over the limit), `501` (transfer-encoding), and `505`
//! (unsupported protocol version).
//!
//! Deliberately out of scope (see ROADMAP "Open items"): chunked
//! transfer-encoding (answered with `501`), HTTP/2, and TLS.

/// Default cap on the request head (request line + headers).
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body.
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Size limits applied while parsing requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers before `431` is returned.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` before `413` is returned.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path and query, exactly as sent).
    pub path: String,
    /// Headers in arrival order, with lowercased names and trimmed values.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    /// True when the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|value| value.eq_ignore_ascii_case("close"))
    }
}

/// A protocol-level error: the status code to answer with plus a message for
/// the JSON error body. The connection closes after the error is written
/// (framing can no longer be trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The HTTP status code (4xx or 5xx).
    pub status: u16,
    /// Human-readable description, returned in the error body.
    pub message: String,
}

impl HttpError {
    /// A `400 Bad Request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason(self.status),
            self.message
        )
    }
}

impl std::error::Error for HttpError {}

/// The standard reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An incremental request parser: bytes go in via [`RequestBuffer::push`] in
/// whatever fragments the socket delivers, complete requests come out via
/// [`RequestBuffer::next_request`]. Bytes beyond the first request stay
/// buffered, so pipelined requests parse one by one.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        RequestBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to parse one complete request off the front of the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(request))`
    /// when a full request was consumed (remaining bytes stay buffered for
    /// the next call), and `Err` when the stream violates the protocol or a
    /// limit — the caller should answer with [`Response::from_error`] and
    /// close.
    pub fn next_request(&mut self, limits: &HttpLimits) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > limits.max_head_bytes {
                return Err(HttpError {
                    status: 431,
                    message: format!(
                        "request head exceeds {} bytes without terminating",
                        limits.max_head_bytes
                    ),
                });
            }
            return Ok(None);
        };
        if head_end > limits.max_head_bytes {
            return Err(HttpError {
                status: 431,
                message: format!("request head exceeds {} bytes", limits.max_head_bytes),
            });
        }

        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::bad_request("request head is not valid UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (Some(method), Some(path), Some(version), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::bad_request(format!(
                "malformed request line {request_line:?}"
            )));
        };
        if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::bad_request(format!(
                "malformed method {method:?}"
            )));
        }
        if path.is_empty() || !path.starts_with('/') {
            return Err(HttpError::bad_request(format!(
                "request target {path:?} must be an absolute path"
            )));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError {
                status: 505,
                message: format!("unsupported protocol version {version:?}"),
            });
        }

        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::bad_request(format!(
                    "malformed header line {line:?}"
                )));
            };
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::bad_request(format!(
                    "malformed header name {name:?}"
                )));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        if headers.iter().any(|(name, _)| name == "transfer-encoding") {
            return Err(HttpError {
                status: 501,
                message: "transfer-encoding is not supported; send Content-Length".to_string(),
            });
        }

        let content_lengths: Vec<&str> = headers
            .iter()
            .filter(|(name, _)| name == "content-length")
            .map(|(_, value)| value.as_str())
            .collect();
        let body_len = match content_lengths.as_slice() {
            [] => {
                // Methods that carry a payload must frame it: without a
                // Content-Length the parser cannot tell where the body ends,
                // so a bare POST/PUT is `411` rather than "empty body".
                if method == "POST" || method == "PUT" {
                    return Err(HttpError {
                        status: 411,
                        message: format!("{method} requests must declare a Content-Length"),
                    });
                }
                0usize
            }
            [single] => single.parse::<usize>().map_err(|_| {
                HttpError::bad_request(format!("invalid Content-Length {single:?}"))
            })?,
            _ => return Err(HttpError::bad_request("conflicting Content-Length headers")),
        };
        if body_len > limits.max_body_bytes {
            return Err(HttpError {
                status: 413,
                message: format!(
                    "request body of {body_len} bytes exceeds the {}-byte limit",
                    limits.max_body_bytes
                ),
            });
        }

        let total = head_end + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None); // body still in flight
        }

        let body = self.buf[head_end + 4..total].to_vec();
        let request = Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        };
        self.buf.drain(..total);
        Ok(Some(request))
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
    /// Whether the server will close the connection after this response
    /// (`Connection: close` is advertised accordingly).
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// The JSON error response for a protocol or application error. Protocol
    /// errors (passed from [`RequestBuffer::next_request`]) additionally close
    /// the connection, because request framing can no longer be trusted.
    pub fn from_error(error: &HttpError, close: bool) -> Self {
        let body = serde_json::to_string(&serde::Value::Map(vec![(
            "error".to_string(),
            serde::Value::Str(error.message.clone()),
        )]))
        .expect("an error body always serializes");
        Response {
            close,
            ..Response::json(error.status, body)
        }
    }

    /// Serializes status line, headers, and body to the writer.
    pub fn write_to(&self, writer: &mut impl std::io::Write) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut buffer = RequestBuffer::new();
        buffer.push(raw);
        buffer.next_request(&HttpLimits::default())
    }

    #[test]
    fn a_simple_get_parses() {
        let request = parse_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .expect("complete request");
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert!(request.body.is_empty());
        assert!(!request.wants_close());
    }

    #[test]
    fn a_post_with_body_parses_and_respects_content_length() {
        let request = parse_one(b"POST /predict HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .expect("complete request");
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"{\"a\":1}");
    }

    #[test]
    fn partial_reads_accumulate_until_the_request_completes() {
        // One byte at a time: the parser must return Ok(None) at every prefix
        // and produce the request exactly once the final byte lands.
        let raw: &[u8] = b"POST /predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut buffer = RequestBuffer::new();
        let limits = HttpLimits::default();
        for (i, byte) in raw.iter().enumerate() {
            buffer.push(std::slice::from_ref(byte));
            let parsed = buffer.next_request(&limits).expect("prefixes never error");
            if i + 1 < raw.len() {
                assert!(parsed.is_none(), "premature parse at byte {i}");
            } else {
                let request = parsed.expect("final byte completes the request");
                assert_eq!(request.body, b"ok");
                assert!(buffer.is_empty());
            }
        }
    }

    #[test]
    fn pipelined_requests_parse_one_by_one() {
        let mut buffer = RequestBuffer::new();
        buffer.push(b"GET /healthz HTTP/1.1\r\n\r\nPOST /predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n");
        let limits = HttpLimits::default();
        let first = buffer.next_request(&limits).unwrap().expect("first");
        assert_eq!(first.path, "/healthz");
        let second = buffer.next_request(&limits).unwrap().expect("second");
        assert_eq!(
            (second.path.as_str(), second.body.as_slice()),
            ("/predict", b"hi".as_slice())
        );
        let third = buffer.next_request(&limits).unwrap().expect("third");
        assert_eq!(third.path, "/metrics");
        assert_eq!(buffer.next_request(&limits).unwrap(), None);
    }

    #[test]
    fn malformed_input_becomes_4xx_not_a_panic() {
        for (raw, status) in [
            (b"garbage\r\n\r\n".as_slice(), 400), // no method/path/version
            (b"GET /x HTTP/1.1 extra\r\n\r\n".as_slice(), 400), // 4-part request line
            (b"get /x HTTP/1.1\r\n\r\n".as_slice(), 400), // lowercase method
            (b"GET x HTTP/1.1\r\n\r\n".as_slice(), 400), // relative target
            (b"GET /x HTTP/2\r\n\r\n".as_slice(), 505), // unsupported version
            (b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".as_slice(), 400), // malformed header
            (
                b"POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n".as_slice(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n".as_slice(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
                501,
            ),
            (b"POST /x HTTP/1.1\r\n\r\n".as_slice(), 411), // payload method, no framing
            (b"PUT /x HTTP/1.1\r\n\r\n".as_slice(), 411),
            (b"GET /\xff\xfe HTTP/1.1\r\n\r\n".as_slice(), 400), // non-UTF-8 head
        ] {
            let error = parse_one(raw).expect_err("malformed input must error");
            assert_eq!(error.status, status, "input {raw:?}");
        }
    }

    #[test]
    fn oversized_bodies_and_heads_are_rejected() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };

        // Declared body over the limit: rejected from the header alone,
        // before any body bytes arrive.
        let mut buffer = RequestBuffer::new();
        buffer.push(b"POST /predict HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        assert_eq!(buffer.next_request(&limits).unwrap_err().status, 413);

        // Head that never terminates: rejected once it exceeds the cap, so a
        // slow-loris stream cannot grow the buffer forever.
        let mut buffer = RequestBuffer::new();
        buffer.push(b"GET /x HTTP/1.1\r\n");
        for _ in 0..8 {
            buffer.push(b"X-Padding: aaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(buffer.next_request(&limits).unwrap_err().status, 431);

        // A complete head that is simply too large is also rejected.
        let mut buffer = RequestBuffer::new();
        buffer.push(b"GET /x HTTP/1.1\r\nX-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n");
        assert_eq!(buffer.next_request(&limits).unwrap_err().status, 431);
    }

    #[test]
    fn connection_close_is_honored_and_responses_serialize() {
        let request = parse_one(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .expect("complete request");
        assert!(request.wants_close());

        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::from_error(&HttpError::bad_request("nope"), true)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"nope\"}"));
    }

    // Fuzz-style property tests: the parser is a pure function of the byte
    // stream regardless of how reads fragment it, and hostile preambles only
    // ever map to the documented status vocabulary (module docs above).
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 96,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// A valid POST with an arbitrary binary body parses to the same
        /// request no matter how the bytes are split across reads: every
        /// proper prefix yields `Ok(None)`, the final chunk yields exactly
        /// the one-shot parse, and nothing stays buffered.
        #[test]
        fn byte_splits_never_change_the_parse(
            seed in 0u64..1_000_000,
            body_len in 0usize..64,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let body: Vec<u8> = (0..body_len).map(|_| rng.gen_range(0u8..=255)).collect();
            let mut raw = format!(
                "POST /predict HTTP/1.1\r\nHost: fleet\r\nContent-Length: {body_len}\r\n\r\n"
            )
            .into_bytes();
            raw.extend_from_slice(&body);

            let limits = HttpLimits::default();
            let expected = {
                let mut buffer = RequestBuffer::new();
                buffer.push(&raw);
                buffer.next_request(&limits).unwrap().expect("one-shot parse")
            };

            let mut buffer = RequestBuffer::new();
            let mut offset = 0usize;
            while offset < raw.len() {
                // Bias toward tiny chunks so header/body boundaries are hit.
                let chunk = rng.gen_range(1usize..=8).min(raw.len() - offset);
                buffer.push(&raw[offset..offset + chunk]);
                offset += chunk;
                let parsed = buffer.next_request(&limits);
                if offset < raw.len() {
                    proptest::prop_assert_eq!(parsed, Ok(None), "early parse at byte {}", offset);
                } else {
                    let request = parsed.unwrap().expect("final chunk completes the request");
                    proptest::prop_assert_eq!(&request, &expected);
                    proptest::prop_assert!(buffer.is_empty());
                }
            }
        }

        /// Random hostile preambles (biased toward protocol punctuation)
        /// never panic the parser, and every rejection carries one of the
        /// documented statuses: 400, 411, 413, 431, 501, or 505.
        #[test]
        fn hostile_preambles_map_to_documented_statuses(
            seed in 0u64..1_000_000,
            len in 0usize..200,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            const ALPHABET: &[u8] = b"\r\n :/.GETPOSTHTTP1\xff\x00abcdefgh0123456789-";
            let mut raw: Vec<u8> = (0..len)
                .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())])
                .collect();
            raw.extend_from_slice(b"\r\n\r\n");

            let mut buffer = RequestBuffer::new();
            buffer.push(&raw);
            match buffer.next_request(&HttpLimits::default()) {
                // A lucky draw can form a valid request (or one still
                // waiting on a declared body); both are acceptable.
                Ok(_) => {}
                Err(error) => proptest::prop_assert!(
                    matches!(error.status, 400 | 411 | 413 | 431 | 501 | 505),
                    "undocumented status {} for {:?}",
                    error.status,
                    raw
                ),
            }
        }
    }
}
