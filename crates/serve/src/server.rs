//! The prediction server: accept loop, connection handling, and the
//! shard-per-worker predict pool.
//!
//! # Architecture
//!
//! ```text
//! acceptor ──► connection threads (parse HTTP, resolve backend)
//!                   │ ShardMessage (mpsc)
//!                   ▼
//!              shard workers ──► LruCache ──► Predictor::predict_batch
//! ```
//!
//! Each worker shard owns its prediction cache outright (no locks): a backend
//! is pinned to one shard by its fingerprint ([`Backend::shard_index`]), so
//! one table's cache entries never split across shards. A shard drains every
//! queued job before predicting, groups the in-flight requests by backend,
//! deduplicates repeated blocks, and answers all cache misses of a group with
//! a single [`Predictor::predict_batch`](crate::backend::Predictor) call —
//! for table backends the same batched simulator hot path the evaluation
//! pipeline uses, for surrogate backends a forward-only replay of the
//! compiled surrogate program.
//!
//! # Ops primitives
//!
//! Two endpoints exist for the routing tier ([`crate::client`] consumers):
//!
//! * **`POST /reload`** re-reads every artifact named by the startup
//!   [`ReloadSpec`], fingerprint-verifies the lot, and only on *complete*
//!   success swaps the registry `Arc` and purges exactly the shard-cache
//!   entries whose backends disappeared. Any failure leaves the old registry
//!   serving and returns a structured error — there is no torn state because
//!   the new registry is built fully off to the side.
//! * **`POST /drain`** stops the acceptor, lets in-flight connections finish
//!   their buffered requests, and flips `/healthz` to `503 draining` so a
//!   router takes the process out of rotation. The binary observes
//!   [`ServerHandle::drain_requested`] and exits 0.
//!
//! Connections additionally honor a `max_requests_per_connection` cap by
//! answering the capped request with `Connection: close` — the client-visible
//! negotiation that lets a pooling router rebalance long-lived connections.
//!
//! # Determinism
//!
//! A `/predict` response body is a pure function of `(blocks, backend)`:
//! simulators are pure, `predict_batch` is defined to equal the per-block
//! loop, cache hits return the exact `f64` a miss would recompute, and JSON
//! floats print in Rust's shortest-exact form. Shard count, request grouping,
//! cache state, reloads (same artifacts), and connection caps change wall
//! time only — `tests/serve_e2e.rs` asserts the bytes. Policy backends
//! extend this (invariant #8): the tier answering each block is a pure
//! function of the block and the policy's frozen metadata, so the same
//! holds across tier configurations given the same `--error-budget`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use difftune::BackendId;
use difftune_isa::BasicBlock;
use serde::Value;

use crate::backend::{
    block_fingerprint, Backend, BackendQuery, BackendRegistry, ReloadSpec, Source,
};
use crate::cache::{CacheKey, LruCache};
use crate::http::{HttpError, HttpLimits, Request, RequestBuffer, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::policy::TIER_SURROGATE;
use difftune_bench::matrix::{SimulatorKind, SpecKind};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1` by default).
    pub addr: String,
    /// Port to bind; `0` picks an ephemeral port (the handle reports it).
    pub port: u16,
    /// Prediction worker shards; `0` means all available cores.
    pub shards: usize,
    /// Prediction-cache capacity **per shard** (entries, one per
    /// `(block, backend)` pair); `0` disables caching.
    pub cache_capacity: usize,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Idle-connection read timeout (the `--idle-timeout` flag); a connection
    /// with no complete request for this long is closed.
    pub read_timeout: Duration,
    /// Maximum blocks in one `/predict` request (larger requests get `413`).
    pub max_blocks_per_request: usize,
    /// After this many answered requests a connection is closed with
    /// `Connection: close` (`0` = unlimited) — the graceful-drain negotiation
    /// that keeps a router's pooled connections from pinning one upstream
    /// forever.
    pub max_requests_per_connection: usize,
    /// The artifact locations `POST /reload` rescans. `None` (the default)
    /// rejects reloads — a server must opt in to naming its sources.
    pub reload_spec: Option<ReloadSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1".to_string(),
            port: 0,
            shards: 0,
            cache_capacity: 4096,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(5),
            max_blocks_per_request: 1024,
            max_requests_per_connection: 0,
            reload_spec: None,
        }
    }
}

/// One queued prediction batch: a resolved backend, the parsed blocks, and
/// where to send the predictions.
struct PredictJob {
    backend: Arc<Backend>,
    blocks: Vec<BasicBlock>,
    keys: Vec<CacheKey>,
    reply: mpsc::Sender<Vec<f64>>,
}

/// What flows down a shard channel: prediction work, or a cache purge from a
/// hot reload. Purges ride the same queue as jobs, so a shard applies them
/// strictly after every job enqueued before the reload — no torn interleaving.
enum ShardMessage {
    /// A prediction batch.
    Job(PredictJob),
    /// Drop every cache entry belonging to these backend fingerprints, then
    /// ack with the number of entries removed.
    Purge {
        backends: Vec<u64>,
        done: mpsc::Sender<usize>,
    },
}

/// Everything a connection thread needs, cloned per connection.
#[derive(Clone)]
struct ConnectionContext {
    /// The hot-swappable registry: readers clone the inner `Arc` once per
    /// request, so a concurrent reload never changes a request mid-flight.
    registry: Arc<RwLock<Arc<BackendRegistry>>>,
    metrics: Arc<Metrics>,
    senders: Vec<mpsc::Sender<ShardMessage>>,
    limits: HttpLimits,
    max_blocks: usize,
    shard_count: usize,
    /// Set by `POST /drain`; checked by the acceptor, connections, and
    /// `/healthz`.
    drain: Arc<AtomicBool>,
    /// The bound address (drain self-connects to unblock the acceptor).
    addr: SocketAddr,
    /// What `POST /reload` rescans.
    reload_spec: Option<ReloadSpec>,
    /// Serializes reloads: two concurrent reloads must not interleave their
    /// swap-then-purge sequences.
    reload_lock: Arc<Mutex<()>>,
}

impl ConnectionContext {
    /// The registry as of this instant.
    fn registry(&self) -> Arc<BackendRegistry> {
        Arc::clone(&self.registry.read().expect("registry lock poisoned"))
    }
}

/// A handle to a running server. Dropping the handle shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    active_connections: Arc<AtomicUsize>,
    read_timeout: Duration,
    metrics: Arc<Metrics>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// The handle's own copies of the shard senders; dropped during shutdown
    /// so workers observe a closed channel once every connection is gone.
    senders: Vec<mpsc::Sender<ShardMessage>>,
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// True once a `POST /drain` has been accepted. The binary polls this and
    /// exits 0 after [`ServerHandle::shutdown`].
    pub fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// Connections currently being served (drain waits for this to hit 0).
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::SeqCst)
    }

    /// Stops accepting, waits for in-flight connections (bounded by the idle
    /// timeout), and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connections notice the flag at their next read timeout.
        let deadline = Instant::now() + self.read_timeout + Duration::from_secs(1);
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Binds the listener and spawns the acceptor and shard workers.
///
/// # Errors
///
/// I/O errors from binding the address.
pub fn spawn(config: ServeConfig, registry: BackendRegistry) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    let addr = listener.local_addr()?;

    let shard_count = if config.shards == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.shards
    };

    let registry = Arc::new(RwLock::new(Arc::new(registry)));
    let metrics = Arc::new(Metrics::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let drain = Arc::new(AtomicBool::new(false));
    let active_connections = Arc::new(AtomicUsize::new(0));

    let mut senders = Vec::with_capacity(shard_count);
    let mut workers = Vec::with_capacity(shard_count);
    for shard in 0..shard_count {
        let (tx, rx) = mpsc::channel::<ShardMessage>();
        senders.push(tx);
        let cache = LruCache::new(config.cache_capacity);
        let metrics = Arc::clone(&metrics);
        workers.push(
            std::thread::Builder::new()
                .name(format!("difftune-serve-shard-{shard}"))
                .spawn(move || worker_loop(rx, cache, metrics))?,
        );
    }

    let context = ConnectionContext {
        registry,
        metrics: Arc::clone(&metrics),
        senders: senders.clone(),
        limits: config.limits,
        max_blocks: config.max_blocks_per_request,
        shard_count,
        drain: Arc::clone(&drain),
        addr,
        reload_spec: config.reload_spec.clone(),
        reload_lock: Arc::new(Mutex::new(())),
    };
    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let drain = Arc::clone(&drain);
        let active = Arc::clone(&active_connections);
        let read_timeout = config.read_timeout;
        let request_cap = config.max_requests_per_connection;
        std::thread::Builder::new()
            .name("difftune-serve-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) || drain.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let context = context.clone();
                    let shutdown = Arc::clone(&shutdown);
                    let conn_active = Arc::clone(&active);
                    active.fetch_add(1, Ordering::SeqCst);
                    let spawned = std::thread::Builder::new()
                        .name("difftune-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, context, shutdown, read_timeout, request_cap);
                            conn_active.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        drain,
        active_connections,
        read_timeout: config.read_timeout,
        metrics,
        acceptor: Some(acceptor),
        workers,
        senders,
    })
}

/// Reads requests off one connection until close, error, shutdown, drain, or
/// the per-connection request cap.
fn handle_connection(
    mut stream: TcpStream,
    context: ConnectionContext,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
    request_cap: usize,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let mut parser = RequestBuffer::new();
    let mut read_buf = [0u8; 16 * 1024];
    let mut answered = 0usize;
    loop {
        // Answer every complete request already buffered (pipelining).
        loop {
            match parser.next_request(&context.limits) {
                Ok(Some(request)) => {
                    let started = Instant::now();
                    context.metrics.on_request();
                    let mut response = route(&request, &context);
                    answered += 1;
                    // The request-cap negotiation: the capped response itself
                    // says `Connection: close`, so pooled clients retire the
                    // connection instead of hitting a surprise reset.
                    response.close = response.close
                        || request.wants_close()
                        || (request_cap > 0 && answered >= request_cap);
                    context.metrics.on_response_status(response.status);
                    let close = response.close;
                    let written = response.write_to(&mut stream);
                    context
                        .metrics
                        .on_latency(Endpoint::from_path(&request.path), started.elapsed());
                    if written.is_err() || close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    context.metrics.on_request();
                    context.metrics.on_response_status(error.status);
                    let _ = Response::from_error(&error, true).write_to(&mut stream);
                    context.metrics.on_latency(Endpoint::Other, Duration::ZERO);
                    return;
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) || context.drain.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => {
                // Re-check the flags *after* the blocking read too: bytes
                // that complete while a drain lands must not start a new
                // request. Without this check the connection races the
                // drain — whether the request got answered depended on
                // whether the read returned before or after the flag
                // flipped. With it, the ordering is deterministic: requests
                // fully buffered before the drain are answered (the parse
                // loop above ran first), requests arriving after the drain
                // is observed are closed unanswered and retried by the
                // client against the next process.
                if shutdown.load(Ordering::SeqCst) || context.drain.load(Ordering::SeqCst) {
                    return;
                }
                parser.push(&read_buf[..n]);
            }
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle (or mid-request stall) past the timeout: close. A
                // fresh request will come on a fresh connection.
                return;
            }
            Err(_) => return,
        }
    }
}

/// Dispatches one parsed request to its endpoint.
///
/// Every endpoint is reachable both at its versioned path (`/v1/predict`)
/// and at the legacy unversioned alias (`/predict`); the two are normalized
/// to one handler here, so their responses are byte-identical by
/// construction.
fn route(request: &Request, context: &ConnectionContext) -> Response {
    let path = request
        .path
        .strip_prefix("/v1")
        .filter(|rest| rest.starts_with('/'))
        .unwrap_or(&request.path);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let draining = context.drain.load(Ordering::SeqCst);
            let registry = context.registry();
            Response::json(
                if draining { 503 } else { 200 },
                serde_json::to_string(&Value::Map(vec![
                    (
                        "status".to_string(),
                        Value::Str(if draining { "draining" } else { "ok" }.to_string()),
                    ),
                    ("backends".to_string(), Value::Int(registry.len() as i128)),
                    (
                        "shards".to_string(),
                        Value::Int(context.shard_count as i128),
                    ),
                ]))
                .expect("health body serializes"),
            )
        }
        ("GET", "/metrics") => Response::text(
            200,
            context
                .metrics
                .render(context.registry().len(), context.shard_count),
        ),
        ("GET", "/backends") => Response::json(
            200,
            serde_json::to_string(&Value::Seq(
                context
                    .registry()
                    .entries()
                    .into_iter()
                    .map(|(id, kind, fingerprint)| {
                        Value::Map(vec![
                            ("id".to_string(), Value::Str(id)),
                            ("kind".to_string(), Value::Str(kind.to_string())),
                            ("fingerprint".to_string(), Value::Str(fingerprint)),
                        ])
                    })
                    .collect(),
            ))
            .expect("backend list serializes"),
        ),
        ("POST", "/predict") => match handle_predict(request, context) {
            Ok(response) => response,
            Err(error) => Response::from_error(&error, false),
        },
        ("POST", "/reload") => match handle_reload(context) {
            Ok(response) => response,
            Err(error) => Response::from_error(&error, false),
        },
        ("POST", "/drain") => handle_drain(context),
        (_, "/healthz" | "/metrics" | "/backends") => Response::from_error(
            &HttpError {
                status: 405,
                message: format!("{} only supports GET", request.path),
            },
            false,
        ),
        (_, "/predict" | "/reload" | "/drain") => Response::from_error(
            &HttpError {
                status: 405,
                message: format!("{} only supports POST", request.path),
            },
            false,
        ),
        (_, path) => Response::from_error(
            &HttpError {
                status: 404,
                message: format!(
                    "unknown path {path}; endpoints are POST /predict, POST /reload, \
                     POST /drain, GET /healthz, GET /metrics, GET /backends (all also \
                     under /v1)"
                ),
            },
            false,
        ),
    }
}

/// Parses, resolves, and answers one `/predict` request.
fn handle_predict(request: &Request, context: &ConnectionContext) -> Result<Response, HttpError> {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))?;
    let value = serde_json::from_str_value(body)
        .map_err(|error| HttpError::bad_request(format!("request body is not JSON: {error}")))?;
    let map = value
        .as_map()
        .ok_or_else(|| HttpError::bad_request("request body must be a JSON object"))?;

    // Exactly one of `block` (a string) or `blocks` (an array of strings).
    let texts: Vec<&str> = match (find(map, "block"), find(map, "blocks")) {
        (Some(_), Some(_)) => {
            return Err(HttpError::bad_request(
                "send either `block` or `blocks`, not both",
            ))
        }
        (Some(single), None) => {
            vec![single
                .as_str()
                .ok_or_else(|| HttpError::bad_request("`block` must be a string"))?]
        }
        (None, Some(many)) => many
            .as_seq()
            .ok_or_else(|| HttpError::bad_request("`blocks` must be an array of strings"))?
            .iter()
            .map(|item| {
                item.as_str()
                    .ok_or_else(|| HttpError::bad_request("`blocks` must contain only strings"))
            })
            .collect::<Result<_, _>>()?,
        (None, None) => {
            return Err(HttpError::bad_request(
                "the request must carry a `block` string or a `blocks` array",
            ))
        }
    };
    if texts.is_empty() {
        return Err(HttpError::bad_request("`blocks` must not be empty"));
    }
    if texts.len() > context.max_blocks {
        return Err(HttpError {
            status: 413,
            message: format!(
                "{} blocks exceed the per-request limit of {}",
                texts.len(),
                context.max_blocks
            ),
        });
    }

    let mut blocks = Vec::with_capacity(texts.len());
    for (index, text) in texts.iter().enumerate() {
        let block: BasicBlock = text.parse().map_err(|error| {
            HttpError::bad_request(format!("blocks[{index}] does not parse: {error}"))
        })?;
        if block.is_empty() {
            return Err(HttpError::bad_request(format!(
                "blocks[{index}] has no instructions"
            )));
        }
        blocks.push(block);
    }

    let query = parse_backend_query(map)?;
    let backend = context
        .registry()
        .resolve(&query)
        .map_err(|message| HttpError {
            status: 404,
            message,
        })?;

    let keys: Vec<CacheKey> = blocks
        .iter()
        .map(|block| {
            (
                block_fingerprint(&block.to_string()),
                backend.cache_fingerprint,
                backend.predictor.tier_tag(block),
            )
        })
        .collect();
    // Policy responses report the tier family that actually answered: pure
    // tier-2 batches are `surrogate`, anything touching tier 3 is `table`.
    // The tier tags are pure functions of the blocks, so this label is as
    // deterministic as the prediction bytes.
    let source_kind = if backend.source == Source::Policy {
        if keys.iter().all(|&(_, _, tier)| tier == TIER_SURROGATE) {
            "surrogate"
        } else {
            "table"
        }
    } else {
        backend.kind()
    };
    let shard = backend.shard_index(context.shard_count);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = PredictJob {
        backend: Arc::clone(&backend),
        blocks,
        keys,
        reply: reply_tx,
    };
    context.senders[shard]
        .send(ShardMessage::Job(job))
        .map_err(|_| HttpError {
            status: 503,
            message: "prediction shard is gone (server shutting down)".to_string(),
        })?;
    let predictions = reply_rx.recv().map_err(|_| HttpError {
        status: 500,
        message: "prediction shard dropped the request".to_string(),
    })?;

    context.metrics.on_predict(predictions.len());
    let body = serde_json::to_string(&Value::Map(vec![
        ("backend".to_string(), Value::Str(backend.id.clone())),
        (
            "source_kind".to_string(),
            Value::Str(source_kind.to_string()),
        ),
        (
            "table_fingerprint".to_string(),
            Value::Str(backend.table_fingerprint.clone()),
        ),
        (
            "predictions".to_string(),
            Value::Seq(predictions.into_iter().map(Value::Float).collect()),
        ),
    ]))
    .expect("a prediction body always serializes");
    Ok(Response::json(200, body))
}

/// Rebuilds the registry from the startup [`ReloadSpec`] and swaps it in.
///
/// The rebuild happens entirely off to the side under strict verification, so
/// every failure mode — missing spec, unreadable artifact, fingerprint
/// mismatch, unservable schema — returns a structured error *before* anything
/// observable changes: the old registry keeps serving and no cache entry is
/// touched. Only a fully verified registry is swapped in, after which exactly
/// the cache entries of disappeared backends are purged, shard by shard.
fn handle_reload(context: &ConnectionContext) -> Result<Response, HttpError> {
    let Some(spec) = &context.reload_spec else {
        return Err(HttpError {
            status: 409,
            message: "this server has no reload sources (started without --tables/--checkpoint \
                      or with --no-reload)"
                .to_string(),
        });
    };
    let _serialized = context.reload_lock.lock().expect("reload lock poisoned");

    let new_registry = BackendRegistry::load(spec, true).map_err(|message| HttpError {
        status: 409,
        message: format!("reload rejected, old tables still serving: {message}"),
    })?;
    let new_fingerprints = new_registry.cache_fingerprints();
    let backend_count = new_registry.len();

    // Swap. In-flight requests hold the old `Arc` and finish consistently.
    let old_registry = {
        let mut slot = context.registry.write().expect("registry lock poisoned");
        std::mem::replace(&mut *slot, Arc::new(new_registry))
    };

    // Purge exactly the backends that disappeared (a re-tuned table gets a
    // new fingerprint, so its old entries are unreachable garbage; unchanged
    // backends keep their warm entries).
    let stale: BTreeSet<u64> = old_registry
        .cache_fingerprints()
        .difference(&new_fingerprints)
        .copied()
        .collect();
    let mut by_shard: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for fingerprint in stale {
        by_shard
            .entry((fingerprint % context.shard_count.max(1) as u64) as usize)
            .or_default()
            .push(fingerprint);
    }
    let purged_backends: usize = by_shard.values().map(Vec::len).sum();
    let mut purged_entries = 0usize;
    for (shard, backends) in by_shard {
        let (done_tx, done_rx) = mpsc::channel();
        if context.senders[shard]
            .send(ShardMessage::Purge {
                backends,
                done: done_tx,
            })
            .is_ok()
        {
            purged_entries += done_rx.recv().unwrap_or(0);
        }
    }

    context.metrics.on_reload();
    Ok(Response::json(
        200,
        serde_json::to_string(&Value::Map(vec![
            ("status".to_string(), Value::Str("reloaded".to_string())),
            ("backends".to_string(), Value::Int(backend_count as i128)),
            (
                "purged_backends".to_string(),
                Value::Int(purged_backends as i128),
            ),
            (
                "purged_entries".to_string(),
                Value::Int(purged_entries as i128),
            ),
        ]))
        .expect("reload body serializes"),
    ))
}

/// Begins a graceful drain: stop accepting, flip `/healthz` to 503, and let
/// the binary exit once in-flight connections finish.
fn handle_drain(context: &ConnectionContext) -> Response {
    let already = context.drain.swap(true, Ordering::SeqCst);
    if !already {
        // Unblock the acceptor so it observes the flag and stops accepting.
        let _ = TcpStream::connect(context.addr);
    }
    let mut response = Response::json(
        200,
        serde_json::to_string(&Value::Map(vec![
            ("status".to_string(), Value::Str("draining".to_string())),
            ("already_draining".to_string(), Value::Bool(already)),
        ]))
        .expect("drain body serializes"),
    );
    // This connection is done too once the response is written.
    response.close = true;
    response
}

/// Looks up a top-level field in the request object.
fn find<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
}

/// Extracts the backend-selection fields (`sim`, `uarch`, `spec`, `source`),
/// all optional, plus the `backend` shorthand: a full backend id
/// (`matrix:mca:haswell:llvm_mca`) parsed through [`BackendId`], setting all
/// four at once (individual fields still override it).
///
/// Public because the routing tier parses the same fields out of a `/predict`
/// body to compute the request's ring position — router and upstream must
/// agree on this parse or routing would diverge from resolution.
///
/// # Errors
///
/// A 400 [`HttpError`] naming the malformed field.
pub fn parse_backend_query(map: &[(String, Value)]) -> Result<BackendQuery, HttpError> {
    let text = |name: &str| -> Result<Option<&str>, HttpError> {
        match find(map, name) {
            None | Some(Value::Null) => Ok(None),
            Some(value) => value
                .as_str()
                .map(Some)
                .ok_or_else(|| HttpError::bad_request(format!("`{name}` must be a string"))),
        }
    };
    let mut query = BackendQuery::default();
    if let Some(id) = text("backend")? {
        let id: BackendId = id.parse().map_err(HttpError::bad_request)?;
        query.simulator = id.simulator;
        query.uarch = id.uarch;
        query.source = Some(id.source);
        if let Some(spec) = id.spec {
            query.spec = spec;
        }
    }
    if let Some(sim) = text("sim")? {
        query.simulator = SimulatorKind::parse(sim).map_err(HttpError::bad_request)?;
    }
    if let Some(uarch) = text("uarch")? {
        query.uarch = uarch.parse().map_err(|error: String| {
            HttpError::bad_request(format!(
                "{error} (valid: ivybridge, haswell, skylake, zen2)"
            ))
        })?;
    }
    if let Some(spec) = text("spec")? {
        query.spec = SpecKind::parse(spec).map_err(HttpError::bad_request)?;
    }
    if let Some(source) = text("source")? {
        query.source = Some(Source::parse(source).map_err(HttpError::bad_request)?);
    }
    Ok(query)
}

/// One shard's loop: drain queued messages, group jobs by backend, answer
/// misses with one `predict_batch` per group, then apply any purges.
fn worker_loop(rx: mpsc::Receiver<ShardMessage>, mut cache: LruCache, metrics: Arc<Metrics>) {
    while let Ok(first) = rx.recv() {
        let mut jobs = Vec::new();
        let mut purges = Vec::new();
        let mut stash = |message: ShardMessage| match message {
            ShardMessage::Job(job) => jobs.push(job),
            ShardMessage::Purge { backends, done } => purges.push((backends, done)),
        };
        stash(first);
        while let Ok(next) = rx.try_recv() {
            stash(next);
        }

        // Group the in-flight jobs by backend so each table's misses batch
        // into a single simulator call.
        let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (index, job) in jobs.iter().enumerate() {
            groups
                .entry(job.backend.cache_fingerprint)
                .or_default()
                .push(index);
        }

        let mut replies: Vec<Vec<f64>> = jobs.iter().map(|j| vec![0.0; j.blocks.len()]).collect();
        for indices in groups.values() {
            let backend = Arc::clone(&jobs[indices[0]].backend);
            // Cache pass: answer hits, queue deduplicated misses.
            let mut miss_blocks: Vec<BasicBlock> = Vec::new();
            let mut miss_keys: Vec<CacheKey> = Vec::new();
            let mut miss_index: HashMap<CacheKey, usize> = HashMap::new();
            let mut miss_slots: Vec<(usize, usize, usize)> = Vec::new();
            let mut hits = 0usize;
            for &job_index in indices {
                let job = &jobs[job_index];
                for (block_index, (block, key)) in job.blocks.iter().zip(&job.keys).enumerate() {
                    if let Some(value) = cache.get(key) {
                        replies[job_index][block_index] = value;
                        hits += 1;
                        continue;
                    }
                    let slot = *miss_index.entry(*key).or_insert_with(|| {
                        miss_blocks.push(block.clone());
                        miss_keys.push(*key);
                        miss_blocks.len() - 1
                    });
                    miss_slots.push((job_index, block_index, slot));
                }
            }
            metrics.on_cache(hits, miss_blocks.len());
            if backend.source == Source::Policy {
                // Tier attribution: hits are tier 1; each deduplicated miss
                // carries its tier in the cache key's tag.
                let surrogate = miss_keys
                    .iter()
                    .filter(|&&(_, _, tier)| tier == TIER_SURROGATE)
                    .count();
                metrics.on_policy_tier(0, hits);
                metrics.on_policy_tier(1, surrogate);
                metrics.on_policy_tier(2, miss_blocks.len() - surrogate);
            }

            if !miss_blocks.is_empty() {
                let values = backend.predictor.predict_batch(&miss_blocks);
                for (key, value) in miss_keys.iter().zip(&values) {
                    cache.insert(*key, *value);
                }
                for (job_index, block_index, slot) in miss_slots {
                    replies[job_index][block_index] = values[slot];
                }
            }
        }

        for (job, reply) in jobs.iter().zip(replies) {
            // The client may have disconnected; nothing to do about it.
            let _ = job.reply.send(reply);
        }

        // Purges apply after the batch's jobs: any job enqueued before the
        // reload ran against the old registry and may have populated old
        // entries — they go too.
        for (backends, done) in purges {
            let mut removed = 0usize;
            for backend in backends {
                removed += cache.purge_backend(backend);
            }
            let _ = done.send(removed);
        }
    }
}
