//! Servable backends: a [`Predictor`] bound to an identity.
//!
//! Five prediction sources are supported, mirroring the artifacts the rest
//! of the repository produces:
//!
//! * **default** — the expert-documentation tables
//!   ([`difftune_cpu::default_params`]), one per `(simulator, uarch)` pair;
//! * **checkpoint** — the learned θ inside a finished session
//!   [`RunCheckpoint`] (the `--checkpoint SIM:UARCH:SPEC=PATH` flag);
//! * **matrix** — `MATRIX_*.json` cell records from a `difftune-matrix`
//!   sweep (schema `difftune-matrix/2` onward carries the learned table's
//!   flat encoding), so every tuned scenario cell is directly servable;
//! * **surrogate** — `SURROGATE_*.json` artifacts: the trained surrogate
//!   itself answers with one forward-only replay of a compiled program
//!   instead of a simulator run (the fast path);
//! * **policy** — the three-tier serve path
//!   ([`crate::policy::PolicyPredictor`]): derived automatically for every
//!   cell with a learned table, pairing it with the cell's surrogate (when
//!   one is loaded) under the registry's `--error-budget`, and the default
//!   answer for sourceless requests.
//!
//! All five hide behind the [`Predictor`] trait — a batch of blocks in,
//! timings out, plus the artifact fingerprint and the prediction kind — so
//! the shard job loop, the cache key, and `/backends` are generic over
//! prediction sources.
//!
//! Every loaded artifact is integrity-checked: the reconstructed table's
//! [`SimParams::stable_fingerprint`] (or the surrogate artifact's content
//! fingerprint) must match the fingerprint recorded in the artifact, so a
//! truncated or hand-edited file is rejected at load time instead of
//! silently serving wrong timings.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use difftune::{BackendId, RunCheckpoint};
use difftune_bench::matrix::{CellKey, SimulatorKind, SpecKind};
use difftune_bench::record::{fnv1a, MatrixRecord, MATRIX_SCHEMA};
use difftune_cpu::{default_params, Microarch};
use difftune_isa::BasicBlock;
use difftune_sim::{ParamBounds, SimParams, Simulator};
use difftune_surrogate::{SurrogateArtifact, SurrogateForward, SURROGATE_SCHEMA};

use crate::policy::policy_backend;

pub use difftune::Source;

/// A prediction source: a batch of basic blocks in, one timing per block
/// out, in order.
///
/// Both the table-driven simulators and the learned surrogate implement
/// this, so everything downstream of backend resolution — the shard job
/// loop, the prediction cache, `/backends` — is generic over how timings
/// are produced. Implementations must be deterministic: the same block
/// yields the same bits regardless of batch composition, cache state, or
/// call history (the serving tier's determinism contract leans on this).
pub trait Predictor: std::fmt::Debug + Send + Sync {
    /// Predicts a timing for every block, in order.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<f64>;

    /// The artifact digest (`{:#018x}`) pinning exactly what answers: the
    /// table fingerprint for table backends, the surrogate artifact's
    /// content fingerprint for surrogate backends.
    fn fingerprint(&self) -> &str;

    /// The prediction family: `"table"`, `"surrogate"`, or `"policy"`.
    fn kind(&self) -> &'static str;

    /// Whether `block` takes the surrogate's compiled fast path. `None` for
    /// predictors with no surrogate notion (tables); surrogate predictors
    /// answer from the model's program-keying without running a prediction.
    fn replayable(&self, _block: &BasicBlock) -> Option<bool> {
        None
    }

    /// The cache-key tier tag for `block`: [`crate::policy::TIER_PLAIN`] for
    /// ordinary predictors; the policy predictor returns the tier (2 =
    /// surrogate, 3 = simulator) it will answer the block from, so cached
    /// policy answers stay attributable to the tier that produced them.
    fn tier_tag(&self, _block: &BasicBlock) -> u8 {
        0
    }
}

/// A simulator running a parameter table — the classic backend.
#[derive(Debug)]
struct TablePredictor {
    simulator: Box<dyn Simulator>,
    table: SimParams,
    fingerprint: String,
}

impl Predictor for TablePredictor {
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<f64> {
        self.simulator.predict_batch(&self.table, blocks)
    }

    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn kind(&self) -> &'static str {
        "table"
    }
}

/// The learned surrogate answering directly: tokenize, encode the embedded
/// table as features, and run one forward-only replay of a compiled program
/// (recorded once per graph structure and cached). Blocks whose structure
/// the model cannot key fall back to a taped forward pass — bit-identical
/// by the engine's contract, so the fallback is invisible in the bytes.
///
/// Concurrency: engines are pooled, not serialized. A batch checks an
/// engine out (or builds a fresh one when all are busy), predicts without
/// holding any lock, and checks it back in — so concurrent batches from the
/// policy layer and direct surrogate traffic run in parallel instead of
/// queueing on one mutex. Bit-determinism survives because an engine's
/// compiled-program cache only skips re-recording: a fresh engine and a
/// warm engine produce the same bits by the tensor engine's replay
/// contract.
#[derive(Debug)]
struct SurrogatePredictor {
    /// The verified artifact — kept whole so the pool can mint additional
    /// engines on demand.
    artifact: SurrogateArtifact,
    /// Idle forward engines. The lock is held only to pop/push; predictions
    /// run outside it.
    engines: Mutex<Vec<SurrogateForward>>,
    /// A dedicated engine for `&self` structural probes
    /// ([`SurrogateForward::replayable`]); it never predicts, so it is never
    /// checked out.
    probe: SurrogateForward,
    fingerprint: String,
}

impl SurrogatePredictor {
    fn new(artifact: &SurrogateArtifact) -> Result<Self, String> {
        Ok(SurrogatePredictor {
            engines: Mutex::new(vec![SurrogateForward::from_artifact(artifact)?]),
            probe: SurrogateForward::from_artifact(artifact)?,
            fingerprint: artifact.fingerprint.clone(),
            artifact: artifact.clone(),
        })
    }

    /// Pops an idle engine, or mints a new one when every engine is busy.
    /// Minting cannot fail: the artifact already built two engines in
    /// [`SurrogatePredictor::new`], so its weights are known-compatible.
    fn checkout(&self) -> SurrogateForward {
        let idle = self
            .engines
            .lock()
            .expect("surrogate engine pool lock poisoned")
            .pop();
        idle.unwrap_or_else(|| {
            SurrogateForward::from_artifact(&self.artifact)
                .expect("the artifact was verified and engine-built at load time")
        })
    }

    fn checkin(&self, engine: SurrogateForward) {
        self.engines
            .lock()
            .expect("surrogate engine pool lock poisoned")
            .push(engine);
    }

    /// Idle engines currently pooled (tests assert the pool grew under
    /// concurrency).
    #[cfg(test)]
    fn pooled_engines(&self) -> usize {
        self.engines
            .lock()
            .expect("surrogate engine pool lock poisoned")
            .len()
    }
}

impl Predictor for SurrogatePredictor {
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<f64> {
        let mut engine = self.checkout();
        let answers = engine.predict_batch(blocks);
        self.checkin(engine);
        answers
    }

    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn kind(&self) -> &'static str {
        "surrogate"
    }

    fn replayable(&self, block: &BasicBlock) -> Option<bool> {
        Some(self.probe.replayable(block))
    }
}

/// One servable backend: a [`Predictor`] plus the identity it serves under.
#[derive(Debug)]
pub struct Backend {
    /// The backend id (`<source>:<sim>:<uarch>` for defaults,
    /// `<source>:<sim>:<uarch>:<spec>` for learned backends) — echoed in
    /// every `/predict` response.
    pub id: String,
    /// The backend's source.
    pub source: Source,
    /// The simulator family (for surrogates: the family mimicked).
    pub simulator_kind: SimulatorKind,
    /// The microarchitecture the backend targets.
    pub uarch: Microarch,
    /// The parameter spec a learned backend was tuned under (`None` for
    /// defaults, which exist independently of any spec).
    pub spec: Option<SpecKind>,
    /// The prediction source answering requests.
    pub predictor: Box<dyn Predictor>,
    /// The parameter table (for surrogates: the learned table embedded in
    /// the artifact, which the surrogate encodes as its feature inputs).
    pub table: SimParams,
    /// The artifact digest in `{:#018x}` rendering
    /// ([`Predictor::fingerprint`]), echoed in responses so clients can pin
    /// the exact artifact they were answered from.
    pub table_fingerprint: String,
    /// Cache/shard fingerprint: the artifact digest folded with the
    /// simulator kind (and, for surrogates, the prediction kind). Two
    /// backends sharing a table but not a simulator (e.g. the mca and uop
    /// defaults of one uarch) predict differently, so the cache key must
    /// separate them — and a surrogate trained on a cell predicts
    /// differently from the cell's table, so those separate too.
    pub cache_fingerprint: u64,
}

impl Backend {
    fn new(
        source: Source,
        simulator_kind: SimulatorKind,
        uarch: Microarch,
        spec: Option<SpecKind>,
        table: SimParams,
    ) -> Self {
        let id = BackendId {
            source,
            simulator: simulator_kind,
            uarch,
            spec,
        }
        .to_string();
        let table_digest = table.stable_fingerprint();
        let cache_fingerprint = fnv1a(
            simulator_kind
                .key()
                .bytes()
                .chain([0xff])
                .chain(table_digest.to_le_bytes()),
        );
        let predictor = TablePredictor {
            simulator: simulator_kind.build(),
            table: table.clone(),
            fingerprint: table.fingerprint_hex(),
        };
        Backend {
            id,
            source,
            simulator_kind,
            uarch,
            spec,
            table_fingerprint: predictor.fingerprint.clone(),
            predictor: Box::new(predictor),
            table,
            cache_fingerprint,
        }
    }

    fn from_surrogate(artifact: &SurrogateArtifact) -> Result<Self, String> {
        let key = CellKey::parse(&artifact.cell)
            .map_err(|error| format!("cell id {:?}: {error}", artifact.cell))?;
        let predictor = SurrogatePredictor::new(artifact)?;
        let id = BackendId {
            source: Source::Surrogate,
            simulator: key.simulator,
            uarch: key.uarch,
            spec: Some(key.spec),
        }
        .to_string();
        let cache_fingerprint = fnv1a(
            "surrogate"
                .bytes()
                .chain([0xff])
                .chain(key.simulator.key().bytes())
                .chain([0xff])
                .chain(artifact.stable_fingerprint().to_le_bytes()),
        );
        Ok(Backend {
            id,
            source: Source::Surrogate,
            simulator_kind: key.simulator,
            uarch: key.uarch,
            spec: Some(key.spec),
            table: artifact.table(),
            table_fingerprint: predictor.fingerprint.clone(),
            predictor: Box::new(predictor),
            cache_fingerprint,
        })
    }

    /// The prediction family answering for this backend
    /// ([`Predictor::kind`]).
    pub fn kind(&self) -> &'static str {
        self.predictor.kind()
    }

    /// The shard this backend's requests are routed to, out of `shards`
    /// workers. Derived from [`Backend::cache_fingerprint`], so a backend
    /// always lands on the same shard and its cache entries never split.
    pub fn shard_index(&self, shards: usize) -> usize {
        (self.cache_fingerprint % shards.max(1) as u64) as usize
    }
}

/// A `/predict` request's backend selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendQuery {
    /// Requested simulator (default `mca`).
    pub simulator: SimulatorKind,
    /// Requested microarchitecture (default `haswell`).
    pub uarch: Microarch,
    /// Requested spec (default `llvm_mca`; ignored for the `default` source).
    pub spec: SpecKind,
    /// Requested source; `None` resolves learned-first
    /// (policy → matrix → checkpoint → default).
    pub source: Option<Source>,
}

impl Default for BackendQuery {
    fn default() -> Self {
        BackendQuery {
            simulator: SimulatorKind::Mca,
            uarch: Microarch::Haswell,
            spec: SpecKind::LlvmMca,
            source: None,
        }
    }
}

impl BackendQuery {
    /// The backend id this query names under one specific source (defaults
    /// exist independently of any spec, so their id drops the spec segment).
    pub fn id_for(&self, source: Source) -> String {
        BackendId {
            source,
            simulator: self.simulator,
            uarch: self.uarch,
            spec: (source != Source::Default).then_some(self.spec),
        }
        .to_string()
    }

    /// The candidate backend ids in resolution order: the exact id when a
    /// source is pinned, otherwise the three-tier policy first, then
    /// learned tables (`policy` → `matrix` → `checkpoint` → `default`; bare
    /// surrogates answer only when explicitly requested, because they
    /// approximate the simulator rather than run it — the policy wraps them
    /// under the error budget instead). This order is the resolution
    /// contract — the registry and the routing tier both resolve through
    /// it, so a request hashes to the same backend identity no matter which
    /// process resolves it.
    pub fn candidate_ids(&self) -> Vec<String> {
        match self.source {
            Some(source) => vec![self.id_for(source)],
            None => [
                Source::Policy,
                Source::Matrix,
                Source::Checkpoint,
                Source::Default,
            ]
            .iter()
            .map(|&source| self.id_for(source))
            .collect(),
        }
    }
}

/// What the server loaded at startup — and what `POST /reload` rescans. The
/// spec is source *locations*, not tables: a reload re-reads every artifact,
/// fingerprint-verifies it, and only then swaps the registry.
#[derive(Debug, Clone, Default)]
pub struct ReloadSpec {
    /// Load the expert default tables for every `(simulator, uarch)` pair.
    pub defaults: bool,
    /// `MATRIX_*.json` directories (`--tables`).
    pub table_dirs: Vec<PathBuf>,
    /// Session checkpoints with their cell bindings (`--checkpoint`).
    pub checkpoints: Vec<(CellKey, PathBuf)>,
    /// The `--error-budget` gating policy tier 2 (default `0.0`: the policy
    /// serves tier 3 until the operator vouches for a surrogate accuracy).
    pub error_budget: f64,
    /// Per-cell overrides (`--error-budget CELL=BUDGET`, repeatable), keyed
    /// by canonical cell id. Cells without an override fall back to
    /// `error_budget`.
    pub cell_budgets: Vec<(String, f64)>,
}

/// The set of loaded backends, keyed for per-request resolution.
///
/// Beyond the id index, the registry keeps the inputs the policy layer
/// derives from: the configured error budget, each cell's recorded
/// surrogate-vs-simulator MAPE (from its matrix record), and the structured
/// warnings lenient loads accumulated. Every mutation that changes a cell's
/// table or surrogate rebuilds the derived `policy:` backends, so they can
/// never go stale relative to their halves.
#[derive(Debug, Default)]
pub struct BackendRegistry {
    /// Backends by id (the resolution and listing index).
    backends: BTreeMap<String, Arc<Backend>>,
    /// The `--error-budget` policy tier 2 is gated by.
    error_budget: f64,
    /// Per-cell budget overrides; cells not listed use `error_budget`.
    cell_budgets: BTreeMap<String, f64>,
    /// Recorded `surrogate_vs_sim_mape` per canonical cell id.
    cell_mape: BTreeMap<String, f64>,
    /// Structured warnings from lenient loads (e.g. a corrupt surrogate
    /// artifact skipped so its cell serves table-only).
    warnings: Vec<String>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry::default()
    }

    /// A registry pre-loaded with the expert default table for every
    /// `(simulator, uarch)` pair — the baseline backends that exist without
    /// any artifact on disk.
    pub fn with_defaults() -> Self {
        let mut registry = BackendRegistry::new();
        for simulator in SimulatorKind::ALL {
            for uarch in Microarch::ALL {
                registry.register(Backend::new(
                    Source::Default,
                    simulator,
                    uarch,
                    None,
                    default_params(uarch),
                ));
            }
        }
        registry
    }

    fn register(&mut self, backend: Backend) {
        self.backends.insert(backend.id.clone(), Arc::new(backend));
    }

    /// Sets the error budget gating policy tier 2 and rebuilds the derived
    /// `policy:` backends under it.
    pub fn set_error_budget(&mut self, budget: f64) {
        self.error_budget = budget;
        self.refresh_policies();
    }

    /// The configured error budget.
    pub fn error_budget(&self) -> f64 {
        self.error_budget
    }

    /// Sets a per-cell budget override and rebuilds the derived `policy:`
    /// backends. Cells without an override keep using the global budget.
    pub fn set_cell_budget(&mut self, cell: &str, budget: f64) {
        self.cell_budgets.insert(cell.to_string(), budget);
        self.refresh_policies();
    }

    /// The budget gating a cell's policy: its override, or the global one.
    pub fn budget_for(&self, cell: &str) -> f64 {
        self.cell_budgets
            .get(cell)
            .copied()
            .unwrap_or(self.error_budget)
    }

    /// Structured warnings accumulated by lenient loads — artifacts that
    /// were skipped (never fatally) with their cells degraded, surfaced so
    /// operators see *why* a policy runs tier 3.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Drops and re-derives every `policy:` backend from the current cells:
    /// one policy per cell with a learned table (matrix preferred over
    /// checkpoint), paired with the cell's surrogate backend when one is
    /// loaded and gated by the cell's recorded MAPE against the budget.
    /// Cells without a learned table (default-only, surrogate-only) get no
    /// policy, so sourceless resolution falls through to the defaults there.
    fn refresh_policies(&mut self) {
        self.backends
            .retain(|_, backend| backend.source != Source::Policy);
        let mut tables: BTreeMap<String, Arc<Backend>> = BTreeMap::new();
        let mut surrogates: BTreeMap<String, Arc<Backend>> = BTreeMap::new();
        for backend in self.backends.values() {
            let Some(spec) = backend.spec else { continue };
            let cell = CellKey {
                simulator: backend.simulator_kind,
                uarch: backend.uarch,
                spec,
            }
            .id();
            match backend.source {
                Source::Matrix => {
                    tables.insert(cell, Arc::clone(backend));
                }
                Source::Checkpoint => {
                    tables.entry(cell).or_insert_with(|| Arc::clone(backend));
                }
                Source::Surrogate => {
                    surrogates.insert(cell, Arc::clone(backend));
                }
                Source::Default | Source::Policy => {}
            }
        }
        let policies: Vec<Backend> = tables
            .iter()
            .map(|(cell, table)| {
                policy_backend(
                    table,
                    surrogates.get(cell),
                    self.cell_mape.get(cell).copied(),
                    self.budget_for(cell),
                )
            })
            .collect();
        for policy in policies {
            self.register(policy);
        }
    }

    /// Number of loaded backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when no backend is loaded.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Every backend id, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.backends.keys().cloned().collect()
    }

    /// Every backend as `(id, kind, fingerprint)`, sorted by id — the
    /// listing `/backends` and `--list-backends` report, complete by
    /// construction because it walks the same index resolution uses.
    pub fn entries(&self) -> Vec<(String, &'static str, String)> {
        self.backends
            .values()
            .map(|backend| {
                (
                    backend.id.clone(),
                    backend.kind(),
                    backend.table_fingerprint.clone(),
                )
            })
            .collect()
    }

    /// Builds a registry from a [`ReloadSpec`] — the startup *and* hot-reload
    /// loading path, so the two cannot drift apart.
    ///
    /// `strict` controls how pre-`difftune-matrix/2` records are treated: at
    /// startup (`false`) they are skipped with a warning, because a sweep
    /// directory legitimately accumulates old records; on reload (`true`)
    /// they are errors, because the operator explicitly asked to serve that
    /// directory's current contents and a silently unservable table is a
    /// torn deploy.
    ///
    /// # Errors
    ///
    /// Any artifact failure (unreadable file, parse failure, fingerprint
    /// mismatch, and — when `strict` — an unservable schema). On error no
    /// registry is produced, so a reload keeps serving the old one.
    pub fn load(spec: &ReloadSpec, strict: bool) -> Result<BackendRegistry, String> {
        let mut registry = if spec.defaults {
            BackendRegistry::with_defaults()
        } else {
            BackendRegistry::new()
        };
        registry.error_budget = spec.error_budget;
        registry.cell_budgets = spec.cell_budgets.iter().cloned().collect();
        for dir in &spec.table_dirs {
            registry.add_matrix_dir_with(dir, strict)?;
        }
        for (key, path) in &spec.checkpoints {
            registry.add_checkpoint(key, path)?;
        }
        if registry.is_empty() {
            return Err("the reload spec yields no backends at all".to_string());
        }
        Ok(registry)
    }

    /// Every loaded backend's cache/shard fingerprint. Reload diffs two of
    /// these sets to find which shards' caches hold entries for tables that
    /// no longer exist.
    pub fn cache_fingerprints(&self) -> BTreeSet<u64> {
        self.backends
            .values()
            .map(|backend| backend.cache_fingerprint)
            .collect()
    }

    /// Loads every servable `MATRIX_*.json` cell record and every
    /// `SURROGATE_*.json` artifact in a directory. Returns the number of
    /// backends added.
    ///
    /// # Errors
    ///
    /// Reports unreadable directories and corrupt artifacts (parse failures,
    /// wrong schema, fingerprint mismatches). `MATRIX_summary.json` and
    /// `MATRIX_ckpt_*.json` files are skipped, as are records whose schema
    /// predates `difftune-matrix/2` (they carry no table to serve).
    pub fn add_matrix_dir(&mut self, dir: &Path) -> Result<usize, String> {
        self.add_matrix_dir_with(dir, false)
    }

    /// [`BackendRegistry::add_matrix_dir`] with an explicit strictness: when
    /// `strict`, an artifact whose schema this build cannot serve is an
    /// error instead of a skip (the hot-reload policy).
    ///
    /// # Errors
    ///
    /// See [`BackendRegistry::add_matrix_dir`]; additionally, unservable
    /// schemas when `strict`.
    pub fn add_matrix_dir_with(&mut self, dir: &Path, strict: bool) -> Result<usize, String> {
        let entries = std::fs::read_dir(dir)
            .map_err(|error| format!("cannot read table directory {}: {error}", dir.display()))?;
        let mut names: Vec<String> = entries
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| {
                name.ends_with(".json")
                    && ((name.starts_with("MATRIX_")
                        && name != "MATRIX_summary.json"
                        && !name.starts_with("MATRIX_ckpt_"))
                        || name.starts_with("SURROGATE_"))
            })
            .collect();
        names.sort();

        let mut added = 0;
        for name in names {
            let path = dir.join(&name);
            let json = std::fs::read_to_string(&path)
                .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
            // Check the schema tag on the raw value tree *before* the typed
            // parse: artifacts of another schema generation may not even
            // parse into today's types (pre-/2 matrix records are missing
            // `learned_table`) — and they should be skipped as legitimately
            // unservable, not reported as corrupt.
            let kind_label = if name.starts_with("SURROGATE_") {
                "surrogate artifact"
            } else {
                "matrix cell record"
            };
            let schema = serde_json::from_str_value(&json)
                .ok()
                .and_then(|value| {
                    value
                        .get("schema")
                        .and_then(|s| s.as_str().map(String::from))
                })
                .ok_or_else(|| format!("{}: not a {kind_label}", path.display()))?;
            let expected = if name.starts_with("SURROGATE_") {
                SURROGATE_SCHEMA
            } else {
                MATRIX_SCHEMA
            };
            if schema != expected {
                if strict {
                    return Err(format!(
                        "{}: schema {schema:?} is not servable by this build (need {expected}); \
                         refusing to reload from a directory with unservable records",
                        path.display(),
                    ));
                }
                eprintln!(
                    "[difftune-serve] {}: schema {schema:?} is not servable by this build; \
                     re-run the sweep to produce servable {expected} artifacts",
                    path.display(),
                );
                continue;
            }
            if name.starts_with("SURROGATE_") {
                // Parse first, verify second: garbage that is not an
                // artifact at all stays fatal in both modes, but an artifact
                // that parses and fails integrity (fingerprint mismatch,
                // incompatible weights) is downgraded to a structured
                // warning in lenient (startup) loads — the cell serves
                // table-only with its policy pinned to tier 3, never a 500.
                let artifact = SurrogateArtifact::parse_json(&json).map_err(|error| {
                    format!("{}: not a surrogate artifact: {error}", path.display())
                })?;
                if let Err(error) = self.add_surrogate_artifact(&artifact) {
                    if strict {
                        return Err(format!("{}: {error}", path.display()));
                    }
                    let warning = format!(
                        "{}: unservable surrogate artifact ({error}); serving cell {} \
                         table-only — its policy degrades to tier 3",
                        path.display(),
                        artifact.cell,
                    );
                    eprintln!("[difftune-serve] {warning}");
                    self.warnings.push(warning);
                    continue;
                }
            } else {
                let record = MatrixRecord::from_json(&json).map_err(|error| {
                    format!("{}: not a matrix cell record: {error}", path.display())
                })?;
                self.add_matrix_record(&record)
                    .map_err(|error| format!("{}: {error}", path.display()))?;
            }
            added += 1;
        }
        Ok(added)
    }

    /// Registers one verified surrogate artifact as a `surrogate:` backend.
    ///
    /// # Errors
    ///
    /// Reports an unparsable cell id and any integrity failure
    /// ([`SurrogateArtifact::verify`] — schema, content fingerprint, table
    /// round trip, weight compatibility).
    pub fn add_surrogate_artifact(&mut self, artifact: &SurrogateArtifact) -> Result<(), String> {
        artifact.verify()?;
        self.register(Backend::from_surrogate(artifact)?);
        self.refresh_policies();
        Ok(())
    }

    /// Registers one matrix cell record as a backend.
    ///
    /// # Errors
    ///
    /// Reports an unparsable cell id, an empty or truncated `learned_table`,
    /// and any fingerprint mismatch between the reconstructed table and the
    /// record.
    pub fn add_matrix_record(&mut self, record: &MatrixRecord) -> Result<(), String> {
        let key = CellKey::parse(&record.cell)
            .map_err(|error| format!("cell id {:?}: {error}", record.cell))?;
        if record.learned_table.is_empty() {
            return Err(format!("cell {} has an empty learned_table", record.cell));
        }
        let table = SimParams::from_flat(&record.learned_table, &ParamBounds::default());
        let fingerprint = table.fingerprint_hex();
        if fingerprint != record.table_fingerprint {
            return Err(format!(
                "cell {}: reconstructed table fingerprints as {fingerprint} but the record says \
                 {} — the artifact is corrupt",
                record.cell, record.table_fingerprint
            ));
        }
        if let Some(mape) = record.surrogate_vs_sim_mape {
            self.cell_mape.insert(key.id(), mape);
        }
        self.register(Backend::new(
            Source::Matrix,
            key.simulator,
            key.uarch,
            Some(key.spec),
            table,
        ));
        self.refresh_policies();
        Ok(())
    }

    /// Loads a finished session checkpoint's learned θ as a backend for the
    /// given cell coordinates (checkpoints do not record what they tuned, so
    /// the caller supplies the binding).
    ///
    /// When the checkpoint also carries trained surrogate weights *and* the
    /// configuration they were trained under, the pair is snapshotted into a
    /// surrogate artifact ([`SurrogateArtifact::from_weights`]) and
    /// registered as the cell's `surrogate:` backend — unless a file
    /// artifact already claimed the cell (directories load before
    /// checkpoints, so file artifacts deterministically win). A weight/
    /// config mismatch degrades to a structured warning, never an error:
    /// the table backend is the artifact the operator asked for.
    ///
    /// # Errors
    ///
    /// Reports unreadable/unparsable files and checkpoints without a learned
    /// table (θ exists only once the optimize stage has run).
    pub fn add_checkpoint(&mut self, key: &CellKey, path: &Path) -> Result<(), String> {
        let json = std::fs::read_to_string(path)
            .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
        let checkpoint = RunCheckpoint::from_json(&json)
            .map_err(|error| format!("{}: not a RunCheckpoint: {error}", path.display()))?;
        let theta = checkpoint.theta.as_ref().ok_or_else(|| {
            format!(
                "{}: checkpoint at stage {:?} has no learned θ yet (resume and finish the run \
                 first)",
                path.display(),
                checkpoint.stage
            )
        })?;
        let table = theta.to_sim_params();
        if let (Some(weights), Some(config)) =
            (&checkpoint.surrogate_params, checkpoint.surrogate_config)
        {
            let surrogate_id = BackendId {
                source: Source::Surrogate,
                simulator: key.simulator,
                uarch: key.uarch,
                spec: Some(key.spec),
            }
            .to_string();
            if !self.backends.contains_key(&surrogate_id) {
                let built = SurrogateArtifact::from_weights(&key.id(), config, weights, &table)
                    .and_then(|artifact| Backend::from_surrogate(&artifact));
                match built {
                    Ok(backend) => self.register(backend),
                    Err(error) => {
                        let warning = format!(
                            "{}: checkpoint surrogate for cell {} is unservable ({error}); \
                             serving the cell table-only — its policy degrades to tier 3",
                            path.display(),
                            key.id(),
                        );
                        eprintln!("[difftune-serve] {warning}");
                        self.warnings.push(warning);
                    }
                }
            }
        }
        self.register(Backend::new(
            Source::Checkpoint,
            key.simulator,
            key.uarch,
            Some(key.spec),
            table,
        ));
        self.refresh_policies();
        Ok(())
    }

    /// Resolves a request's backend.
    ///
    /// With an explicit `source` the exact backend must exist. Without one,
    /// the derived three-tier policy wins, then learned tables over
    /// defaults: `policy`, then `matrix`, then `checkpoint`, then
    /// `default`. The resolution order is fixed, so a given registry answers
    /// a given query identically on every request.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing backend and listing the loaded
    /// ids (the server surfaces it as `404`).
    pub fn resolve(&self, query: &BackendQuery) -> Result<Arc<Backend>, String> {
        let candidates = query.candidate_ids();
        for id in &candidates {
            if let Some(backend) = self.backends.get(id) {
                return Ok(Arc::clone(backend));
            }
        }
        Err(format!(
            "no backend for {} (loaded backends: {})",
            candidates.join(" / "),
            if self.backends.is_empty() {
                "none".to_string()
            } else {
                self.ids().join(", ")
            }
        ))
    }
}

/// FNV-1a fingerprint of a block's canonical text — the first half of the
/// prediction-cache key. Canonical text (rather than the client's spelling)
/// lets differently formatted requests for the same block share an entry.
pub fn block_fingerprint(canonical_text: &str) -> u64 {
    fnv1a(canonical_text.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_bench::record::{fingerprint_table, CategoryScore};

    /// A synthetic but internally consistent matrix record over a perturbed
    /// default table.
    fn fake_record(cell: &str, uarch: Microarch) -> MatrixRecord {
        let mut table = default_params(uarch);
        table.per_inst[5].write_latency += 2;
        MatrixRecord {
            schema: MATRIX_SCHEMA.to_string(),
            cell: cell.to_string(),
            simulator: "mca".to_string(),
            uarch: uarch.key().to_string(),
            spec: "llvm_mca".to_string(),
            scale: "smoke".to_string(),
            seed: 1,
            train_blocks: 1,
            heldout_blocks: 1,
            simulated_samples: 1,
            num_learned_parameters: 1,
            default_mape: 0.2,
            default_tau: 0.8,
            learned_mape: 0.2,
            learned_tau: 0.8,
            surrogate_mape: None,
            surrogate_tau: None,
            surrogate_vs_sim_mape: None,
            surrogate_vs_sim_tau: None,
            surrogate_fingerprint: None,
            surrogate_blocks_per_second: None,
            simulator_blocks_per_second: None,
            by_category: Vec::<CategoryScore>::new(),
            table_fingerprint: fingerprint_table(&table),
            learned_table: table.to_flat(),
        }
    }

    #[test]
    fn defaults_cover_every_simulator_uarch_pair() {
        let registry = BackendRegistry::with_defaults();
        assert_eq!(
            registry.len(),
            SimulatorKind::ALL.len() * Microarch::ALL.len()
        );
        let backend = registry
            .resolve(&BackendQuery::default())
            .expect("default haswell mca backend exists");
        assert_eq!(backend.id, "default:mca:haswell");
        assert_eq!(backend.table, default_params(Microarch::Haswell));
    }

    #[test]
    fn matrix_records_become_backends_and_win_sourceless_resolution() {
        let mut registry = BackendRegistry::with_defaults();
        registry
            .add_matrix_record(&fake_record("mca:haswell:llvm_mca", Microarch::Haswell))
            .expect("consistent record loads");

        // Sourceless resolution lands on the derived policy wrapping the
        // matrix table (at the default 0.0 budget it serves the same table
        // values through tier 3).
        let learned = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(learned.id, "policy:mca:haswell:llvm_mca");
        assert_eq!(learned.kind(), "policy");
        assert_ne!(learned.table, default_params(Microarch::Haswell));

        // The matrix table itself still answers when pinned.
        let matrix = registry
            .resolve(&BackendQuery {
                source: Some(Source::Matrix),
                ..BackendQuery::default()
            })
            .unwrap();
        assert_eq!(matrix.id, "matrix:mca:haswell:llvm_mca");
        assert_eq!(matrix.table, learned.table);

        // An explicit source still reaches the defaults.
        let defaults = registry
            .resolve(&BackendQuery {
                source: Some(Source::Default),
                ..BackendQuery::default()
            })
            .unwrap();
        assert_eq!(defaults.id, "default:mca:haswell");
    }

    #[test]
    fn corrupt_matrix_records_are_rejected() {
        let mut registry = BackendRegistry::new();

        let mut truncated = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        truncated.learned_table.clear();
        assert!(registry
            .add_matrix_record(&truncated)
            .unwrap_err()
            .contains("empty"));

        let mut tampered = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        tampered.learned_table[3] += 1.0;
        assert!(registry
            .add_matrix_record(&tampered)
            .unwrap_err()
            .contains("corrupt"));

        let bad_cell = MatrixRecord {
            cell: "not-a-cell".to_string(),
            ..fake_record("mca:haswell:llvm_mca", Microarch::Haswell)
        };
        assert!(registry.add_matrix_record(&bad_cell).is_err());
        assert!(registry.is_empty());
    }

    #[test]
    fn pre_v2_records_are_skipped_while_v2_records_load() {
        let dir = std::env::temp_dir().join(format!(
            "difftune-serve-prev2-{}-{:x}",
            std::process::id(),
            fnv1a("pre_v2".bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");

        // A servable /2 record.
        let v2 = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        std::fs::write(dir.join(v2.file_name()), v2.to_json()).unwrap();

        // A /1-era record: same shape minus `learned_table`, older schema
        // tag. It cannot even parse as today's MatrixRecord, so the loader
        // must skip it from the raw schema tag, not report corruption.
        let v1 = fake_record("mca:skylake:llvm_mca", Microarch::Skylake);
        let value = serde_json::from_str_value(&v1.to_json()).unwrap();
        let entries: Vec<(String, serde::Value)> = value
            .as_map()
            .unwrap()
            .iter()
            .filter(|(key, _)| key != "learned_table")
            .map(|(key, entry)| {
                if key == "schema" {
                    (
                        key.clone(),
                        serde::Value::Str("difftune-matrix/1".to_string()),
                    )
                } else {
                    (key.clone(), entry.clone())
                }
            })
            .collect();
        std::fs::write(
            dir.join(v1.file_name()),
            serde_json::to_string(&serde::Value::Map(entries)).unwrap(),
        )
        .unwrap();

        // Summary and checkpoint files are ignored by name.
        std::fs::write(dir.join("MATRIX_summary.json"), "{}").unwrap();
        std::fs::write(dir.join("MATRIX_ckpt_mca_haswell_llvm_mca.json"), "{}").unwrap();

        let mut registry = BackendRegistry::new();
        let added = registry
            .add_matrix_dir(&dir)
            .expect("the /1 record must not be fatal");
        assert_eq!(added, 1, "exactly the /2 record loads");
        assert_eq!(
            registry.ids(),
            vec!["matrix:mca:haswell:llvm_mca", "policy:mca:haswell:llvm_mca"]
        );

        // Garbage in a MATRIX_*.json name is still a hard error.
        std::fs::write(dir.join("MATRIX_bogus_cell_garbage.json"), "not json").unwrap();
        assert!(registry
            .add_matrix_dir(&dir)
            .unwrap_err()
            .contains("not a matrix cell record"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_loading_rejects_pre_v2_records_instead_of_skipping() {
        let dir = std::env::temp_dir().join(format!(
            "difftune-serve-strict-{}-{:x}",
            std::process::id(),
            fnv1a("strict".bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");

        let v2 = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        std::fs::write(dir.join(v2.file_name()), v2.to_json()).unwrap();
        let v1 = fake_record("mca:skylake:llvm_mca", Microarch::Skylake);
        let mut v1_json = serde_json::from_str_value(&v1.to_json()).unwrap();
        if let serde::Value::Map(entries) = &mut v1_json {
            for (key, entry) in entries.iter_mut() {
                if key == "schema" {
                    *entry = serde::Value::Str("difftune-matrix/1".to_string());
                }
            }
        }
        std::fs::write(
            dir.join(v1.file_name()),
            serde_json::to_string(&v1_json).unwrap(),
        )
        .unwrap();

        // Lenient (startup) load skips the /1 record; strict (reload) refuses
        // the whole directory so the old registry keeps serving.
        let spec = ReloadSpec {
            defaults: false,
            table_dirs: vec![dir.clone()],
            checkpoints: Vec::new(),
            error_budget: 0.0,
            cell_budgets: Vec::new(),
        };
        let lenient = BackendRegistry::load(&spec, false).expect("lenient load succeeds");
        assert_eq!(
            lenient.ids(),
            vec!["matrix:mca:haswell:llvm_mca", "policy:mca:haswell:llvm_mca"]
        );
        let error = BackendRegistry::load(&spec, true).unwrap_err();
        assert!(error.contains("difftune-matrix/1"), "{error}");
        assert!(error.contains("refusing to reload"), "{error}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_refuses_an_empty_spec_and_reports_fingerprint_sets() {
        let error = BackendRegistry::load(&ReloadSpec::default(), true).unwrap_err();
        assert!(error.contains("no backends"), "{error}");

        let registry = BackendRegistry::load(
            &ReloadSpec {
                defaults: true,
                ..ReloadSpec::default()
            },
            true,
        )
        .expect("defaults alone are a valid spec");
        let fingerprints = registry.cache_fingerprints();
        assert_eq!(
            fingerprints.len(),
            registry.len(),
            "every backend has a distinct cache fingerprint"
        );
    }

    #[test]
    fn candidate_ids_follow_the_resolution_contract() {
        let query = BackendQuery::default();
        assert_eq!(
            query.candidate_ids(),
            vec![
                "policy:mca:haswell:llvm_mca",
                "matrix:mca:haswell:llvm_mca",
                "checkpoint:mca:haswell:llvm_mca",
                "default:mca:haswell",
            ]
        );
        let pinned = BackendQuery {
            source: Some(Source::Default),
            ..BackendQuery::default()
        };
        assert_eq!(pinned.candidate_ids(), vec!["default:mca:haswell"]);
    }

    #[test]
    fn missing_backends_resolve_to_an_error_naming_the_options() {
        let registry = BackendRegistry::with_defaults();
        let error = registry
            .resolve(&BackendQuery {
                source: Some(Source::Matrix),
                ..BackendQuery::default()
            })
            .unwrap_err();
        assert!(error.contains("matrix:mca:haswell:llvm_mca"), "{error}");
        assert!(error.contains("default:mca:haswell"), "{error}");
    }

    #[test]
    fn shared_tables_get_distinct_cache_fingerprints_per_simulator() {
        // default:mca:haswell and default:uop:haswell share the same table;
        // their predictions differ, so their cache identities must too.
        let registry = BackendRegistry::with_defaults();
        let mca = registry
            .resolve(&BackendQuery {
                source: Some(Source::Default),
                ..BackendQuery::default()
            })
            .unwrap();
        let uop = registry
            .resolve(&BackendQuery {
                simulator: SimulatorKind::Uop,
                source: Some(Source::Default),
                ..BackendQuery::default()
            })
            .unwrap();
        assert_eq!(mca.table_fingerprint, uop.table_fingerprint);
        assert_ne!(mca.cache_fingerprint, uop.cache_fingerprint);
    }

    /// A tiny but genuine surrogate artifact over a perturbed default table.
    fn fake_artifact(cell: &str, uarch: Microarch) -> SurrogateArtifact {
        use difftune_surrogate::{FeatureMlpConfig, FeatureMlpModel, ModelConfig};
        let config = FeatureMlpConfig {
            hidden_dim: 8,
            parameter_inputs: true,
            seed: 3,
        };
        let model = FeatureMlpModel::new(config);
        let mut table = default_params(uarch);
        table.per_inst[7].write_latency += 1;
        SurrogateArtifact::new(cell, ModelConfig::Mlp(config), &model, &table)
    }

    #[test]
    fn surrogate_artifacts_become_explicit_source_backends() {
        let mut registry = BackendRegistry::with_defaults();
        registry
            .add_surrogate_artifact(&fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell))
            .expect("a consistent artifact loads");

        // Sourceless resolution still prefers tables; the surrogate answers
        // only when asked for.
        let sourceless = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(sourceless.id, "default:mca:haswell");
        let surrogate = registry
            .resolve(&BackendQuery {
                source: Some(Source::Surrogate),
                ..BackendQuery::default()
            })
            .unwrap();
        assert_eq!(surrogate.id, "surrogate:mca:haswell:llvm_mca");
        assert_eq!(surrogate.kind(), "surrogate");
        assert_ne!(surrogate.table, default_params(Microarch::Haswell));

        // The listing reports every predictor with kind and fingerprint.
        let entries = registry.entries();
        assert_eq!(entries.len(), registry.len());
        let ids: Vec<&String> = entries.iter().map(|(id, _, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "entries are sorted by id");
        let (_, kind, fingerprint) = entries
            .iter()
            .find(|(id, _, _)| id == "surrogate:mca:haswell:llvm_mca")
            .unwrap();
        assert_eq!(*kind, "surrogate");
        assert_eq!(*fingerprint, surrogate.table_fingerprint);
    }

    #[test]
    fn surrogate_predictions_match_the_in_process_forward_pass() {
        use difftune_surrogate::{block_param_features, global_features, Vocab};
        use difftune_tensor::{Graph, Var};

        let artifact = fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell);
        let mut registry = BackendRegistry::new();
        registry.add_surrogate_artifact(&artifact).unwrap();
        let backend = registry
            .resolve(&BackendQuery {
                source: Some(Source::Surrogate),
                ..BackendQuery::default()
            })
            .unwrap();

        let blocks: Vec<BasicBlock> = [
            "addq %rax, %rbx",
            "imulq %rbx, %rcx\naddq %rcx, %rax",
            "movq (%rdi), %rax\naddq %rax, %rbx",
        ]
        .iter()
        .map(|text| text.parse().unwrap())
        .collect();

        // In-process reference: a fresh taped forward pass per block.
        let model = artifact.load_model().unwrap();
        let table = artifact.table();
        let vocab = Vocab::new();
        let global = global_features(&table);
        let expected: Vec<f64> = blocks
            .iter()
            .map(|block| {
                let tokenized = vocab.tokenize_block(block);
                let features = block_param_features(&table, &tokenized);
                let mut graph = Graph::new(model.params());
                let feature_vars: Vec<Var> =
                    features.iter().map(|f| graph.input(f.clone())).collect();
                let global_var = graph.input(global.clone());
                let prediction = model.forward(
                    &mut graph,
                    &tokenized,
                    Some(&feature_vars),
                    Some(global_var),
                );
                f64::from(graph.value(prediction)[0])
            })
            .collect();

        // Served path (compiled replay), twice: cold cache and warm cache
        // must both be bit-equal to the reference.
        for _ in 0..2 {
            let served = backend.predictor.predict_batch(&blocks);
            let served_bits: Vec<u64> = served.iter().map(|v| v.to_bits()).collect();
            let expected_bits: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
            assert_eq!(served_bits, expected_bits);
        }
    }

    #[test]
    fn tampered_surrogate_artifacts_are_rejected() {
        let mut registry = BackendRegistry::new();
        let mut tampered = fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell);
        tampered.learned_table[0] += 1.0;
        assert!(registry
            .add_surrogate_artifact(&tampered)
            .unwrap_err()
            .contains("fingerprint"));
        assert!(registry.is_empty());
    }

    #[test]
    fn surrogate_artifacts_load_from_table_directories() {
        let dir = std::env::temp_dir().join(format!(
            "difftune-serve-surrogate-{}-{:x}",
            std::process::id(),
            fnv1a("surrogate_dir".bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");

        let record = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        std::fs::write(dir.join(record.file_name()), record.to_json()).unwrap();
        let artifact = fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell);
        std::fs::write(dir.join(artifact.file_name()), artifact.to_json()).unwrap();

        let mut registry = BackendRegistry::new();
        let added = registry.add_matrix_dir(&dir).unwrap();
        assert_eq!(added, 2, "the record and the artifact both load");
        assert_eq!(
            registry.ids(),
            vec![
                "matrix:mca:haswell:llvm_mca",
                "policy:mca:haswell:llvm_mca",
                "surrogate:mca:haswell:llvm_mca"
            ]
        );

        // An artifact of an unknown schema generation is skipped leniently
        // and fatal strictly, like unservable matrix schemas.
        let mut future = serde_json::from_str_value(&artifact.to_json()).unwrap();
        if let serde::Value::Map(entries) = &mut future {
            for (key, entry) in entries.iter_mut() {
                if key == "schema" {
                    *entry = serde::Value::Str("difftune-surrogate/999".to_string());
                }
            }
        }
        std::fs::write(
            dir.join("SURROGATE_mca_skylake_llvm_mca.json"),
            serde_json::to_string(&future).unwrap(),
        )
        .unwrap();
        let mut lenient = BackendRegistry::new();
        assert_eq!(lenient.add_matrix_dir(&dir).unwrap(), 2);
        let spec = ReloadSpec {
            defaults: false,
            table_dirs: vec![dir.clone()],
            checkpoints: Vec::new(),
            error_budget: 0.0,
            cell_budgets: Vec::new(),
        };
        let error = BackendRegistry::load(&spec, true).unwrap_err();
        assert!(error.contains("difftune-surrogate/999"), "{error}");

        std::fs::remove_dir_all(&dir).ok();
    }

    use crate::policy::{TIER_SIMULATOR, TIER_SURROGATE};

    /// [`fake_record`] with a measured surrogate-vs-simulator MAPE.
    fn fake_record_with_mape(cell: &str, uarch: Microarch, mape: f64) -> MatrixRecord {
        MatrixRecord {
            surrogate_vs_sim_mape: Some(mape),
            ..fake_record(cell, uarch)
        }
    }

    fn parse_block(text: &str) -> BasicBlock {
        text.parse().expect("test blocks parse")
    }

    #[test]
    fn policies_gate_the_surrogate_tier_on_the_error_budget() {
        let mut registry = BackendRegistry::with_defaults();
        registry
            .add_matrix_record(&fake_record_with_mape(
                "mca:haswell:llvm_mca",
                Microarch::Haswell,
                5.0,
            ))
            .unwrap();
        registry
            .add_surrogate_artifact(&fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell))
            .unwrap();
        let block = parse_block("addq %rax, %rbx");
        let matrix = registry
            .resolve(&BackendQuery {
                source: Some(Source::Matrix),
                ..BackendQuery::default()
            })
            .unwrap();
        let surrogate = registry
            .resolve(&BackendQuery {
                source: Some(Source::Surrogate),
                ..BackendQuery::default()
            })
            .unwrap();

        // Default budget 0.0 < MAPE 5.0: the policy serves the simulator.
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.id, "policy:mca:haswell:llvm_mca");
        assert_eq!(policy.predictor.tier_tag(&block), TIER_SIMULATOR);
        assert_eq!(
            policy.predictor.predict_batch(std::slice::from_ref(&block))[0].to_bits(),
            matrix.predictor.predict_batch(std::slice::from_ref(&block))[0].to_bits(),
            "tier 3 answers with the learned table's exact bits"
        );

        // Budget 10.0 >= MAPE 5.0: tier 2 opens for replayable blocks.
        registry.set_error_budget(10.0);
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.predictor.tier_tag(&block), TIER_SURROGATE);
        assert_eq!(
            policy.predictor.predict_batch(std::slice::from_ref(&block))[0].to_bits(),
            surrogate
                .predictor
                .predict_batch(std::slice::from_ref(&block))[0]
                .to_bits(),
            "tier 2 answers with the surrogate's exact bits"
        );

        // Tightening the budget below the MAPE closes tier 2 again, and the
        // rebuilt policy has a new cache identity (stale entries retire).
        let open_fingerprint = policy.cache_fingerprint;
        registry.set_error_budget(1.0);
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.predictor.tier_tag(&block), TIER_SIMULATOR);
        assert_ne!(policy.cache_fingerprint, open_fingerprint);
    }

    #[test]
    fn an_unmeasured_surrogate_only_clears_an_infinite_budget() {
        let mut registry = BackendRegistry::new();
        registry
            .add_matrix_record(&fake_record("mca:haswell:llvm_mca", Microarch::Haswell))
            .unwrap();
        registry
            .add_surrogate_artifact(&fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell))
            .unwrap();
        let block = parse_block("addq %rax, %rbx");

        registry.set_error_budget(1e12);
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(
            policy.predictor.tier_tag(&block),
            TIER_SIMULATOR,
            "no recorded MAPE means no finite budget vouches for tier 2"
        );

        registry.set_error_budget(f64::INFINITY);
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.predictor.tier_tag(&block), TIER_SURROGATE);
    }

    #[test]
    fn matrix_tables_win_the_policy_over_checkpoint_tables() {
        let record = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        let checkpoint_table = default_params(Microarch::Haswell);
        assert_ne!(checkpoint_table.to_flat(), record.learned_table);

        // Checkpoint first, then matrix: the matrix table takes the policy.
        let mut registry = BackendRegistry::new();
        registry.register(Backend::new(
            Source::Checkpoint,
            SimulatorKind::Mca,
            Microarch::Haswell,
            Some(SpecKind::LlvmMca),
            checkpoint_table.clone(),
        ));
        registry.add_matrix_record(&record).unwrap();
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.id, "policy:mca:haswell:llvm_mca");
        assert_eq!(policy.table.to_flat(), record.learned_table);

        // Matrix first, then checkpoint: same winner.
        let mut registry = BackendRegistry::new();
        registry.add_matrix_record(&record).unwrap();
        registry.register(Backend::new(
            Source::Checkpoint,
            SimulatorKind::Mca,
            Microarch::Haswell,
            Some(SpecKind::LlvmMca),
            checkpoint_table.clone(),
        ));
        registry.refresh_policies();
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.table.to_flat(), record.learned_table);

        // A checkpoint-only cell still gets a policy.
        let mut registry = BackendRegistry::new();
        registry.register(Backend::new(
            Source::Checkpoint,
            SimulatorKind::Mca,
            Microarch::Haswell,
            Some(SpecKind::LlvmMca),
            checkpoint_table.clone(),
        ));
        registry.refresh_policies();
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(policy.table, checkpoint_table);
    }

    #[test]
    fn corrupt_surrogate_artifacts_degrade_the_cell_to_table_only() {
        let dir = std::env::temp_dir().join(format!(
            "difftune-serve-corrupt-{}-{:x}",
            std::process::id(),
            fnv1a("corrupt_artifact".bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");

        let record = fake_record_with_mape("mca:haswell:llvm_mca", Microarch::Haswell, 0.5);
        std::fs::write(dir.join(record.file_name()), record.to_json()).unwrap();
        let mut tampered = fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell);
        tampered.learned_table[0] += 1.0;
        std::fs::write(dir.join(tampered.file_name()), tampered.to_json()).unwrap();

        // Lenient (startup) load: the corrupt artifact becomes a structured
        // warning, the cell serves table-only, and its policy pins tier 3
        // even under a budget that would otherwise open tier 2.
        let mut registry = BackendRegistry::new();
        registry.set_error_budget(f64::INFINITY);
        let added = registry.add_matrix_dir(&dir).unwrap();
        assert_eq!(added, 1, "only the record loads");
        assert_eq!(
            registry.ids(),
            vec!["matrix:mca:haswell:llvm_mca", "policy:mca:haswell:llvm_mca"]
        );
        assert_eq!(registry.warnings().len(), 1);
        assert!(
            registry.warnings()[0].contains("tier 3"),
            "{:?}",
            registry.warnings()
        );
        let policy = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(
            policy.predictor.tier_tag(&parse_block("addq %rax, %rbx")),
            TIER_SIMULATOR
        );

        // Strict (reload) load refuses the directory outright.
        let spec = ReloadSpec {
            defaults: false,
            table_dirs: vec![dir.clone()],
            checkpoints: Vec::new(),
            error_budget: f64::INFINITY,
            cell_budgets: Vec::new(),
        };
        let error = BackendRegistry::load(&spec, true).unwrap_err();
        assert!(error.contains("fingerprint"), "{error}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn surrogate_engine_pool_predicts_concurrently_without_changing_bits() {
        let artifact = fake_artifact("mca:haswell:llvm_mca", Microarch::Haswell);
        let predictor = SurrogatePredictor::new(&artifact).unwrap();
        let blocks: Vec<BasicBlock> = [
            "addq %rax, %rbx",
            "imulq %rbx, %rcx\naddq %rcx, %rax",
            "movq (%rdi), %rax\naddq %rax, %rbx",
        ]
        .iter()
        .map(|text| parse_block(text))
        .collect();
        let serial: Vec<u64> = predictor
            .predict_batch(&blocks)
            .iter()
            .map(|v| v.to_bits())
            .collect();

        // Two engines checked out at once: the second is minted on demand —
        // the pool never serializes concurrent batches on one lock — and a
        // fresh engine's bits equal a warm engine's by the replay contract.
        let mut first = predictor.checkout();
        let mut second = predictor.checkout();
        for engine in [&mut first, &mut second] {
            let bits: Vec<u64> = engine
                .predict_batch(&blocks)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(bits, serial);
        }
        predictor.checkin(first);
        predictor.checkin(second);
        assert_eq!(
            predictor.pooled_engines(),
            2,
            "the pool grew under concurrency"
        );

        // And genuinely concurrent callers all get the serial bits.
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        predictor
                            .predict_batch(&blocks)
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            for handle in handles {
                assert_eq!(handle.join().expect("no panic"), serial);
            }
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 48,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// The tier choice is a pure function of `(block, effective budget,
        /// cell metadata)`: two independently built policies over the same
        /// inputs agree on every generated block, repeated queries never
        /// flip, and running predictions in between changes nothing. The
        /// effective budget is the cell's override when one is set
        /// (`--error-budget CELL=BUDGET`) and the global budget otherwise —
        /// mixed-budget fleets gate each cell independently.
        #[test]
        fn tier_choice_is_a_pure_function_of_block_budget_and_metadata(
            seed in 0u64..10_000,
            budget in 0.0f64..20.0,
            cell_budget in proptest::option::of(0.0f64..20.0),
            mape in proptest::option::of(0.0f64..20.0),
        ) {
            use difftune_isa::{BlockGenerator, GeneratorConfig};
            use rand::{rngs::StdRng, SeedableRng};

            let build = || {
                let mut registry = BackendRegistry::new();
                let mut record =
                    fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
                record.surrogate_vs_sim_mape = mape;
                registry.add_matrix_record(&record).unwrap();
                registry
                    .add_surrogate_artifact(&fake_artifact(
                        "mca:haswell:llvm_mca",
                        Microarch::Haswell,
                    ))
                    .unwrap();
                registry.set_error_budget(budget);
                if let Some(cell_budget) = cell_budget {
                    registry.set_cell_budget("mca:haswell:llvm_mca", cell_budget);
                }
                proptest::prop_assert_eq!(
                    registry.budget_for("mca:haswell:llvm_mca"),
                    cell_budget.unwrap_or(budget)
                );
                registry.resolve(&BackendQuery::default()).unwrap()
            };
            let (first, second) = (build(), build());
            let effective = cell_budget.unwrap_or(budget);

            let generator = BlockGenerator::new(GeneratorConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..8 {
                let block = generator.generate(&mut rng);
                let tier = first.predictor.tier_tag(&block);
                proptest::prop_assert!(tier == TIER_SURROGATE || tier == TIER_SIMULATOR);
                proptest::prop_assert_eq!(second.predictor.tier_tag(&block), tier);
                if tier == TIER_SURROGATE {
                    proptest::prop_assert!(mape.unwrap_or(f64::INFINITY) <= effective);
                }
                // A prediction in between must not perturb the choice.
                first.predictor.predict_batch(std::slice::from_ref(&block));
                proptest::prop_assert_eq!(first.predictor.tier_tag(&block), tier);
            }
        }
    }
}
