//! Servable backends: a parameter table bound to a simulator.
//!
//! Three table sources are supported, mirroring the artifacts the rest of
//! the repository produces:
//!
//! * **default** — the expert-documentation tables
//!   ([`difftune_cpu::default_params`]), one per `(simulator, uarch)` pair;
//! * **checkpoint** — the learned θ inside a finished session
//!   [`RunCheckpoint`] (the `--checkpoint SIM:UARCH:SPEC=PATH` flag);
//! * **matrix** — `MATRIX_*.json` cell records from a `difftune-matrix`
//!   sweep (schema `difftune-matrix/2` carries the learned table's flat
//!   encoding), so every tuned scenario cell is directly servable.
//!
//! Every loaded table is integrity-checked: the reconstructed table's
//! [`SimParams::stable_fingerprint`] must match the fingerprint recorded in
//! the artifact, so a truncated or hand-edited file is rejected at load time
//! instead of silently serving wrong timings.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use difftune::RunCheckpoint;
use difftune_bench::matrix::{CellKey, SimulatorKind, SpecKind};
use difftune_bench::record::{fnv1a, MatrixRecord, MATRIX_SCHEMA};
use difftune_cpu::{default_params, Microarch};
use difftune_sim::{ParamBounds, SimParams, Simulator};

/// Where a backend's parameter table came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// Expert-documentation defaults.
    Default,
    /// A finished session checkpoint's learned θ.
    Checkpoint,
    /// A `difftune-matrix` cell record.
    Matrix,
}

impl Source {
    /// The short name used in backend ids and request `source` fields.
    pub fn key(self) -> &'static str {
        match self {
            Source::Default => "default",
            Source::Checkpoint => "checkpoint",
            Source::Matrix => "matrix",
        }
    }

    /// Parses a request `source` field.
    pub fn parse(raw: &str) -> Result<Source, String> {
        match raw.to_ascii_lowercase().as_str() {
            "default" => Ok(Source::Default),
            "checkpoint" => Ok(Source::Checkpoint),
            "matrix" => Ok(Source::Matrix),
            other => Err(format!(
                "unknown source `{other}`: valid sources are \"default\", \"checkpoint\", and \
                 \"matrix\""
            )),
        }
    }
}

/// One servable backend: a simulator plus the parameter table it runs.
#[derive(Debug)]
pub struct Backend {
    /// The backend id (`<source>:<sim>:<uarch>` for defaults,
    /// `<source>:<sim>:<uarch>:<spec>` for learned tables) — echoed in every
    /// `/predict` response.
    pub id: String,
    /// The table's source.
    pub source: Source,
    /// The simulator family.
    pub simulator_kind: SimulatorKind,
    /// The microarchitecture the table targets.
    pub uarch: Microarch,
    /// The parameter spec a learned table was tuned under (`None` for
    /// defaults, which exist independently of any spec).
    pub spec: Option<SpecKind>,
    /// The simulator instance answering predictions.
    pub simulator: Box<dyn Simulator>,
    /// The parameter table.
    pub table: SimParams,
    /// The table digest in artifact rendering (`{:#018x}`), echoed in
    /// responses so clients can pin the exact table they were answered from.
    pub table_fingerprint: String,
    /// Cache/shard fingerprint: the table digest folded with the simulator
    /// kind. Two backends sharing a table but not a simulator (e.g. the mca
    /// and uop defaults of one uarch) predict differently, so the cache key
    /// must separate them.
    pub cache_fingerprint: u64,
}

impl Backend {
    fn new(
        source: Source,
        simulator_kind: SimulatorKind,
        uarch: Microarch,
        spec: Option<SpecKind>,
        table: SimParams,
    ) -> Self {
        let id = match spec {
            Some(spec) => format!(
                "{}:{}:{}:{}",
                source.key(),
                simulator_kind.key(),
                uarch.key(),
                spec.key()
            ),
            None => format!("{}:{}:{}", source.key(), simulator_kind.key(), uarch.key()),
        };
        let table_digest = table.stable_fingerprint();
        let cache_fingerprint = fnv1a(
            simulator_kind
                .key()
                .bytes()
                .chain([0xff])
                .chain(table_digest.to_le_bytes()),
        );
        Backend {
            id,
            source,
            simulator_kind,
            uarch,
            spec,
            simulator: simulator_kind.build(),
            table_fingerprint: table.fingerprint_hex(),
            table,
            cache_fingerprint,
        }
    }

    /// The shard this backend's requests are routed to, out of `shards`
    /// workers. Derived from [`Backend::cache_fingerprint`], so a backend
    /// always lands on the same shard and its cache entries never split.
    pub fn shard_index(&self, shards: usize) -> usize {
        (self.cache_fingerprint % shards.max(1) as u64) as usize
    }
}

/// A `/predict` request's backend selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendQuery {
    /// Requested simulator (default `mca`).
    pub simulator: SimulatorKind,
    /// Requested microarchitecture (default `haswell`).
    pub uarch: Microarch,
    /// Requested spec (default `llvm_mca`; ignored for the `default` source).
    pub spec: SpecKind,
    /// Requested source; `None` resolves learned-first
    /// (matrix → checkpoint → default).
    pub source: Option<Source>,
}

impl Default for BackendQuery {
    fn default() -> Self {
        BackendQuery {
            simulator: SimulatorKind::Mca,
            uarch: Microarch::Haswell,
            spec: SpecKind::LlvmMca,
            source: None,
        }
    }
}

impl BackendQuery {
    /// The backend id this query names under one specific source.
    pub fn id_for(&self, source: Source) -> String {
        match source {
            Source::Default => format!("default:{}:{}", self.simulator.key(), self.uarch.key()),
            _ => format!(
                "{}:{}:{}:{}",
                source.key(),
                self.simulator.key(),
                self.uarch.key(),
                self.spec.key()
            ),
        }
    }

    /// The candidate backend ids in resolution order: the exact id when a
    /// source is pinned, otherwise learned-first (`matrix` → `checkpoint` →
    /// `default`). This order is the resolution contract — the registry and
    /// the routing tier both resolve through it, so a request hashes to the
    /// same backend identity no matter which process resolves it.
    pub fn candidate_ids(&self) -> Vec<String> {
        match self.source {
            Some(source) => vec![self.id_for(source)],
            None => [Source::Matrix, Source::Checkpoint, Source::Default]
                .iter()
                .map(|&source| self.id_for(source))
                .collect(),
        }
    }
}

/// What the server loaded at startup — and what `POST /reload` rescans. The
/// spec is source *locations*, not tables: a reload re-reads every artifact,
/// fingerprint-verifies it, and only then swaps the registry.
#[derive(Debug, Clone, Default)]
pub struct ReloadSpec {
    /// Load the expert default tables for every `(simulator, uarch)` pair.
    pub defaults: bool,
    /// `MATRIX_*.json` directories (`--tables`).
    pub table_dirs: Vec<PathBuf>,
    /// Session checkpoints with their cell bindings (`--checkpoint`).
    pub checkpoints: Vec<(CellKey, PathBuf)>,
}

/// The set of loaded backends, keyed for per-request resolution.
#[derive(Debug, Default)]
pub struct BackendRegistry {
    /// Backends by id (the resolution and listing index).
    backends: BTreeMap<String, Arc<Backend>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry::default()
    }

    /// A registry pre-loaded with the expert default table for every
    /// `(simulator, uarch)` pair — the baseline backends that exist without
    /// any artifact on disk.
    pub fn with_defaults() -> Self {
        let mut registry = BackendRegistry::new();
        for simulator in SimulatorKind::ALL {
            for uarch in Microarch::ALL {
                registry.register(Backend::new(
                    Source::Default,
                    simulator,
                    uarch,
                    None,
                    default_params(uarch),
                ));
            }
        }
        registry
    }

    fn register(&mut self, backend: Backend) {
        self.backends.insert(backend.id.clone(), Arc::new(backend));
    }

    /// Number of loaded backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when no backend is loaded.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Every backend id, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.backends.keys().cloned().collect()
    }

    /// Builds a registry from a [`ReloadSpec`] — the startup *and* hot-reload
    /// loading path, so the two cannot drift apart.
    ///
    /// `strict` controls how pre-`difftune-matrix/2` records are treated: at
    /// startup (`false`) they are skipped with a warning, because a sweep
    /// directory legitimately accumulates old records; on reload (`true`)
    /// they are errors, because the operator explicitly asked to serve that
    /// directory's current contents and a silently unservable table is a
    /// torn deploy.
    ///
    /// # Errors
    ///
    /// Any artifact failure (unreadable file, parse failure, fingerprint
    /// mismatch, and — when `strict` — an unservable schema). On error no
    /// registry is produced, so a reload keeps serving the old one.
    pub fn load(spec: &ReloadSpec, strict: bool) -> Result<BackendRegistry, String> {
        let mut registry = if spec.defaults {
            BackendRegistry::with_defaults()
        } else {
            BackendRegistry::new()
        };
        for dir in &spec.table_dirs {
            registry.add_matrix_dir_with(dir, strict)?;
        }
        for (key, path) in &spec.checkpoints {
            registry.add_checkpoint(key, path)?;
        }
        if registry.is_empty() {
            return Err("the reload spec yields no backends at all".to_string());
        }
        Ok(registry)
    }

    /// Every loaded backend's cache/shard fingerprint. Reload diffs two of
    /// these sets to find which shards' caches hold entries for tables that
    /// no longer exist.
    pub fn cache_fingerprints(&self) -> BTreeSet<u64> {
        self.backends
            .values()
            .map(|backend| backend.cache_fingerprint)
            .collect()
    }

    /// Loads every servable `MATRIX_*.json` cell record in a directory.
    /// Returns the number of backends added.
    ///
    /// # Errors
    ///
    /// Reports unreadable directories and corrupt records (parse failures,
    /// wrong schema, fingerprint mismatches). `MATRIX_summary.json` and
    /// `MATRIX_ckpt_*.json` files are skipped, as are records whose schema
    /// predates `difftune-matrix/2` (they carry no table to serve).
    pub fn add_matrix_dir(&mut self, dir: &Path) -> Result<usize, String> {
        self.add_matrix_dir_with(dir, false)
    }

    /// [`BackendRegistry::add_matrix_dir`] with an explicit strictness: when
    /// `strict`, a record whose schema predates `difftune-matrix/2` is an
    /// error instead of a skip (the hot-reload policy).
    ///
    /// # Errors
    ///
    /// See [`BackendRegistry::add_matrix_dir`]; additionally, unservable
    /// schemas when `strict`.
    pub fn add_matrix_dir_with(&mut self, dir: &Path, strict: bool) -> Result<usize, String> {
        let entries = std::fs::read_dir(dir)
            .map_err(|error| format!("cannot read table directory {}: {error}", dir.display()))?;
        let mut names: Vec<String> = entries
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| {
                name.starts_with("MATRIX_")
                    && name.ends_with(".json")
                    && name != "MATRIX_summary.json"
                    && !name.starts_with("MATRIX_ckpt_")
            })
            .collect();
        names.sort();

        let mut added = 0;
        for name in names {
            let path = dir.join(&name);
            let json = std::fs::read_to_string(&path)
                .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
            // Check the schema tag on the raw value tree *before* the typed
            // parse: pre-/2 records are missing `learned_table`, so parsing
            // them as a MatrixRecord fails — and they should be skipped as
            // legitimately unservable, not reported as corrupt.
            let schema = serde_json::from_str_value(&json)
                .ok()
                .and_then(|value| {
                    value
                        .get("schema")
                        .and_then(|s| s.as_str().map(String::from))
                })
                .ok_or_else(|| format!("{}: not a matrix cell record", path.display()))?;
            if schema != MATRIX_SCHEMA {
                if strict {
                    return Err(format!(
                        "{}: schema {schema:?} has no learned table (need {MATRIX_SCHEMA}); \
                         refusing to reload from a directory with unservable records",
                        path.display(),
                    ));
                }
                eprintln!(
                    "[difftune-serve] {}: schema {schema:?} has no learned table; re-run the \
                     sweep to produce servable {MATRIX_SCHEMA} records",
                    path.display(),
                );
                continue;
            }
            let record = MatrixRecord::from_json(&json).map_err(|error| {
                format!("{}: not a matrix cell record: {error}", path.display())
            })?;
            self.add_matrix_record(&record)
                .map_err(|error| format!("{}: {error}", path.display()))?;
            added += 1;
        }
        Ok(added)
    }

    /// Registers one matrix cell record as a backend.
    ///
    /// # Errors
    ///
    /// Reports an unparsable cell id, an empty or truncated `learned_table`,
    /// and any fingerprint mismatch between the reconstructed table and the
    /// record.
    pub fn add_matrix_record(&mut self, record: &MatrixRecord) -> Result<(), String> {
        let key = CellKey::parse(&record.cell)
            .map_err(|error| format!("cell id {:?}: {error}", record.cell))?;
        if record.learned_table.is_empty() {
            return Err(format!("cell {} has an empty learned_table", record.cell));
        }
        let table = SimParams::from_flat(&record.learned_table, &ParamBounds::default());
        let fingerprint = table.fingerprint_hex();
        if fingerprint != record.table_fingerprint {
            return Err(format!(
                "cell {}: reconstructed table fingerprints as {fingerprint} but the record says \
                 {} — the artifact is corrupt",
                record.cell, record.table_fingerprint
            ));
        }
        self.register(Backend::new(
            Source::Matrix,
            key.simulator,
            key.uarch,
            Some(key.spec),
            table,
        ));
        Ok(())
    }

    /// Loads a finished session checkpoint's learned θ as a backend for the
    /// given cell coordinates (checkpoints do not record what they tuned, so
    /// the caller supplies the binding).
    ///
    /// # Errors
    ///
    /// Reports unreadable/unparsable files and checkpoints without a learned
    /// table (θ exists only once the optimize stage has run).
    pub fn add_checkpoint(&mut self, key: &CellKey, path: &Path) -> Result<(), String> {
        let json = std::fs::read_to_string(path)
            .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
        let checkpoint = RunCheckpoint::from_json(&json)
            .map_err(|error| format!("{}: not a RunCheckpoint: {error}", path.display()))?;
        let theta = checkpoint.theta.as_ref().ok_or_else(|| {
            format!(
                "{}: checkpoint at stage {:?} has no learned θ yet (resume and finish the run \
                 first)",
                path.display(),
                checkpoint.stage
            )
        })?;
        self.register(Backend::new(
            Source::Checkpoint,
            key.simulator,
            key.uarch,
            Some(key.spec),
            theta.to_sim_params(),
        ));
        Ok(())
    }

    /// Resolves a request's backend.
    ///
    /// With an explicit `source` the exact backend must exist. Without one,
    /// learned tables win over defaults: `matrix`, then `checkpoint`, then
    /// `default`. The resolution order is fixed, so a given registry answers
    /// a given query identically on every request.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing backend and listing the loaded
    /// ids (the server surfaces it as `404`).
    pub fn resolve(&self, query: &BackendQuery) -> Result<Arc<Backend>, String> {
        let candidates = query.candidate_ids();
        for id in &candidates {
            if let Some(backend) = self.backends.get(id) {
                return Ok(Arc::clone(backend));
            }
        }
        Err(format!(
            "no backend for {} (loaded backends: {})",
            candidates.join(" / "),
            if self.backends.is_empty() {
                "none".to_string()
            } else {
                self.ids().join(", ")
            }
        ))
    }
}

/// FNV-1a fingerprint of a block's canonical text — the first half of the
/// prediction-cache key. Canonical text (rather than the client's spelling)
/// lets differently formatted requests for the same block share an entry.
pub fn block_fingerprint(canonical_text: &str) -> u64 {
    fnv1a(canonical_text.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_bench::record::{fingerprint_table, CategoryScore};

    /// A synthetic but internally consistent matrix record over a perturbed
    /// default table.
    fn fake_record(cell: &str, uarch: Microarch) -> MatrixRecord {
        let mut table = default_params(uarch);
        table.per_inst[5].write_latency += 2;
        MatrixRecord {
            schema: MATRIX_SCHEMA.to_string(),
            cell: cell.to_string(),
            simulator: "mca".to_string(),
            uarch: uarch.key().to_string(),
            spec: "llvm_mca".to_string(),
            scale: "smoke".to_string(),
            seed: 1,
            train_blocks: 1,
            heldout_blocks: 1,
            simulated_samples: 1,
            num_learned_parameters: 1,
            default_mape: 0.2,
            default_tau: 0.8,
            learned_mape: 0.2,
            learned_tau: 0.8,
            by_category: Vec::<CategoryScore>::new(),
            table_fingerprint: fingerprint_table(&table),
            learned_table: table.to_flat(),
        }
    }

    #[test]
    fn defaults_cover_every_simulator_uarch_pair() {
        let registry = BackendRegistry::with_defaults();
        assert_eq!(
            registry.len(),
            SimulatorKind::ALL.len() * Microarch::ALL.len()
        );
        let backend = registry
            .resolve(&BackendQuery::default())
            .expect("default haswell mca backend exists");
        assert_eq!(backend.id, "default:mca:haswell");
        assert_eq!(backend.table, default_params(Microarch::Haswell));
    }

    #[test]
    fn matrix_records_become_backends_and_win_sourceless_resolution() {
        let mut registry = BackendRegistry::with_defaults();
        registry
            .add_matrix_record(&fake_record("mca:haswell:llvm_mca", Microarch::Haswell))
            .expect("consistent record loads");

        let learned = registry.resolve(&BackendQuery::default()).unwrap();
        assert_eq!(learned.id, "matrix:mca:haswell:llvm_mca");
        assert_ne!(learned.table, default_params(Microarch::Haswell));

        // An explicit source still reaches the defaults.
        let defaults = registry
            .resolve(&BackendQuery {
                source: Some(Source::Default),
                ..BackendQuery::default()
            })
            .unwrap();
        assert_eq!(defaults.id, "default:mca:haswell");
    }

    #[test]
    fn corrupt_matrix_records_are_rejected() {
        let mut registry = BackendRegistry::new();

        let mut truncated = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        truncated.learned_table.clear();
        assert!(registry
            .add_matrix_record(&truncated)
            .unwrap_err()
            .contains("empty"));

        let mut tampered = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        tampered.learned_table[3] += 1.0;
        assert!(registry
            .add_matrix_record(&tampered)
            .unwrap_err()
            .contains("corrupt"));

        let bad_cell = MatrixRecord {
            cell: "not-a-cell".to_string(),
            ..fake_record("mca:haswell:llvm_mca", Microarch::Haswell)
        };
        assert!(registry.add_matrix_record(&bad_cell).is_err());
        assert!(registry.is_empty());
    }

    #[test]
    fn pre_v2_records_are_skipped_while_v2_records_load() {
        let dir = std::env::temp_dir().join(format!(
            "difftune-serve-prev2-{}-{:x}",
            std::process::id(),
            fnv1a("pre_v2".bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");

        // A servable /2 record.
        let v2 = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        std::fs::write(dir.join(v2.file_name()), v2.to_json()).unwrap();

        // A /1-era record: same shape minus `learned_table`, older schema
        // tag. It cannot even parse as today's MatrixRecord, so the loader
        // must skip it from the raw schema tag, not report corruption.
        let v1 = fake_record("mca:skylake:llvm_mca", Microarch::Skylake);
        let value = serde_json::from_str_value(&v1.to_json()).unwrap();
        let entries: Vec<(String, serde::Value)> = value
            .as_map()
            .unwrap()
            .iter()
            .filter(|(key, _)| key != "learned_table")
            .map(|(key, entry)| {
                if key == "schema" {
                    (
                        key.clone(),
                        serde::Value::Str("difftune-matrix/1".to_string()),
                    )
                } else {
                    (key.clone(), entry.clone())
                }
            })
            .collect();
        std::fs::write(
            dir.join(v1.file_name()),
            serde_json::to_string(&serde::Value::Map(entries)).unwrap(),
        )
        .unwrap();

        // Summary and checkpoint files are ignored by name.
        std::fs::write(dir.join("MATRIX_summary.json"), "{}").unwrap();
        std::fs::write(dir.join("MATRIX_ckpt_mca_haswell_llvm_mca.json"), "{}").unwrap();

        let mut registry = BackendRegistry::new();
        let added = registry
            .add_matrix_dir(&dir)
            .expect("the /1 record must not be fatal");
        assert_eq!(added, 1, "exactly the /2 record loads");
        assert_eq!(registry.ids(), vec!["matrix:mca:haswell:llvm_mca"]);

        // Garbage in a MATRIX_*.json name is still a hard error.
        std::fs::write(dir.join("MATRIX_bogus_cell_garbage.json"), "not json").unwrap();
        assert!(registry
            .add_matrix_dir(&dir)
            .unwrap_err()
            .contains("not a matrix cell record"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_loading_rejects_pre_v2_records_instead_of_skipping() {
        let dir = std::env::temp_dir().join(format!(
            "difftune-serve-strict-{}-{:x}",
            std::process::id(),
            fnv1a("strict".bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is writable");

        let v2 = fake_record("mca:haswell:llvm_mca", Microarch::Haswell);
        std::fs::write(dir.join(v2.file_name()), v2.to_json()).unwrap();
        let v1 = fake_record("mca:skylake:llvm_mca", Microarch::Skylake);
        let mut v1_json = serde_json::from_str_value(&v1.to_json()).unwrap();
        if let serde::Value::Map(entries) = &mut v1_json {
            for (key, entry) in entries.iter_mut() {
                if key == "schema" {
                    *entry = serde::Value::Str("difftune-matrix/1".to_string());
                }
            }
        }
        std::fs::write(
            dir.join(v1.file_name()),
            serde_json::to_string(&v1_json).unwrap(),
        )
        .unwrap();

        // Lenient (startup) load skips the /1 record; strict (reload) refuses
        // the whole directory so the old registry keeps serving.
        let spec = ReloadSpec {
            defaults: false,
            table_dirs: vec![dir.clone()],
            checkpoints: Vec::new(),
        };
        let lenient = BackendRegistry::load(&spec, false).expect("lenient load succeeds");
        assert_eq!(lenient.ids(), vec!["matrix:mca:haswell:llvm_mca"]);
        let error = BackendRegistry::load(&spec, true).unwrap_err();
        assert!(error.contains("difftune-matrix/1"), "{error}");
        assert!(error.contains("refusing to reload"), "{error}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_refuses_an_empty_spec_and_reports_fingerprint_sets() {
        let error = BackendRegistry::load(&ReloadSpec::default(), true).unwrap_err();
        assert!(error.contains("no backends"), "{error}");

        let registry = BackendRegistry::load(
            &ReloadSpec {
                defaults: true,
                ..ReloadSpec::default()
            },
            true,
        )
        .expect("defaults alone are a valid spec");
        let fingerprints = registry.cache_fingerprints();
        assert_eq!(
            fingerprints.len(),
            registry.len(),
            "every backend has a distinct cache fingerprint"
        );
    }

    #[test]
    fn candidate_ids_follow_the_resolution_contract() {
        let query = BackendQuery::default();
        assert_eq!(
            query.candidate_ids(),
            vec![
                "matrix:mca:haswell:llvm_mca",
                "checkpoint:mca:haswell:llvm_mca",
                "default:mca:haswell",
            ]
        );
        let pinned = BackendQuery {
            source: Some(Source::Default),
            ..BackendQuery::default()
        };
        assert_eq!(pinned.candidate_ids(), vec!["default:mca:haswell"]);
    }

    #[test]
    fn missing_backends_resolve_to_an_error_naming_the_options() {
        let registry = BackendRegistry::with_defaults();
        let error = registry
            .resolve(&BackendQuery {
                source: Some(Source::Matrix),
                ..BackendQuery::default()
            })
            .unwrap_err();
        assert!(error.contains("matrix:mca:haswell:llvm_mca"), "{error}");
        assert!(error.contains("default:mca:haswell"), "{error}");
    }

    #[test]
    fn shared_tables_get_distinct_cache_fingerprints_per_simulator() {
        // default:mca:haswell and default:uop:haswell share the same table;
        // their predictions differ, so their cache identities must too.
        let registry = BackendRegistry::with_defaults();
        let mca = registry
            .resolve(&BackendQuery {
                source: Some(Source::Default),
                ..BackendQuery::default()
            })
            .unwrap();
        let uop = registry
            .resolve(&BackendQuery {
                simulator: SimulatorKind::Uop,
                source: Some(Source::Default),
                ..BackendQuery::default()
            })
            .unwrap();
        assert_eq!(mca.table_fingerprint, uop.table_fingerprint);
        assert_ne!(mca.cache_fingerprint, uop.cache_fingerprint);
    }

    #[test]
    fn source_parsing_round_trips_and_rejects_unknowns() {
        for source in [Source::Default, Source::Checkpoint, Source::Matrix] {
            assert_eq!(Source::parse(source.key()), Ok(source));
        }
        assert!(Source::parse("s3").unwrap_err().contains("matrix"));
    }
}
