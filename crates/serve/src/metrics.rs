//! Request, cache, and latency counters behind `GET /metrics`.
//!
//! Plain atomics — no histogram buckets or exporters — rendered in the
//! Prometheus text exposition format so standard scrapers parse it. Latency
//! and request counters additionally carry an `endpoint` label so `/predict`
//! time is distinguishable from `/metrics` scrapes, and hot reloads tick
//! `difftune_backend_reloads_total` so table swaps are observable. The
//! counters are observability only: nothing here feeds back into request
//! handling, and (unlike `/predict` bodies) the values are wall-clock- and
//! scheduling-dependent, which is why the determinism suite never compares
//! `/metrics` output.

use std::sync::atomic::{AtomicU64, Ordering};

/// The endpoints the service meters separately. `Other` covers 404s and any
/// future unlabeled path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /predict`.
    Predict,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `GET /backends`.
    Backends,
    /// `POST /reload`.
    Reload,
    /// `POST /drain`.
    Drain,
    /// Anything else (unknown paths, protocol errors).
    Other,
}

impl Endpoint {
    /// Every endpoint, in render order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Predict,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Backends,
        Endpoint::Reload,
        Endpoint::Drain,
        Endpoint::Other,
    ];

    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Backends => "backends",
            Endpoint::Reload => "reload",
            Endpoint::Drain => "drain",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request path.
    pub fn from_path(path: &str) -> Endpoint {
        match path {
            "/predict" => Endpoint::Predict,
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            "/backends" => Endpoint::Backends,
            "/reload" => Endpoint::Reload,
            "/drain" => Endpoint::Drain,
            _ => Endpoint::Other,
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|&endpoint| endpoint == self)
            .expect("every endpoint is in ALL")
    }
}

/// Monotonic service counters. All methods are lock-free and callable from
/// every connection and shard thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully parsed off a connection (any endpoint).
    requests_total: AtomicU64,
    /// `/predict` requests answered with 200.
    predict_requests_total: AtomicU64,
    /// Blocks predicted inside those requests (batched requests count once
    /// per block).
    predict_blocks_total: AtomicU64,
    /// Blocks answered from the prediction cache.
    cache_hits_total: AtomicU64,
    /// Blocks that had to run the simulator.
    cache_misses_total: AtomicU64,
    /// Responses with a 4xx status.
    responses_4xx_total: AtomicU64,
    /// Responses with a 5xx status.
    responses_5xx_total: AtomicU64,
    /// Nanoseconds spent handling requests (parse-to-response-written).
    request_nanos_total: AtomicU64,
    /// Per-endpoint request counts, indexed by [`Endpoint::ALL`] order.
    endpoint_requests: [AtomicU64; 7],
    /// Per-endpoint handling nanoseconds, indexed by [`Endpoint::ALL`] order.
    endpoint_nanos: [AtomicU64; 7],
    /// Successful hot reloads (registry swaps).
    backend_reloads_total: AtomicU64,
    /// Policy-backend blocks answered per tier, indexed by
    /// [`Metrics::POLICY_TIERS`] order (cache, surrogate, simulator).
    policy_tier_total: [AtomicU64; 3],
}

impl Metrics {
    /// The `tier` label values of `difftune_policy_tier_total`, in index
    /// order: tier 1 (the per-shard LRU), tier 2 (the surrogate), tier 3
    /// (the full simulator).
    pub const POLICY_TIERS: [&'static str; 3] = ["cache", "surrogate", "simulator"];

    /// A zeroed counter set.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a parsed request.
    pub fn on_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful `/predict` answering `blocks` blocks.
    pub fn on_predict(&self, blocks: usize) {
        self.predict_requests_total.fetch_add(1, Ordering::Relaxed);
        self.predict_blocks_total
            .fetch_add(blocks as u64, Ordering::Relaxed);
    }

    /// Records cache outcomes for a batch.
    pub fn on_cache(&self, hits: usize, misses: usize) {
        self.cache_hits_total
            .fetch_add(hits as u64, Ordering::Relaxed);
        self.cache_misses_total
            .fetch_add(misses as u64, Ordering::Relaxed);
    }

    /// Records a response's status class.
    pub fn on_response_status(&self, status: u16) {
        match status {
            400..=499 => self.responses_4xx_total.fetch_add(1, Ordering::Relaxed),
            500..=599 => self.responses_5xx_total.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }

    /// Adds handling latency under the endpoint's label (and to the
    /// unlabeled total, kept for dashboards that predate the labels).
    pub fn on_latency(&self, endpoint: Endpoint, elapsed: std::time::Duration) {
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.request_nanos_total.fetch_add(nanos, Ordering::Relaxed);
        self.endpoint_requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        self.endpoint_nanos[endpoint.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records a successful hot reload (the registry swap happened).
    pub fn on_reload(&self) {
        self.backend_reloads_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `blocks` policy-backend blocks answered by the given tier
    /// (an index into [`Metrics::POLICY_TIERS`]).
    pub fn on_policy_tier(&self, tier_index: usize, blocks: usize) {
        self.policy_tier_total[tier_index].fetch_add(blocks as u64, Ordering::Relaxed);
    }

    /// Policy blocks answered by one tier so far.
    pub fn policy_tier(&self, tier_index: usize) -> u64 {
        self.policy_tier_total[tier_index].load(Ordering::Relaxed)
    }

    /// Cache hits so far (used by tests and the loadtest summary).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits_total.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses_total.load(Ordering::Relaxed)
    }

    /// Requests so far.
    pub fn requests(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Successful hot reloads so far.
    pub fn reloads(&self) -> u64 {
        self.backend_reloads_total.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition. `backends` and `shards` are
    /// configuration gauges supplied by the server.
    pub fn render(&self, backends: usize, shards: usize) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP difftune_{name} {help}\n# TYPE difftune_{name} counter\ndifftune_{name} {value}\n"
            ));
        };
        counter(
            "requests_total",
            "Requests parsed across all endpoints.",
            self.requests(),
        );
        counter(
            "predict_requests_total",
            "Successful /predict requests.",
            self.predict_requests_total.load(Ordering::Relaxed),
        );
        counter(
            "predict_blocks_total",
            "Blocks predicted (batched requests count per block).",
            self.predict_blocks_total.load(Ordering::Relaxed),
        );
        counter(
            "cache_hits_total",
            "Blocks answered from the prediction cache.",
            self.cache_hits(),
        );
        counter(
            "cache_misses_total",
            "Blocks that ran the simulator.",
            self.cache_misses(),
        );
        counter(
            "responses_4xx_total",
            "Responses with a 4xx status.",
            self.responses_4xx_total.load(Ordering::Relaxed),
        );
        counter(
            "responses_5xx_total",
            "Responses with a 5xx status.",
            self.responses_5xx_total.load(Ordering::Relaxed),
        );
        counter(
            "backend_reloads_total",
            "Successful hot reloads of the backend registry.",
            self.reloads(),
        );
        let seconds = self.request_nanos_total.load(Ordering::Relaxed) as f64 / 1e9;
        out.push_str(&format!(
            "# HELP difftune_request_seconds_total Wall time spent handling requests.\n\
             # TYPE difftune_request_seconds_total counter\n\
             difftune_request_seconds_total {seconds:?}\n"
        ));

        // The per-endpoint labeled series: one HELP/TYPE header per family,
        // one sample per endpoint.
        out.push_str(
            "# HELP difftune_endpoint_requests_total Requests handled, by endpoint.\n\
             # TYPE difftune_endpoint_requests_total counter\n",
        );
        for endpoint in Endpoint::ALL {
            let value = self.endpoint_requests[endpoint.index()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "difftune_endpoint_requests_total{{endpoint=\"{}\"}} {value}\n",
                endpoint.label()
            ));
        }
        out.push_str(
            "# HELP difftune_endpoint_seconds_total Wall time handling requests, by endpoint.\n\
             # TYPE difftune_endpoint_seconds_total counter\n",
        );
        for endpoint in Endpoint::ALL {
            let seconds =
                self.endpoint_nanos[endpoint.index()].load(Ordering::Relaxed) as f64 / 1e9;
            out.push_str(&format!(
                "difftune_endpoint_seconds_total{{endpoint=\"{}\"}} {seconds:?}\n",
                endpoint.label()
            ));
        }
        out.push_str(
            "# HELP difftune_policy_tier_total Policy-backend blocks answered, by tier.\n\
             # TYPE difftune_policy_tier_total counter\n",
        );
        for (index, tier) in Metrics::POLICY_TIERS.iter().enumerate() {
            out.push_str(&format!(
                "difftune_policy_tier_total{{tier=\"{tier}\"}} {}\n",
                self.policy_tier(index)
            ));
        }

        let mut gauge = |name: &str, help: &str, value: usize| {
            out.push_str(&format!(
                "# HELP difftune_{name} {help}\n# TYPE difftune_{name} gauge\ndifftune_{name} {value}\n"
            ));
        };
        gauge("backends", "Loaded servable backends.", backends);
        gauge("shards", "Prediction worker shards.", shards);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_in_exposition_format() {
        let metrics = Metrics::new();
        metrics.on_request();
        metrics.on_request();
        metrics.on_predict(3);
        metrics.on_cache(2, 1);
        metrics.on_response_status(200);
        metrics.on_response_status(404);
        metrics.on_response_status(500);
        metrics.on_latency(Endpoint::Predict, std::time::Duration::from_millis(5));
        metrics.on_reload();
        metrics.on_policy_tier(0, 4);
        metrics.on_policy_tier(1, 2);

        assert_eq!(metrics.requests(), 2);
        assert_eq!(metrics.cache_hits(), 2);
        assert_eq!(metrics.cache_misses(), 1);
        assert_eq!(metrics.reloads(), 1);

        let text = metrics.render(21, 4);
        for needle in [
            "difftune_requests_total 2",
            "difftune_predict_requests_total 1",
            "difftune_predict_blocks_total 3",
            "difftune_cache_hits_total 2",
            "difftune_cache_misses_total 1",
            "difftune_responses_4xx_total 1",
            "difftune_responses_5xx_total 1",
            "difftune_backend_reloads_total 1",
            "difftune_endpoint_requests_total{endpoint=\"predict\"} 1",
            "difftune_endpoint_requests_total{endpoint=\"healthz\"} 0",
            "difftune_endpoint_seconds_total{endpoint=\"predict\"} 0.005",
            "difftune_policy_tier_total{tier=\"cache\"} 4",
            "difftune_policy_tier_total{tier=\"surrogate\"} 2",
            "difftune_policy_tier_total{tier=\"simulator\"} 0",
            "# TYPE difftune_policy_tier_total counter",
            "difftune_backends 21",
            "difftune_shards 4",
            "# TYPE difftune_requests_total counter",
            "# TYPE difftune_endpoint_seconds_total counter",
            "# TYPE difftune_backends gauge",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn endpoints_classify_paths_and_label_uniquely() {
        assert_eq!(Endpoint::from_path("/predict"), Endpoint::Predict);
        assert_eq!(Endpoint::from_path("/reload"), Endpoint::Reload);
        assert_eq!(Endpoint::from_path("/drain"), Endpoint::Drain);
        assert_eq!(Endpoint::from_path("/nope"), Endpoint::Other);
        let mut labels: Vec<&str> = Endpoint::ALL.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Endpoint::ALL.len(), "labels must be unique");
    }
}
