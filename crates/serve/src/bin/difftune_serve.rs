//! `difftune-serve` — the prediction server binary.
//!
//! Loads backends (expert defaults plus any `--tables` matrix directories
//! and `--checkpoint` session snapshots) and serves `POST /predict`,
//! `POST /reload`, `POST /drain`, `GET /healthz`, `GET /metrics`, and
//! `GET /backends` until interrupted (or until `--max-seconds`, the CI
//! self-stop, or a `POST /drain` completes — a drained process exits 0).
//!
//! ```text
//! difftune-serve [--addr A] [--port P] [--tables DIR]...
//!                [--checkpoint SIM:UARCH:SPEC=PATH]... [--no-defaults]
//!                [--error-budget MAPE | SIM:UARCH:SPEC=MAPE]...
//!                [--shards N] [--cache-capacity N]
//!                [--max-seconds S] [--idle-timeout S]
//!                [--max-requests-per-connection N] [--list-backends]
//! ```
//!
//! Shard count defaults to `DIFFTUNE_THREADS` (unset = all cores), mirroring
//! the training binaries; shard count and cache state never change response
//! bytes, only latency. `POST /reload` rescans exactly the `--tables` and
//! `--checkpoint` locations given here, under strict verification.

use std::time::{Duration, Instant};

use difftune_bench::matrix::CellKey;
use difftune_serve::backend::{BackendRegistry, ReloadSpec};
use difftune_serve::server::{spawn, ServeConfig};

struct Args {
    addr: String,
    port: u16,
    tables: Vec<String>,
    checkpoints: Vec<(CellKey, String)>,
    no_defaults: bool,
    error_budget: f64,
    cell_budgets: Vec<(String, f64)>,
    shards: Option<usize>,
    cache_capacity: Option<usize>,
    max_seconds: Option<f64>,
    idle_timeout: Option<f64>,
    max_requests_per_connection: usize,
    list_backends: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-serve [--addr A] [--port P] [--tables DIR]... \
         [--checkpoint SIM:UARCH:SPEC=PATH]... [--no-defaults] \
         [--error-budget MAPE | SIM:UARCH:SPEC=MAPE]... [--shards N] \
         [--cache-capacity N] [--max-seconds S] [--idle-timeout S] \
         [--max-requests-per-connection N] [--list-backends]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1".to_string(),
        port: 8117,
        tables: Vec::new(),
        checkpoints: Vec::new(),
        no_defaults: false,
        error_budget: 0.0,
        cell_budgets: Vec::new(),
        shards: None,
        cache_capacity: None,
        max_seconds: None,
        idle_timeout: None,
        max_requests_per_connection: 0,
        list_backends: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--port" => {
                let raw = value("--port");
                args.port = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--port must be a port number, got {raw:?}");
                    usage()
                });
            }
            "--tables" => args.tables.push(value("--tables")),
            "--checkpoint" => {
                let raw = value("--checkpoint");
                let Some((cell, path)) = raw.split_once('=') else {
                    eprintln!("--checkpoint expects SIM:UARCH:SPEC=PATH, got {raw:?}");
                    usage()
                };
                match CellKey::parse(cell) {
                    Ok(key) => args.checkpoints.push((key, path.to_string())),
                    Err(error) => {
                        eprintln!("--checkpoint {raw:?}: {error}");
                        usage()
                    }
                }
            }
            "--no-defaults" => args.no_defaults = true,
            "--error-budget" => {
                // Repeatable: a bare number sets the global budget; a
                // `SIM:UARCH:SPEC=BUDGET` pair overrides one cell. Cells
                // without an override fall back to the global value.
                let raw = value("--error-budget");
                let (cell, number) = match raw.split_once('=') {
                    Some((cell, number)) => (Some(cell), number),
                    None => (None, raw.as_str()),
                };
                let budget: f64 = number.parse().unwrap_or_else(|_| {
                    eprintln!("--error-budget must be numeric MAPE percent, got {raw:?}");
                    usage()
                });
                if budget < 0.0 || budget.is_nan() {
                    eprintln!("--error-budget must be non-negative, got {raw:?}");
                    usage()
                }
                match cell {
                    None => args.error_budget = budget,
                    Some(cell) => match CellKey::parse(cell) {
                        Ok(key) => args.cell_budgets.push((key.id(), budget)),
                        Err(error) => {
                            eprintln!("--error-budget {raw:?}: {error}");
                            usage()
                        }
                    },
                }
            }
            "--shards" => {
                let raw = value("--shards");
                args.shards = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--shards must be an unsigned integer, got {raw:?}");
                    usage()
                }));
            }
            "--cache-capacity" => {
                let raw = value("--cache-capacity");
                args.cache_capacity = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--cache-capacity must be an unsigned integer, got {raw:?}");
                    usage()
                }));
            }
            "--max-seconds" => {
                let raw = value("--max-seconds");
                args.max_seconds = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--max-seconds must be numeric, got {raw:?}");
                    usage()
                }));
            }
            "--idle-timeout" => {
                let raw = value("--idle-timeout");
                let seconds: f64 = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--idle-timeout must be numeric seconds, got {raw:?}");
                    usage()
                });
                if seconds <= 0.0 || seconds.is_nan() {
                    eprintln!("--idle-timeout must be positive, got {raw:?}");
                    usage()
                }
                args.idle_timeout = Some(seconds);
            }
            "--max-requests-per-connection" => {
                let raw = value("--max-requests-per-connection");
                args.max_requests_per_connection = raw.parse().unwrap_or_else(|_| {
                    eprintln!(
                        "--max-requests-per-connection must be an unsigned integer, got {raw:?}"
                    );
                    usage()
                });
            }
            "--list-backends" => args.list_backends = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // The startup spec doubles as the `POST /reload` rescan spec: a reload
    // re-reads exactly these locations under strict verification.
    let reload_spec = ReloadSpec {
        defaults: !args.no_defaults,
        table_dirs: args.tables.iter().map(std::path::PathBuf::from).collect(),
        checkpoints: args
            .checkpoints
            .iter()
            .map(|(key, path)| (*key, std::path::PathBuf::from(path)))
            .collect(),
        error_budget: args.error_budget,
        cell_budgets: args.cell_budgets.clone(),
    };

    let mut registry = if args.no_defaults {
        BackendRegistry::new()
    } else {
        BackendRegistry::with_defaults()
    };
    registry.set_error_budget(args.error_budget);
    for (cell, budget) in &args.cell_budgets {
        registry.set_cell_budget(cell, *budget);
    }
    for dir in &args.tables {
        match registry.add_matrix_dir(std::path::Path::new(dir)) {
            Ok(added) => {
                eprintln!("[difftune-serve] loaded {added} matrix/surrogate backend(s) from {dir}");
            }
            Err(error) => {
                eprintln!("difftune-serve: {error}");
                std::process::exit(1);
            }
        }
    }
    for (key, path) in &args.checkpoints {
        if let Err(error) = registry.add_checkpoint(key, std::path::Path::new(path)) {
            eprintln!("difftune-serve: {error}");
            std::process::exit(1);
        }
        eprintln!("[difftune-serve] loaded checkpoint backend checkpoint:{key}");
    }
    for warning in registry.warnings() {
        eprintln!("[difftune-serve] warning: {warning}");
    }
    if registry.is_empty() {
        eprintln!("difftune-serve: no backends to serve (--no-defaults with nothing loaded)");
        std::process::exit(1);
    }

    if args.list_backends {
        for (id, kind, fingerprint) in registry.entries() {
            println!("{id}\t{kind}\t{fingerprint}");
        }
        return;
    }

    // Shard count: --shards wins, then DIFFTUNE_THREADS, then all cores.
    let shards = match args.shards {
        Some(n) => n,
        None => difftune::threads_from_env().unwrap_or_else(|error| {
            eprintln!("{error}");
            std::process::exit(2);
        }),
    };

    let config = ServeConfig {
        addr: args.addr.clone(),
        port: args.port,
        shards,
        cache_capacity: args.cache_capacity.unwrap_or(4096),
        read_timeout: args
            .idle_timeout
            .map(Duration::from_secs_f64)
            .unwrap_or_else(|| ServeConfig::default().read_timeout),
        max_requests_per_connection: args.max_requests_per_connection,
        reload_spec: Some(reload_spec),
        ..ServeConfig::default()
    };
    let backends = registry.len();
    let handle = spawn(config, registry).unwrap_or_else(|error| {
        eprintln!(
            "difftune-serve: cannot bind {}:{}: {error}",
            args.addr, args.port
        );
        std::process::exit(1);
    });
    println!(
        "difftune-serve listening on http://{} ({backends} backends)",
        handle.addr()
    );

    // Serve until killed, drained, or the --max-seconds CI tripwire.
    let deadline = args
        .max_seconds
        .map(|seconds| Instant::now() + Duration::from_secs_f64(seconds.max(0.0)));
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if handle.drain_requested() {
            eprintln!("[difftune-serve] drain requested; finishing in-flight connections");
            handle.shutdown();
            eprintln!("[difftune-serve] drained");
            std::process::exit(0);
        }
        if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
            eprintln!("[difftune-serve] --max-seconds reached; shutting down");
            handle.shutdown();
            return;
        }
    }
}
