//! `difftune-serve` — the prediction server binary.
//!
//! Loads backends (expert defaults plus any `--tables` matrix directories
//! and `--checkpoint` session snapshots) and serves `POST /predict`,
//! `GET /healthz`, `GET /metrics`, and `GET /backends` until interrupted
//! (or until `--max-seconds`, the CI self-stop).
//!
//! ```text
//! difftune-serve [--addr A] [--port P] [--tables DIR]...
//!                [--checkpoint SIM:UARCH:SPEC=PATH]... [--no-defaults]
//!                [--shards N] [--cache-capacity N] [--max-seconds S]
//!                [--list-backends]
//! ```
//!
//! Shard count defaults to `DIFFTUNE_THREADS` (unset = all cores), mirroring
//! the training binaries; shard count and cache state never change response
//! bytes, only latency.

use std::time::Duration;

use difftune_bench::matrix::CellKey;
use difftune_serve::backend::BackendRegistry;
use difftune_serve::server::{spawn, ServeConfig};

struct Args {
    addr: String,
    port: u16,
    tables: Vec<String>,
    checkpoints: Vec<(CellKey, String)>,
    no_defaults: bool,
    shards: Option<usize>,
    cache_capacity: Option<usize>,
    max_seconds: Option<f64>,
    list_backends: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-serve [--addr A] [--port P] [--tables DIR]... \
         [--checkpoint SIM:UARCH:SPEC=PATH]... [--no-defaults] [--shards N] \
         [--cache-capacity N] [--max-seconds S] [--list-backends]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1".to_string(),
        port: 8117,
        tables: Vec::new(),
        checkpoints: Vec::new(),
        no_defaults: false,
        shards: None,
        cache_capacity: None,
        max_seconds: None,
        list_backends: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--port" => {
                let raw = value("--port");
                args.port = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--port must be a port number, got {raw:?}");
                    usage()
                });
            }
            "--tables" => args.tables.push(value("--tables")),
            "--checkpoint" => {
                let raw = value("--checkpoint");
                let Some((cell, path)) = raw.split_once('=') else {
                    eprintln!("--checkpoint expects SIM:UARCH:SPEC=PATH, got {raw:?}");
                    usage()
                };
                match CellKey::parse(cell) {
                    Ok(key) => args.checkpoints.push((key, path.to_string())),
                    Err(error) => {
                        eprintln!("--checkpoint {raw:?}: {error}");
                        usage()
                    }
                }
            }
            "--no-defaults" => args.no_defaults = true,
            "--shards" => {
                let raw = value("--shards");
                args.shards = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--shards must be an unsigned integer, got {raw:?}");
                    usage()
                }));
            }
            "--cache-capacity" => {
                let raw = value("--cache-capacity");
                args.cache_capacity = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--cache-capacity must be an unsigned integer, got {raw:?}");
                    usage()
                }));
            }
            "--max-seconds" => {
                let raw = value("--max-seconds");
                args.max_seconds = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--max-seconds must be numeric, got {raw:?}");
                    usage()
                }));
            }
            "--list-backends" => args.list_backends = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let mut registry = if args.no_defaults {
        BackendRegistry::new()
    } else {
        BackendRegistry::with_defaults()
    };
    for dir in &args.tables {
        match registry.add_matrix_dir(std::path::Path::new(dir)) {
            Ok(added) => eprintln!("[difftune-serve] loaded {added} matrix backend(s) from {dir}"),
            Err(error) => {
                eprintln!("difftune-serve: {error}");
                std::process::exit(1);
            }
        }
    }
    for (key, path) in &args.checkpoints {
        if let Err(error) = registry.add_checkpoint(key, std::path::Path::new(path)) {
            eprintln!("difftune-serve: {error}");
            std::process::exit(1);
        }
        eprintln!("[difftune-serve] loaded checkpoint backend checkpoint:{key}");
    }
    if registry.is_empty() {
        eprintln!("difftune-serve: no backends to serve (--no-defaults with nothing loaded)");
        std::process::exit(1);
    }

    if args.list_backends {
        for id in registry.ids() {
            println!("{id}");
        }
        return;
    }

    // Shard count: --shards wins, then DIFFTUNE_THREADS, then all cores.
    let shards = match args.shards {
        Some(n) => n,
        None => difftune::threads_from_env().unwrap_or_else(|error| {
            eprintln!("{error}");
            std::process::exit(2);
        }),
    };

    let config = ServeConfig {
        addr: args.addr.clone(),
        port: args.port,
        shards,
        cache_capacity: args.cache_capacity.unwrap_or(4096),
        ..ServeConfig::default()
    };
    let backends = registry.len();
    let handle = spawn(config, registry).unwrap_or_else(|error| {
        eprintln!(
            "difftune-serve: cannot bind {}:{}: {error}",
            args.addr, args.port
        );
        std::process::exit(1);
    });
    println!(
        "difftune-serve listening on http://{} ({backends} backends)",
        handle.addr()
    );

    match args.max_seconds {
        Some(seconds) => {
            std::thread::sleep(Duration::from_secs_f64(seconds.max(0.0)));
            eprintln!("[difftune-serve] --max-seconds reached; shutting down");
            handle.shutdown();
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
    }
}
