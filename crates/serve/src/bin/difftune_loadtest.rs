//! `difftune-loadtest` — a closed-loop load generator for `difftune-serve`
//! and the `difftune-router` tier.
//!
//! Generates a deterministic set of basic blocks, sends them as `/predict`
//! requests over one or more keep-alive connections (each connection waits
//! for its response before sending the next request — a closed loop), and
//! writes the measured throughput as `BENCH_serve.json` (direct) or
//! `BENCH_router.json` (routed; stage `route`) in the `difftune-bench/2`
//! schema, extending the perf trajectory the training stages already record.
//!
//! ```text
//! difftune-loadtest --addr HOST:PORT [--requests N] [--batch K] [--blocks B]
//!                   [--connections C] [--seed S] [--sim X] [--uarch X]
//!                   [--spec X] [--source X] [--expect-source-kind KIND]
//!                   [--json] [--out-dir DIR] [--wait-seconds S]
//!                   [--max-seconds S] [--check-deterministic]
//! difftune-loadtest --via-router N [--kill-upstream-after K]
//!                   [--tables DIR]... [--error-budget MAPE]
//!                   [--idle-timeout S] [...as above]
//! ```
//!
//! `--via-router N` is the chaos harness: the loadtest spawns N
//! `difftune-serve` upstreams and one `difftune-router` itself (sibling
//! binaries next to its own executable), then drives the router.
//! `--kill-upstream-after K` SIGKILLs the ring-primary upstream for the
//! request stream after K requests of the first pass — mid-load — and the
//! remaining requests must fail over. Combined with
//! `--check-deterministic`, this is the cross-process determinism contract
//! as a one-liner: the post-kill replay must be byte-identical to the
//! mixed pre/post-kill first pass.
//!
//! `--check-deterministic` replays the exact request sequence a second time
//! (now against a warm cache) and exits nonzero unless every response body is
//! byte-identical to the first pass — the serving determinism contract,
//! enforced from outside the process. `--max-seconds` is the CI tripwire:
//! the run fails if the whole loadtest exceeds the budget.

use std::io::{BufRead, BufReader};
use std::time::{Duration, Instant};

use difftune_bench::record::BenchRecord;
use difftune_isa::{BlockGenerator, GeneratorConfig};
use difftune_serve::client::HttpClient;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;

struct Args {
    addr: String,
    requests: usize,
    batch: usize,
    blocks: usize,
    connections: usize,
    seed: u64,
    sim: Option<String>,
    uarch: Option<String>,
    spec: Option<String>,
    source: Option<String>,
    expect_source_kind: Option<String>,
    json: bool,
    out_dir: String,
    wait_seconds: f64,
    max_seconds: Option<f64>,
    check_deterministic: bool,
    via_router: Option<usize>,
    kill_upstream_after: Option<usize>,
    tables: Vec<String>,
    error_budget: Option<f64>,
    idle_timeout: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-loadtest (--addr HOST:PORT | --via-router N) [--requests N] [--batch K] \
         [--blocks B] [--connections C] [--seed S] [--sim X] [--uarch X] [--spec X] [--source X] \
         [--expect-source-kind KIND] [--json] [--out-dir DIR] [--wait-seconds S] [--max-seconds S] \
         [--check-deterministic] [--kill-upstream-after K] [--tables DIR]... \
         [--error-budget MAPE] [--idle-timeout S]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        requests: 64,
        batch: 4,
        blocks: 32,
        connections: 1,
        seed: 0,
        sim: None,
        uarch: None,
        spec: None,
        source: None,
        expect_source_kind: None,
        json: false,
        out_dir: ".".to_string(),
        wait_seconds: 30.0,
        max_seconds: None,
        check_deterministic: false,
        via_router: None,
        kill_upstream_after: None,
        tables: Vec::new(),
        error_budget: None,
        idle_timeout: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        let parse_usize = |flag: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{flag} must be an unsigned integer, got {raw:?}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--requests" => args.requests = parse_usize("--requests", value("--requests")),
            "--batch" => args.batch = parse_usize("--batch", value("--batch")),
            "--blocks" => args.blocks = parse_usize("--blocks", value("--blocks")),
            "--connections" => {
                args.connections = parse_usize("--connections", value("--connections"))
            }
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--sim" => args.sim = Some(value("--sim")),
            "--uarch" => args.uarch = Some(value("--uarch")),
            "--spec" => args.spec = Some(value("--spec")),
            "--source" => args.source = Some(value("--source")),
            "--expect-source-kind" => args.expect_source_kind = Some(value("--expect-source-kind")),
            "--json" => args.json = true,
            "--out-dir" => args.out_dir = value("--out-dir"),
            "--wait-seconds" => {
                args.wait_seconds = value("--wait-seconds").parse().unwrap_or_else(|_| usage())
            }
            "--max-seconds" => {
                args.max_seconds = Some(value("--max-seconds").parse().unwrap_or_else(|_| usage()))
            }
            "--check-deterministic" => args.check_deterministic = true,
            "--via-router" => {
                args.via_router = Some(parse_usize("--via-router", value("--via-router")))
            }
            "--kill-upstream-after" => {
                args.kill_upstream_after = Some(parse_usize(
                    "--kill-upstream-after",
                    value("--kill-upstream-after"),
                ))
            }
            "--tables" => args.tables.push(value("--tables")),
            "--error-budget" => {
                args.error_budget = Some(value("--error-budget").parse().unwrap_or_else(|_| {
                    eprintln!("--error-budget must be numeric MAPE percent");
                    usage()
                }))
            }
            "--idle-timeout" => {
                args.idle_timeout = Some(value("--idle-timeout").parse().unwrap_or_else(|_| {
                    eprintln!("--idle-timeout must be numeric seconds");
                    usage()
                }))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    match (args.addr.is_empty(), args.via_router) {
        (true, None) => {
            eprintln!("one of --addr or --via-router is required");
            usage()
        }
        (false, Some(_)) => {
            eprintln!("--addr and --via-router are mutually exclusive (the router is the target)");
            usage()
        }
        _ => {}
    }
    if let Some(upstreams) = args.via_router {
        if upstreams == 0 {
            eprintln!("--via-router needs at least one upstream");
            usage()
        }
    }
    if args.kill_upstream_after.is_some() {
        match args.via_router {
            None => {
                eprintln!("--kill-upstream-after requires --via-router (it kills a spawned child)");
                usage()
            }
            Some(upstreams) if upstreams < 2 => {
                eprintln!("--kill-upstream-after needs --via-router >= 2 to have a survivor");
                usage()
            }
            _ => {}
        }
    }
    if args.requests == 0 || args.batch == 0 || args.blocks == 0 || args.connections == 0 {
        eprintln!("--requests, --batch, --blocks, and --connections must be positive");
        usage()
    }
    args
}

/// One spawned child process (a serve upstream or the router) with the
/// address it reported on stdout.
struct ChildProcess {
    name: String,
    addr: String,
    process: std::process::Child,
    /// Held open so the child never blocks on a closed stdout pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

/// The self-spawned fleet: N serve upstreams plus the router. Dropping the
/// fleet kills every child, so no run leaves orphans behind.
struct Fleet {
    upstreams: Vec<ChildProcess>,
    router: Option<ChildProcess>,
}

impl Fleet {
    fn router_addr(&self) -> &str {
        &self.router.as_ref().expect("fleet has a router").addr
    }

    /// SIGKILLs the upstream serving `addr`. Mid-load chaos: pooled router
    /// connections to it die mid-stream and must fail over.
    fn kill_upstream(&mut self, addr: &str) -> Result<(), String> {
        let child = self
            .upstreams
            .iter_mut()
            .find(|child| child.addr == addr)
            .ok_or_else(|| format!("no spawned upstream listens on {addr}"))?;
        child
            .process
            .kill()
            .map_err(|error| format!("cannot kill {}: {error}", child.name))?;
        let _ = child.process.wait();
        Ok(())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.upstreams.iter_mut().chain(self.router.iter_mut()) {
            let _ = child.process.kill();
            let _ = child.process.wait();
        }
    }
}

/// The `http://HOST:PORT` address out of a child's `listening on` line.
fn parse_listening_addr(line: &str) -> Option<String> {
    let start = line.find("http://")? + "http://".len();
    let rest = &line[start..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

/// Spawns one sibling binary (resolved next to this executable), piping
/// stdout and blocking until it reports its listening address.
fn spawn_child(binary: &str, child_args: &[String], name: &str) -> Result<ChildProcess, String> {
    let exe = std::env::current_exe()
        .map_err(|error| format!("cannot locate this executable: {error}"))?;
    let path = exe
        .parent()
        .ok_or_else(|| "this executable has no parent directory".to_string())?
        .join(binary);
    if !path.exists() {
        return Err(format!(
            "{} is not built (expected at {}); build it alongside difftune-loadtest",
            binary,
            path.display()
        ));
    }
    let mut process = std::process::Command::new(&path)
        .args(child_args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|error| format!("cannot spawn {}: {error}", path.display()))?;
    let stdout = process.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = process.kill();
                return Err(format!("{name} exited before reporting its address"));
            }
            Ok(_) => {
                if let Some(addr) = parse_listening_addr(&line) {
                    eprintln!("[difftune-loadtest] {name} listening on {addr}");
                    return Ok(ChildProcess {
                        name: name.to_string(),
                        addr,
                        process,
                        _stdout: reader,
                    });
                }
            }
            Err(error) => {
                let _ = process.kill();
                return Err(format!("cannot read {name} stdout: {error}"));
            }
        }
    }
}

/// Spawns `upstreams` serve children and a router fronting them.
fn spawn_fleet(args: &Args, upstreams: usize) -> Result<Fleet, String> {
    // A generous self-destruct on every child, so an aborted loadtest can
    // never leave servers running forever.
    let self_destruct = "900".to_string();
    let mut fleet = Fleet {
        upstreams: Vec::with_capacity(upstreams),
        router: None,
    };
    for index in 0..upstreams {
        let mut child_args = vec![
            "--port".to_string(),
            "0".to_string(),
            "--max-seconds".to_string(),
            self_destruct.clone(),
        ];
        for dir in &args.tables {
            child_args.push("--tables".to_string());
            child_args.push(dir.clone());
        }
        if let Some(budget) = args.error_budget {
            child_args.push("--error-budget".to_string());
            child_args.push(budget.to_string());
        }
        if let Some(seconds) = args.idle_timeout {
            child_args.push("--idle-timeout".to_string());
            child_args.push(seconds.to_string());
        }
        fleet.upstreams.push(spawn_child(
            "difftune-serve",
            &child_args,
            &format!("upstream[{index}]"),
        )?);
    }
    let mut router_args = vec![
        "--port".to_string(),
        "0".to_string(),
        "--max-seconds".to_string(),
        self_destruct,
    ];
    for upstream in &fleet.upstreams {
        router_args.push("--upstream".to_string());
        router_args.push(upstream.addr.clone());
    }
    if let Some(seconds) = args.idle_timeout {
        router_args.push("--idle-timeout".to_string());
        router_args.push(seconds.to_string());
    }
    fleet.router = Some(spawn_child("difftune-router", &router_args, "router")?);
    Ok(fleet)
}

/// Asks the router (`POST /route`) which upstream is primary for this body.
fn primary_upstream(router_addr: &str, body: &str, wait: Duration) -> Result<String, String> {
    let mut client = HttpClient::connect_with_retry(router_addr, wait)
        .map_err(|error| format!("cannot connect to router {router_addr}: {error}"))?;
    let response = client
        .request("POST", "/route", body.as_bytes())
        .map_err(|error| format!("POST /route failed: {error}"))?;
    if response.status != 200 {
        return Err(format!(
            "POST /route answered {}: {}",
            response.status,
            response.body_text()
        ));
    }
    let value = serde_json::from_str_value(&response.body_text())
        .map_err(|error| format!("/route body is not JSON: {error}"))?;
    value
        .get("primary")
        .and_then(|primary| primary.as_str().map(String::from))
        .ok_or_else(|| format!("/route body has no primary: {}", response.body_text()))
}

/// Builds the deterministic request bodies: `blocks` distinct generated
/// blocks, grouped `batch` at a time, rotating until `requests` bodies exist.
fn request_bodies(args: &Args) -> Vec<String> {
    let generator = BlockGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(args.seed);
    let blocks: Vec<String> = (0..args.blocks)
        .map(|_| generator.generate(&mut rng).to_string())
        .collect();

    (0..args.requests)
        .map(|request| {
            let batch: Vec<Value> = (0..args.batch)
                .map(|i| Value::Str(blocks[(request * args.batch + i) % blocks.len()].clone()))
                .collect();
            let mut map = vec![("blocks".to_string(), Value::Seq(batch))];
            for (field, flag) in [
                ("sim", &args.sim),
                ("uarch", &args.uarch),
                ("spec", &args.spec),
                ("source", &args.source),
            ] {
                if let Some(value) = flag {
                    map.push((field.to_string(), Value::Str(value.clone())));
                }
            }
            serde_json::to_string(&Value::Map(map)).expect("a request body always serializes")
        })
        .collect()
}

/// Runs one closed-loop pass over every request body; returns the response
/// bodies in request order.
fn run_pass(args: &Args, bodies: &[String]) -> Result<Vec<String>, String> {
    let responses: Vec<Result<Vec<(usize, String)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|connection| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect_with_retry(
                        &args.addr,
                        Duration::from_secs_f64(args.wait_seconds),
                    )
                    .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
                    let mut collected = Vec::new();
                    for (index, body) in bodies.iter().enumerate() {
                        if index % args.connections != connection {
                            continue;
                        }
                        let response = client
                            .post_json("/predict", body)
                            .map_err(|error| format!("request {index} failed: {error}"))?;
                        if response.status != 200 {
                            return Err(format!(
                                "request {index} answered {}: {}",
                                response.status,
                                response.body_text()
                            ));
                        }
                        collected.push((index, response.body_text()));
                    }
                    Ok(collected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadtest worker panicked"))
            .collect()
    });

    let mut ordered = vec![String::new(); bodies.len()];
    for result in responses {
        for (index, body) in result? {
            ordered[index] = body;
        }
    }
    Ok(ordered)
}

fn main() {
    let mut args = parse_args();
    let bodies = request_bodies(&args);

    // Chaos mode: spawn the fleet and point the loadtest at the router.
    let mut fleet = match args.via_router {
        Some(upstreams) => {
            let fleet = spawn_fleet(&args, upstreams).unwrap_or_else(|error| {
                eprintln!("difftune-loadtest: {error}");
                std::process::exit(1);
            });
            args.addr = fleet.router_addr().to_string();
            Some(fleet)
        }
        None => None,
    };

    // Readiness probe before the clock starts: the BENCH record (and the
    // --max-seconds tripwire) measure serving, not how long a freshly
    // spawned server takes to start accepting.
    HttpClient::connect_with_retry(&args.addr, Duration::from_secs_f64(args.wait_seconds))
        .unwrap_or_else(|error| {
            eprintln!(
                "difftune-loadtest: cannot connect to {}: {error}",
                args.addr
            );
            std::process::exit(1);
        });
    let started = Instant::now();

    // The first pass, optionally with a mid-load kill: K requests against
    // the full fleet, then SIGKILL the primary upstream, then the remainder
    // rides the failover path. The concatenation is what determinism is
    // asserted against.
    let first_pass = match args.kill_upstream_after {
        Some(kill_after) => {
            let split = kill_after.min(bodies.len());
            let mut pass = run_pass(&args, &bodies[..split]).unwrap_or_else(|error| {
                eprintln!("difftune-loadtest: pre-kill segment: {error}");
                std::process::exit(1);
            });
            let victim = primary_upstream(
                &args.addr,
                &bodies[0],
                Duration::from_secs_f64(args.wait_seconds),
            )
            .unwrap_or_else(|error| {
                eprintln!("difftune-loadtest: cannot pick a victim: {error}");
                std::process::exit(1);
            });
            let fleet = fleet
                .as_mut()
                .expect("--kill-upstream-after implies a fleet");
            fleet.kill_upstream(&victim).unwrap_or_else(|error| {
                eprintln!("difftune-loadtest: {error}");
                std::process::exit(1);
            });
            eprintln!(
                "[difftune-loadtest] killed primary upstream {victim} after {split} request(s)"
            );
            let rest = run_pass(&args, &bodies[split..]).unwrap_or_else(|error| {
                eprintln!("difftune-loadtest: post-kill segment: {error}");
                std::process::exit(1);
            });
            pass.extend(rest);
            pass
        }
        None => run_pass(&args, &bodies).unwrap_or_else(|error| {
            eprintln!("difftune-loadtest: {error}");
            std::process::exit(1);
        }),
    };
    let first_elapsed = started.elapsed().as_secs_f64();
    let samples = args.requests * args.batch;
    println!(
        "difftune-loadtest: {} requests ({samples} blocks) over {} connection(s) in {:.3}s \
         ({:.0} blocks/s){}",
        args.requests,
        args.connections,
        first_elapsed,
        samples as f64 / first_elapsed.max(1e-9),
        if args.via_router.is_some() {
            " via router"
        } else {
            ""
        },
    );

    if let Some(expected) = &args.expect_source_kind {
        // Tier assertion for policy backends: every response must have been
        // answered from the expected tier family ("table" or "surrogate").
        for (index, body) in first_pass.iter().enumerate() {
            let kind = serde_json::from_str_value(body).ok().and_then(|value| {
                value
                    .get("source_kind")
                    .and_then(|k| k.as_str().map(String::from))
            });
            if kind.as_deref() != Some(expected.as_str()) {
                eprintln!(
                    "difftune-loadtest: SOURCE KIND MISMATCH: request {index} expected \
                     source_kind {expected:?}, got: {body}"
                );
                std::process::exit(1);
            }
        }
        println!(
            "difftune-loadtest: all {} responses answered with source_kind {expected:?}",
            first_pass.len()
        );
    }

    if args.check_deterministic {
        // Replay the identical sequence against the now-warm (and, after a
        // kill, reduced) fleet: every body must come back byte-identical.
        let second_pass = run_pass(&args, &bodies).unwrap_or_else(|error| {
            eprintln!("difftune-loadtest: replay pass: {error}");
            std::process::exit(1);
        });
        for (index, (first, second)) in first_pass.iter().zip(&second_pass).enumerate() {
            if first != second {
                eprintln!(
                    "difftune-loadtest: DETERMINISM VIOLATION: request {index} diverged between \
                     cold and warm passes:\n  cold: {first}\n  warm: {second}"
                );
                std::process::exit(1);
            }
        }
        println!(
            "difftune-loadtest: replay pass byte-identical across {} responses",
            first_pass.len()
        );
    }

    if args.json {
        let threads = args.connections;
        let (record, file_name) = if args.via_router.is_some() {
            // Stage `route`; the artifact keeps the conventional CI name.
            (
                BenchRecord::route(threads, args.seed, first_elapsed, samples),
                "BENCH_router.json".to_string(),
            )
        } else {
            let record = BenchRecord::serve(threads, args.seed, first_elapsed, samples);
            let file_name = record.file_name();
            (record, file_name)
        };
        if let Err(error) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("difftune-loadtest: cannot create {}: {error}", args.out_dir);
            std::process::exit(1);
        }
        let path = std::path::Path::new(&args.out_dir).join(file_name);
        if let Err(error) = std::fs::write(&path, record.to_json()) {
            eprintln!(
                "difftune-loadtest: cannot write {}: {error}",
                path.display()
            );
            std::process::exit(1);
        }
        println!("difftune-loadtest: wrote {}", path.display());
    }

    if let Some(ceiling) = args.max_seconds {
        let total = started.elapsed().as_secs_f64();
        if total > ceiling {
            eprintln!(
                "difftune-loadtest: PERF CEILING EXCEEDED: the loadtest took {total:.2}s, over \
                 the {ceiling:.2}s ceiling"
            );
            std::process::exit(1);
        }
    }
    // The fleet (if any) is killed on drop.
    drop(fleet);
}
