//! `difftune-loadtest` — a closed-loop load generator for `difftune-serve`.
//!
//! Generates a deterministic set of basic blocks, sends them as `/predict`
//! requests over one or more keep-alive connections (each connection waits
//! for its response before sending the next request — a closed loop), and
//! writes the measured throughput as `BENCH_serve.json` in the
//! `difftune-bench/2` schema, extending the perf trajectory the training
//! stages already record.
//!
//! ```text
//! difftune-loadtest --addr HOST:PORT [--requests N] [--batch K] [--blocks B]
//!                   [--connections C] [--seed S] [--sim X] [--uarch X]
//!                   [--spec X] [--source X] [--json] [--out-dir DIR]
//!                   [--wait-seconds S] [--max-seconds S]
//!                   [--check-deterministic]
//! ```
//!
//! `--check-deterministic` replays the exact request sequence a second time
//! (now against a warm cache) and exits nonzero unless every response body is
//! byte-identical to the first pass — the serving determinism contract,
//! enforced from outside the process. `--max-seconds` is the CI tripwire:
//! the run fails if the whole loadtest exceeds the budget.

use std::time::{Duration, Instant};

use difftune_bench::record::BenchRecord;
use difftune_isa::{BlockGenerator, GeneratorConfig};
use difftune_serve::client::HttpClient;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;

struct Args {
    addr: String,
    requests: usize,
    batch: usize,
    blocks: usize,
    connections: usize,
    seed: u64,
    sim: Option<String>,
    uarch: Option<String>,
    spec: Option<String>,
    source: Option<String>,
    json: bool,
    out_dir: String,
    wait_seconds: f64,
    max_seconds: Option<f64>,
    check_deterministic: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-loadtest --addr HOST:PORT [--requests N] [--batch K] [--blocks B] \
         [--connections C] [--seed S] [--sim X] [--uarch X] [--spec X] [--source X] [--json] \
         [--out-dir DIR] [--wait-seconds S] [--max-seconds S] [--check-deterministic]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        requests: 64,
        batch: 4,
        blocks: 32,
        connections: 1,
        seed: 0,
        sim: None,
        uarch: None,
        spec: None,
        source: None,
        json: false,
        out_dir: ".".to_string(),
        wait_seconds: 30.0,
        max_seconds: None,
        check_deterministic: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        let parse_usize = |flag: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{flag} must be an unsigned integer, got {raw:?}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--requests" => args.requests = parse_usize("--requests", value("--requests")),
            "--batch" => args.batch = parse_usize("--batch", value("--batch")),
            "--blocks" => args.blocks = parse_usize("--blocks", value("--blocks")),
            "--connections" => {
                args.connections = parse_usize("--connections", value("--connections"))
            }
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--sim" => args.sim = Some(value("--sim")),
            "--uarch" => args.uarch = Some(value("--uarch")),
            "--spec" => args.spec = Some(value("--spec")),
            "--source" => args.source = Some(value("--source")),
            "--json" => args.json = true,
            "--out-dir" => args.out_dir = value("--out-dir"),
            "--wait-seconds" => {
                args.wait_seconds = value("--wait-seconds").parse().unwrap_or_else(|_| usage())
            }
            "--max-seconds" => {
                args.max_seconds = Some(value("--max-seconds").parse().unwrap_or_else(|_| usage()))
            }
            "--check-deterministic" => args.check_deterministic = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage()
    }
    if args.requests == 0 || args.batch == 0 || args.blocks == 0 || args.connections == 0 {
        eprintln!("--requests, --batch, --blocks, and --connections must be positive");
        usage()
    }
    args
}

/// Builds the deterministic request bodies: `blocks` distinct generated
/// blocks, grouped `batch` at a time, rotating until `requests` bodies exist.
fn request_bodies(args: &Args) -> Vec<String> {
    let generator = BlockGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(args.seed);
    let blocks: Vec<String> = (0..args.blocks)
        .map(|_| generator.generate(&mut rng).to_string())
        .collect();

    (0..args.requests)
        .map(|request| {
            let batch: Vec<Value> = (0..args.batch)
                .map(|i| Value::Str(blocks[(request * args.batch + i) % blocks.len()].clone()))
                .collect();
            let mut map = vec![("blocks".to_string(), Value::Seq(batch))];
            for (field, flag) in [
                ("sim", &args.sim),
                ("uarch", &args.uarch),
                ("spec", &args.spec),
                ("source", &args.source),
            ] {
                if let Some(value) = flag {
                    map.push((field.to_string(), Value::Str(value.clone())));
                }
            }
            serde_json::to_string(&Value::Map(map)).expect("a request body always serializes")
        })
        .collect()
}

/// Runs one closed-loop pass over every request body; returns the response
/// bodies in request order.
fn run_pass(args: &Args, bodies: &[String]) -> Result<Vec<String>, String> {
    let responses: Vec<Result<Vec<(usize, String)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|connection| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect_with_retry(
                        &args.addr,
                        Duration::from_secs_f64(args.wait_seconds),
                    )
                    .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
                    let mut collected = Vec::new();
                    for (index, body) in bodies.iter().enumerate() {
                        if index % args.connections != connection {
                            continue;
                        }
                        let response = client
                            .post_json("/predict", body)
                            .map_err(|error| format!("request {index} failed: {error}"))?;
                        if response.status != 200 {
                            return Err(format!(
                                "request {index} answered {}: {}",
                                response.status,
                                response.body_text()
                            ));
                        }
                        collected.push((index, response.body_text()));
                    }
                    Ok(collected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadtest worker panicked"))
            .collect()
    });

    let mut ordered = vec![String::new(); bodies.len()];
    for result in responses {
        for (index, body) in result? {
            ordered[index] = body;
        }
    }
    Ok(ordered)
}

fn main() {
    let args = parse_args();
    let bodies = request_bodies(&args);

    // Readiness probe before the clock starts: the BENCH record (and the
    // --max-seconds tripwire) measure serving, not how long a freshly
    // spawned server takes to start accepting.
    HttpClient::connect_with_retry(&args.addr, Duration::from_secs_f64(args.wait_seconds))
        .unwrap_or_else(|error| {
            eprintln!(
                "difftune-loadtest: cannot connect to {}: {error}",
                args.addr
            );
            std::process::exit(1);
        });
    let started = Instant::now();

    let first_pass = run_pass(&args, &bodies).unwrap_or_else(|error| {
        eprintln!("difftune-loadtest: {error}");
        std::process::exit(1);
    });
    let first_elapsed = started.elapsed().as_secs_f64();
    let samples = args.requests * args.batch;
    println!(
        "difftune-loadtest: {} requests ({samples} blocks) over {} connection(s) in {:.3}s \
         ({:.0} blocks/s)",
        args.requests,
        args.connections,
        first_elapsed,
        samples as f64 / first_elapsed.max(1e-9),
    );

    if args.check_deterministic {
        // Replay the identical sequence against the now-warm cache: every
        // body must come back byte-identical.
        let second_pass = run_pass(&args, &bodies).unwrap_or_else(|error| {
            eprintln!("difftune-loadtest: replay pass: {error}");
            std::process::exit(1);
        });
        for (index, (first, second)) in first_pass.iter().zip(&second_pass).enumerate() {
            if first != second {
                eprintln!(
                    "difftune-loadtest: DETERMINISM VIOLATION: request {index} diverged between \
                     cold and warm passes:\n  cold: {first}\n  warm: {second}"
                );
                std::process::exit(1);
            }
        }
        println!(
            "difftune-loadtest: replay pass byte-identical across {} responses",
            first_pass.len()
        );
    }

    if args.json {
        let record = BenchRecord::serve(args.connections, args.seed, first_elapsed, samples);
        if let Err(error) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("difftune-loadtest: cannot create {}: {error}", args.out_dir);
            std::process::exit(1);
        }
        let path = std::path::Path::new(&args.out_dir).join(record.file_name());
        if let Err(error) = std::fs::write(&path, record.to_json()) {
            eprintln!(
                "difftune-loadtest: cannot write {}: {error}",
                path.display()
            );
            std::process::exit(1);
        }
        println!("difftune-loadtest: wrote {}", path.display());
    }

    if let Some(ceiling) = args.max_seconds {
        let total = started.elapsed().as_secs_f64();
        if total > ceiling {
            eprintln!(
                "difftune-loadtest: PERF CEILING EXCEEDED: the loadtest took {total:.2}s, over \
                 the {ceiling:.2}s ceiling"
            );
            std::process::exit(1);
        }
    }
}
