//! `difftune-loadtest` — a closed-loop load generator and chaos driver for
//! `difftune-serve` and the `difftune-router` tier.
//!
//! Generates a deterministic set of basic blocks, sends them as `/predict`
//! requests over one or more keep-alive connections (each connection waits
//! for its response before sending the next request — a closed loop), and
//! writes the measured throughput as `BENCH_serve.json` (direct) or
//! `BENCH_router.json` (routed; stage `route`) in the `difftune-bench/2`
//! schema, extending the perf trajectory the training stages already record.
//!
//! ```text
//! difftune-loadtest --addr HOST:PORT [--requests N] [--batch K] [--blocks B]
//!                   [--connections C] [--collide] [--seed S] [--sim X]
//!                   [--uarch X] [--spec X] [--source X]
//!                   [--expect-source-kind KIND] [--expect-coalescing]
//!                   [--json] [--out-dir DIR] [--wait-seconds S]
//!                   [--max-seconds S] [--check-deterministic]
//! difftune-loadtest --via-router N [--routers M] [--kill-upstream-after K]
//!                   [--chaos SPEC] [--tables DIR]...
//!                   [--error-budget SPEC]... [--idle-timeout S] [...as above]
//! ```
//!
//! `--via-router N` spawns N `difftune-serve` upstreams and `--routers M`
//! (default 1) `difftune-router` replicas over them (sibling binaries next
//! to its own executable), then drives the first router. Spawned children
//! are tracked in a process-wide registry: they are killed when the fleet
//! drops, when the loadtest panics (a panic hook sweeps the registry), and
//! on Ctrl-C (the terminal delivers SIGINT to the whole process group).
//! Every child also carries a generous `--max-seconds` self-destruct as the
//! last line of defence against orphans.
//!
//! `--kill-upstream-after K` SIGKILLs the ring-primary upstream after K
//! requests of the first pass — mid-load — and the remaining requests must
//! fail over. `--chaos SPEC` generalises it into a scripted fault schedule
//! (the grammar lives in `tests/chaos/mod.rs`, shared with
//! `tests/fleet_e2e.rs`): explicit `kill@24,rollout@40` events or seeded
//! `seed:42:3` draws, replayed bit-identically. A clean baseline pass runs
//! first; then the schedule replays the same requests with faults injected
//! at their request indices, and every response must be byte-identical to
//! the baseline — determinism invariant #6 in scripted, exhaustive form:
//! pre-fault and post-fault canonical bytes are the *same* bytes.
//!
//! `--collide` makes every connection send the *full* request sequence
//! instead of a partition, so C connections race identical bodies — the
//! workload the router's singleflight map coalesces. `--expect-coalescing`
//! scrapes the router's `/metrics` after the first pass and fails unless
//! `difftune_router_coalesced_total` > 0.
//!
//! `--check-deterministic` replays the exact request sequence a second time
//! (now against a warm — and, after faults, degraded — fleet) and exits
//! nonzero unless every response body is byte-identical to the first pass.
//! `--max-seconds` is the CI tripwire: the run fails if the whole loadtest
//! exceeds the budget.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use difftune_bench::record::BenchRecord;
use difftune_isa::{BlockGenerator, GeneratorConfig};
use difftune_serve::client::HttpClient;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;

#[path = "../../../../tests/chaos/mod.rs"]
mod chaos;

use chaos::{ChaosSchedule, Fault, FaultKind};

/// Every spawned child's PID. The panic hook sweeps this so a failing
/// assertion in any loadtest thread cannot leak serve/router processes; the
/// `Fleet` drop is the orderly path and unregisters what it kills.
static CHILD_PIDS: Mutex<Vec<u32>> = Mutex::new(Vec::new());

fn register_child(pid: u32) {
    CHILD_PIDS.lock().expect("child registry").push(pid);
}

fn unregister_child(pid: u32) {
    CHILD_PIDS
        .lock()
        .expect("child registry")
        .retain(|&known| known != pid);
}

/// SIGKILLs every registered child. Used by the panic hook and the error
/// exit; safe to call twice (the registry drains on first use).
fn kill_registered_children() {
    let pids = std::mem::take(&mut *CHILD_PIDS.lock().expect("child registry"));
    for pid in pids {
        let _ = std::process::Command::new("kill")
            .args(["-KILL", &pid.to_string()])
            .status();
    }
}

/// Delivers a named signal (`STOP`, `CONT`, ...) to a child PID.
fn signal_child(pid: u32, signal: &str) -> Result<(), String> {
    let status = std::process::Command::new("kill")
        .args([&format!("-{signal}"), &pid.to_string()])
        .status()
        .map_err(|error| format!("cannot run kill -{signal} {pid}: {error}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("kill -{signal} {pid} exited with {status}"))
    }
}

struct Args {
    addr: String,
    requests: usize,
    batch: usize,
    blocks: usize,
    connections: usize,
    collide: bool,
    seed: u64,
    sim: Option<String>,
    uarch: Option<String>,
    spec: Option<String>,
    source: Option<String>,
    expect_source_kind: Option<String>,
    expect_coalescing: bool,
    json: bool,
    out_dir: String,
    wait_seconds: f64,
    max_seconds: Option<f64>,
    check_deterministic: bool,
    via_router: Option<usize>,
    routers: usize,
    kill_upstream_after: Option<usize>,
    chaos: Option<String>,
    tables: Vec<String>,
    error_budget: Vec<String>,
    idle_timeout: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-loadtest (--addr HOST:PORT | --via-router N) [--routers M] [--requests N] \
         [--batch K] [--blocks B] [--connections C] [--collide] [--seed S] [--sim X] [--uarch X] \
         [--spec X] [--source X] [--expect-source-kind KIND] [--expect-coalescing] [--json] \
         [--out-dir DIR] [--wait-seconds S] [--max-seconds S] [--check-deterministic] \
         [--kill-upstream-after K] [--chaos SPEC] [--tables DIR]... [--error-budget SPEC]... \
         [--idle-timeout S]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        requests: 64,
        batch: 4,
        blocks: 32,
        connections: 1,
        collide: false,
        seed: 0,
        sim: None,
        uarch: None,
        spec: None,
        source: None,
        expect_source_kind: None,
        expect_coalescing: false,
        json: false,
        out_dir: ".".to_string(),
        wait_seconds: 30.0,
        max_seconds: None,
        check_deterministic: false,
        via_router: None,
        routers: 1,
        kill_upstream_after: None,
        chaos: None,
        tables: Vec::new(),
        error_budget: Vec::new(),
        idle_timeout: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        let parse_usize = |flag: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{flag} must be an unsigned integer, got {raw:?}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--requests" => args.requests = parse_usize("--requests", value("--requests")),
            "--batch" => args.batch = parse_usize("--batch", value("--batch")),
            "--blocks" => args.blocks = parse_usize("--blocks", value("--blocks")),
            "--connections" => {
                args.connections = parse_usize("--connections", value("--connections"))
            }
            "--collide" => args.collide = true,
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--sim" => args.sim = Some(value("--sim")),
            "--uarch" => args.uarch = Some(value("--uarch")),
            "--spec" => args.spec = Some(value("--spec")),
            "--source" => args.source = Some(value("--source")),
            "--expect-source-kind" => args.expect_source_kind = Some(value("--expect-source-kind")),
            "--expect-coalescing" => args.expect_coalescing = true,
            "--json" => args.json = true,
            "--out-dir" => args.out_dir = value("--out-dir"),
            "--wait-seconds" => {
                args.wait_seconds = value("--wait-seconds").parse().unwrap_or_else(|_| usage())
            }
            "--max-seconds" => {
                args.max_seconds = Some(value("--max-seconds").parse().unwrap_or_else(|_| usage()))
            }
            "--check-deterministic" => args.check_deterministic = true,
            "--via-router" => {
                args.via_router = Some(parse_usize("--via-router", value("--via-router")))
            }
            "--routers" => args.routers = parse_usize("--routers", value("--routers")),
            "--kill-upstream-after" => {
                args.kill_upstream_after = Some(parse_usize(
                    "--kill-upstream-after",
                    value("--kill-upstream-after"),
                ))
            }
            "--chaos" => args.chaos = Some(value("--chaos")),
            "--tables" => args.tables.push(value("--tables")),
            "--error-budget" => args.error_budget.push(value("--error-budget")),
            "--idle-timeout" => {
                args.idle_timeout = Some(value("--idle-timeout").parse().unwrap_or_else(|_| {
                    eprintln!("--idle-timeout must be numeric seconds");
                    usage()
                }))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    match (args.addr.is_empty(), args.via_router) {
        (true, None) => {
            eprintln!("one of --addr or --via-router is required");
            usage()
        }
        (false, Some(_)) => {
            eprintln!("--addr and --via-router are mutually exclusive (the router is the target)");
            usage()
        }
        _ => {}
    }
    if let Some(upstreams) = args.via_router {
        if upstreams == 0 {
            eprintln!("--via-router needs at least one upstream");
            usage()
        }
    }
    if args.routers == 0 {
        eprintln!("--routers must be positive");
        usage()
    }
    if args.routers > 1 && args.via_router.is_none() {
        eprintln!("--routers requires --via-router (the loadtest spawns them)");
        usage()
    }
    if args.kill_upstream_after.is_some() {
        match args.via_router {
            None => {
                eprintln!("--kill-upstream-after requires --via-router (it kills a spawned child)");
                usage()
            }
            Some(upstreams) if upstreams < 2 => {
                eprintln!("--kill-upstream-after needs --via-router >= 2 to have a survivor");
                usage()
            }
            _ => {}
        }
    }
    if args.chaos.is_some() {
        if args.kill_upstream_after.is_some() {
            eprintln!("--chaos and --kill-upstream-after are mutually exclusive (use kill@K)");
            usage()
        }
        match args.via_router {
            None => {
                eprintln!("--chaos requires --via-router (faults apply to spawned children)");
                usage()
            }
            Some(upstreams) if upstreams < 2 => {
                eprintln!("--chaos needs --via-router >= 2 so kills leave a survivor");
                usage()
            }
            _ => {}
        }
    }
    if args.requests == 0 || args.batch == 0 || args.blocks == 0 || args.connections == 0 {
        eprintln!("--requests, --batch, --blocks, and --connections must be positive");
        usage()
    }
    args
}

/// One spawned child process (a serve upstream or a router) with the
/// address it reported on stdout.
struct ChildProcess {
    #[allow(dead_code)]
    name: String,
    addr: String,
    process: std::process::Child,
    /// Held open so the child never blocks on a closed stdout pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ChildProcess {
    /// SIGKILL + reap + drop from the panic-hook registry.
    fn kill(&mut self) {
        let pid = self.process.id();
        let _ = self.process.kill();
        let _ = self.process.wait();
        unregister_child(pid);
    }

    /// True while the child has not exited.
    fn alive(&mut self) -> bool {
        matches!(self.process.try_wait(), Ok(None))
    }
}

/// The self-spawned fleet: N serve upstreams plus M routers. Dropping the
/// fleet kills every child, so no run leaves orphans behind.
struct Fleet {
    upstreams: Vec<ChildProcess>,
    routers: Vec<ChildProcess>,
}

impl Fleet {
    fn router_addr(&self) -> &str {
        &self.routers.first().expect("fleet has a router").addr
    }

    /// The upstream to fault next: the ring primary for `preferred` when
    /// that child is still running, else the first upstream still alive.
    fn victim(&mut self, preferred: &str) -> Result<usize, String> {
        let by_addr = self
            .upstreams
            .iter()
            .position(|child| child.addr == preferred);
        if let Some(index) = by_addr {
            if self.upstreams[index].alive() {
                return Ok(index);
            }
        }
        (0..self.upstreams.len())
            .find(|&index| self.upstreams[index].alive())
            .ok_or_else(|| "every upstream is already dead".to_string())
    }

    /// SIGKILLs the upstream serving `addr`. Mid-load chaos: pooled router
    /// connections to it die mid-stream and must fail over.
    fn kill_upstream(&mut self, addr: &str) -> Result<(), String> {
        let child = self
            .upstreams
            .iter_mut()
            .find(|child| child.addr == addr)
            .ok_or_else(|| format!("no spawned upstream listens on {addr}"))?;
        child.kill();
        Ok(())
    }

    /// Kills the router at `addr` and returns the address of a survivor.
    fn kill_router(&mut self, addr: &str) -> Result<String, String> {
        if self.routers.len() < 2 {
            return Err("cannot kill the only router".to_string());
        }
        let index = self
            .routers
            .iter()
            .position(|child| child.addr == addr)
            .ok_or_else(|| format!("no spawned router listens on {addr}"))?;
        let mut child = self.routers.remove(index);
        child.kill();
        Ok(self.routers[0].addr.clone())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.upstreams.iter_mut().chain(self.routers.iter_mut()) {
            child.kill();
        }
    }
}

/// The `http://HOST:PORT` address out of a child's `listening on` line.
fn parse_listening_addr(line: &str) -> Option<String> {
    let start = line.find("http://")? + "http://".len();
    let rest = &line[start..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

/// Spawns one sibling binary (resolved next to this executable), piping
/// stdout and blocking until it reports its listening address. The child's
/// PID is registered for the panic-hook sweep before this returns.
fn spawn_child(binary: &str, child_args: &[String], name: &str) -> Result<ChildProcess, String> {
    let exe = std::env::current_exe()
        .map_err(|error| format!("cannot locate this executable: {error}"))?;
    let path = exe
        .parent()
        .ok_or_else(|| "this executable has no parent directory".to_string())?
        .join(binary);
    if !path.exists() {
        return Err(format!(
            "{} is not built (expected at {}); build it alongside difftune-loadtest",
            binary,
            path.display()
        ));
    }
    let mut process = std::process::Command::new(&path)
        .args(child_args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|error| format!("cannot spawn {}: {error}", path.display()))?;
    register_child(process.id());
    let stdout = process.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let pid = process.id();
                let _ = process.kill();
                let _ = process.wait();
                unregister_child(pid);
                return Err(format!("{name} exited before reporting its address"));
            }
            Ok(_) => {
                if let Some(addr) = parse_listening_addr(&line) {
                    eprintln!("[difftune-loadtest] {name} listening on {addr}");
                    return Ok(ChildProcess {
                        name: name.to_string(),
                        addr,
                        process,
                        _stdout: reader,
                    });
                }
            }
            Err(error) => {
                let pid = process.id();
                let _ = process.kill();
                let _ = process.wait();
                unregister_child(pid);
                return Err(format!("cannot read {name} stdout: {error}"));
            }
        }
    }
}

/// Spawns `upstreams` serve children and `args.routers` routers fronting
/// them. `tables` has already been redirected to the chaos scratch copy
/// when the schedule includes a corrupt-reload fault.
fn spawn_fleet(args: &Args, upstreams: usize, tables: &[String]) -> Result<Fleet, String> {
    // A generous self-destruct on every child, so an aborted loadtest can
    // never leave servers running forever.
    let self_destruct = "900".to_string();
    let mut fleet = Fleet {
        upstreams: Vec::with_capacity(upstreams),
        routers: Vec::new(),
    };
    for index in 0..upstreams {
        let mut child_args = vec![
            "--port".to_string(),
            "0".to_string(),
            "--max-seconds".to_string(),
            self_destruct.clone(),
        ];
        for dir in tables {
            child_args.push("--tables".to_string());
            child_args.push(dir.clone());
        }
        for budget in &args.error_budget {
            child_args.push("--error-budget".to_string());
            child_args.push(budget.clone());
        }
        if let Some(seconds) = args.idle_timeout {
            child_args.push("--idle-timeout".to_string());
            child_args.push(seconds.to_string());
        }
        fleet.upstreams.push(spawn_child(
            "difftune-serve",
            &child_args,
            &format!("upstream[{index}]"),
        )?);
    }
    for index in 0..args.routers {
        let mut router_args = vec![
            "--port".to_string(),
            "0".to_string(),
            "--max-seconds".to_string(),
            self_destruct.clone(),
        ];
        for upstream in &fleet.upstreams {
            router_args.push("--upstream".to_string());
            router_args.push(upstream.addr.clone());
        }
        if let Some(seconds) = args.idle_timeout {
            router_args.push("--idle-timeout".to_string());
            router_args.push(seconds.to_string());
        }
        fleet.routers.push(spawn_child(
            "difftune-router",
            &router_args,
            &format!("router[{index}]"),
        )?);
    }
    Ok(fleet)
}

/// Asks the router (`POST /route`) which upstream is primary for this body.
fn primary_upstream(router_addr: &str, body: &str, wait: Duration) -> Result<String, String> {
    let mut client = HttpClient::connect_with_retry(router_addr, wait)
        .map_err(|error| format!("cannot connect to router {router_addr}: {error}"))?;
    let response = client
        .request("POST", "/route", body.as_bytes())
        .map_err(|error| format!("POST /route failed: {error}"))?;
    if response.status != 200 {
        return Err(format!(
            "POST /route answered {}: {}",
            response.status,
            response.body_text()
        ));
    }
    let value = serde_json::from_str_value(&response.body_text())
        .map_err(|error| format!("/route body is not JSON: {error}"))?;
    value
        .get("primary")
        .and_then(|primary| primary.as_str().map(String::from))
        .ok_or_else(|| format!("/route body has no primary: {}", response.body_text()))
}

/// Builds the deterministic request bodies: `blocks` distinct generated
/// blocks, grouped `batch` at a time, rotating until `requests` bodies exist.
fn request_bodies(args: &Args) -> Vec<String> {
    let generator = BlockGenerator::new(GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(args.seed);
    let blocks: Vec<String> = (0..args.blocks)
        .map(|_| generator.generate(&mut rng).to_string())
        .collect();

    (0..args.requests)
        .map(|request| {
            let batch: Vec<Value> = (0..args.batch)
                .map(|i| Value::Str(blocks[(request * args.batch + i) % blocks.len()].clone()))
                .collect();
            let mut map = vec![("blocks".to_string(), Value::Seq(batch))];
            for (field, flag) in [
                ("sim", &args.sim),
                ("uarch", &args.uarch),
                ("spec", &args.spec),
                ("source", &args.source),
            ] {
                if let Some(value) = flag {
                    map.push((field.to_string(), Value::Str(value.clone())));
                }
            }
            serde_json::to_string(&Value::Map(map)).expect("a request body always serializes")
        })
        .collect()
}

/// Runs one closed-loop pass over every request body; returns the response
/// bodies in request order. Without `--collide` the bodies are partitioned
/// round-robin across connections; with it, every connection sends the full
/// sequence in lockstep (a barrier before each send), racing identical
/// requests through the router's singleflight map, and the per-connection
/// response streams must agree byte-for-byte.
fn run_pass(args: &Args, bodies: &[String]) -> Result<Vec<String>, String> {
    if args.collide {
        return run_collide_pass(args, bodies);
    }
    let responses: Vec<Result<Vec<(usize, String)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|connection| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect_with_retry(
                        &args.addr,
                        Duration::from_secs_f64(args.wait_seconds),
                    )
                    .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
                    let mut collected = Vec::new();
                    for (index, body) in bodies.iter().enumerate() {
                        if index % args.connections != connection {
                            continue;
                        }
                        let response = client
                            .post_json("/predict", body)
                            .map_err(|error| format!("request {index} failed: {error}"))?;
                        if response.status != 200 {
                            return Err(format!(
                                "request {index} answered {}: {}",
                                response.status,
                                response.body_text()
                            ));
                        }
                        collected.push((index, response.body_text()));
                    }
                    Ok(collected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadtest worker panicked"))
            .collect()
    });

    let mut ordered = vec![String::new(); bodies.len()];
    for result in responses {
        for (index, body) in result? {
            ordered[index] = body;
        }
    }
    Ok(ordered)
}

/// The `--collide` pass: C connections each send all bodies, synchronized
/// per request so identical bodies are in flight together.
fn run_collide_pass(args: &Args, bodies: &[String]) -> Result<Vec<String>, String> {
    let barrier = Barrier::new(args.connections);
    let streams: Vec<Result<Vec<String>, String>> = std::thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..args.connections)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect_with_retry(
                        &args.addr,
                        Duration::from_secs_f64(args.wait_seconds),
                    )
                    .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
                    let mut collected = Vec::with_capacity(bodies.len());
                    for (index, body) in bodies.iter().enumerate() {
                        barrier.wait();
                        let response = client
                            .post_json("/predict", body)
                            .map_err(|error| format!("request {index} failed: {error}"))?;
                        if response.status != 200 {
                            return Err(format!(
                                "request {index} answered {}: {}",
                                response.status,
                                response.body_text()
                            ));
                        }
                        collected.push(response.body_text());
                    }
                    Ok(collected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadtest worker panicked"))
            .collect()
    });
    let mut first: Option<Vec<String>> = None;
    for stream in streams {
        let stream = stream?;
        match &first {
            None => first = Some(stream),
            Some(reference) => {
                for (index, (a, b)) in reference.iter().zip(&stream).enumerate() {
                    if a != b {
                        return Err(format!(
                            "COALESCING DIVERGENCE: request {index} differs between colliding \
                             connections:\n  {a}\n  {b}"
                        ));
                    }
                }
            }
        }
    }
    Ok(first.expect("at least one connection"))
}

/// Recursively copies `from` into `to` (used to build a corruptible scratch
/// copy of the table dirs, so chaos never touches the user's artifacts).
fn copy_dir_recursive(from: &Path, to: &Path) -> Result<(), String> {
    std::fs::create_dir_all(to)
        .map_err(|error| format!("cannot create {}: {error}", to.display()))?;
    let entries = std::fs::read_dir(from)
        .map_err(|error| format!("cannot read {}: {error}", from.display()))?;
    for entry in entries {
        let entry = entry.map_err(|error| format!("cannot list {}: {error}", from.display()))?;
        let source = entry.path();
        let target = to.join(entry.file_name());
        let kind = entry
            .file_type()
            .map_err(|error| format!("cannot stat {}: {error}", source.display()))?;
        if kind.is_dir() {
            copy_dir_recursive(&source, &target)?;
        } else {
            std::fs::copy(&source, &target)
                .map_err(|error| format!("cannot copy {}: {error}", source.display()))?;
        }
    }
    Ok(())
}

/// Overwrites every regular file under `dir` with garbage, so the next
/// strict reload must refuse the artifacts and keep the old registry.
fn corrupt_dir(dir: &Path) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|error| format!("cannot read {}: {error}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|error| format!("cannot list {}: {error}", dir.display()))?;
        let path = entry.path();
        let kind = entry
            .file_type()
            .map_err(|error| format!("cannot stat {}: {error}", path.display()))?;
        if kind.is_dir() {
            corrupt_dir(&path)?;
        } else {
            std::fs::write(&path, b"this is not a difftune artifact")
                .map_err(|error| format!("cannot corrupt {}: {error}", path.display()))?;
        }
    }
    Ok(())
}

/// Applies one scheduled fault to the running fleet. `stalled` carries a
/// SIGSTOPped child's PID until the next schedule boundary SIGCONTs it.
fn apply_fault(
    fault: &Fault,
    args: &mut Args,
    fleet: &mut Fleet,
    bodies: &[String],
    stalled: &mut Option<u32>,
    scratch_tables: &[String],
) -> Result<(), String> {
    let wait = Duration::from_secs_f64(args.wait_seconds);
    match fault.kind {
        FaultKind::KillUpstream => {
            let preferred = primary_upstream(&args.addr, &bodies[0], wait)?;
            let victim = fleet.victim(&preferred)?;
            let addr = fleet.upstreams[victim].addr.clone();
            fleet.kill_upstream(&addr)?;
            eprintln!(
                "[difftune-loadtest] chaos: killed upstream {addr} after request {}",
                fault.at_request
            );
        }
        FaultKind::StallUpstream => {
            let preferred = primary_upstream(&args.addr, &bodies[0], wait)?;
            let victim = fleet.victim(&preferred)?;
            let pid = fleet.upstreams[victim].process.id();
            signal_child(pid, "STOP")?;
            *stalled = Some(pid);
            eprintln!(
                "[difftune-loadtest] chaos: stalled upstream {} (SIGSTOP) after request {}",
                fleet.upstreams[victim].addr, fault.at_request
            );
        }
        FaultKind::CorruptReload => {
            for dir in scratch_tables {
                corrupt_dir(Path::new(dir))?;
            }
            let mut client = HttpClient::connect_with_retry(&args.addr, wait)
                .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
            let response = client
                .request("POST", "/reload", b"")
                .map_err(|error| format!("POST /reload failed: {error}"))?;
            // With corrupted artifacts a strict reload refuses and the old
            // registry keeps serving; without table dirs this is a clean
            // registry rebuild under load. Either way the responses after
            // this boundary must stay byte-identical to the baseline.
            eprintln!(
                "[difftune-loadtest] chaos: corrupt-artifact reload after request {} \
                 (router answered {})",
                fault.at_request, response.status
            );
        }
        FaultKind::Rollout => {
            let mut client = HttpClient::connect_with_retry(&args.addr, wait)
                .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
            let response = client
                .request("POST", "/rollout", b"")
                .map_err(|error| format!("POST /rollout failed: {error}"))?;
            // Reload-mode rollouts only succeed when the upstreams can
            // rebuild their registries; after a corrupt fault the rollout
            // must *abort* and leave the fleet serving, so any status is
            // legal — the baseline comparison is the real assertion.
            eprintln!(
                "[difftune-loadtest] chaos: rollout after request {} (router answered {}: {})",
                fault.at_request,
                response.status,
                response.body_text()
            );
        }
        FaultKind::KillRouter => {
            let dead = args.addr.clone();
            args.addr = fleet.kill_router(&dead)?;
            eprintln!(
                "[difftune-loadtest] chaos: killed router {dead} after request {}; moving to {}",
                fault.at_request, args.addr
            );
        }
    }
    Ok(())
}

/// Replays the request sequence with the schedule's faults injected at
/// their request boundaries; returns the responses in request order.
fn run_chaos_pass(
    args: &mut Args,
    bodies: &[String],
    schedule: &ChaosSchedule,
    fleet: &mut Fleet,
    scratch_tables: &[String],
) -> Result<Vec<String>, String> {
    let mut responses = Vec::with_capacity(bodies.len());
    let mut next = 0usize;
    let mut stalled: Option<u32> = None;
    for fault in &schedule.faults {
        let boundary = (fault.at_request + 1).min(bodies.len());
        if boundary > next {
            responses.extend(run_pass(args, &bodies[next..boundary])?);
            next = boundary;
        }
        // A stalled upstream wakes at the next boundary: the stall was a
        // transient, not a death, and the fleet must absorb its return too.
        if let Some(pid) = stalled.take() {
            signal_child(pid, "CONT")?;
            eprintln!("[difftune-loadtest] chaos: resumed stalled upstream (SIGCONT)");
        }
        apply_fault(fault, args, fleet, bodies, &mut stalled, scratch_tables)?;
    }
    if next < bodies.len() {
        responses.extend(run_pass(args, &bodies[next..])?);
    }
    if let Some(pid) = stalled.take() {
        signal_child(pid, "CONT")?;
        eprintln!("[difftune-loadtest] chaos: resumed stalled upstream (SIGCONT)");
    }
    Ok(responses)
}

/// Scrapes the target's `/metrics` for `difftune_router_coalesced_total`.
fn scrape_coalesced_total(addr: &str, wait: Duration) -> Result<u64, String> {
    let mut client = HttpClient::connect_with_retry(addr, wait)
        .map_err(|error| format!("cannot connect to {addr}: {error}"))?;
    let response = client
        .get("/metrics")
        .map_err(|error| format!("GET /metrics failed: {error}"))?;
    if response.status != 200 {
        return Err(format!("GET /metrics answered {}", response.status));
    }
    for line in response.body_text().lines() {
        if let Some(value) = line.strip_prefix("difftune_router_coalesced_total ") {
            return value
                .trim()
                .parse()
                .map_err(|_| format!("unparseable coalesced_total value {value:?}"));
        }
    }
    Err("the target exports no difftune_router_coalesced_total (is it a router?)".to_string())
}

fn main() {
    // A panicking worker thread (failed assertion, poisoned lock) must not
    // leak the spawned fleet; neither must an error return. Ctrl-C needs no
    // hook: the terminal delivers SIGINT to the whole process group, children
    // included.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        kill_registered_children();
        default_hook(info);
    }));
    if let Err(error) = run() {
        eprintln!("difftune-loadtest: {error}");
        kill_registered_children();
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut args = parse_args();
    let bodies = request_bodies(&args);
    let wait = Duration::from_secs_f64(args.wait_seconds);

    // Parse the chaos schedule before spawning anything: a bad spec should
    // fail fast, and a corrupt fault redirects the fleet's table dirs to a
    // disposable scratch copy.
    let schedule = match &args.chaos {
        Some(spec) => Some(ChaosSchedule::parse(
            spec,
            args.requests,
            args.routers >= 2,
        )?),
        None => None,
    };
    let needs_scratch = schedule.as_ref().is_some_and(|schedule| {
        schedule
            .faults
            .iter()
            .any(|fault| fault.kind == FaultKind::CorruptReload)
    }) && !args.tables.is_empty();
    let mut scratch_root: Option<PathBuf> = None;
    let mut fleet_tables = args.tables.clone();
    if needs_scratch {
        let root = Path::new(&args.out_dir).join(format!("chaos-scratch-{}", std::process::id()));
        let mut copies = Vec::with_capacity(args.tables.len());
        for (index, dir) in args.tables.iter().enumerate() {
            let copy = root.join(format!("tables-{index}"));
            copy_dir_recursive(Path::new(dir), &copy)?;
            copies.push(copy.to_string_lossy().into_owned());
        }
        fleet_tables = copies;
        scratch_root = Some(root);
    }

    // Chaos mode: spawn the fleet and point the loadtest at a router.
    let mut fleet = match args.via_router {
        Some(upstreams) => {
            let fleet = spawn_fleet(&args, upstreams, &fleet_tables)?;
            args.addr = fleet.router_addr().to_string();
            Some(fleet)
        }
        None => None,
    };

    // Readiness probe before the clock starts: the BENCH record (and the
    // --max-seconds tripwire) measure serving, not how long a freshly
    // spawned server takes to start accepting.
    HttpClient::connect_with_retry(&args.addr, wait)
        .map_err(|error| format!("cannot connect to {}: {error}", args.addr))?;
    let started = Instant::now();

    // The first pass, in one of three shapes: a scripted chaos schedule
    // (clean baseline, then the same requests with faults injected), the
    // single mid-load kill, or a plain closed loop. Whatever mix of
    // pre-fault and post-fault responses comes back is what determinism is
    // asserted against.
    let first_pass = if let Some(schedule) = &schedule {
        eprintln!("[difftune-loadtest] chaos schedule: {}", schedule.spec);
        let baseline =
            run_pass(&args, &bodies).map_err(|error| format!("baseline pass: {error}"))?;
        let fleet = fleet.as_mut().expect("--chaos implies a fleet");
        let chaos_pass = run_chaos_pass(&mut args, &bodies, schedule, fleet, &fleet_tables)
            .map_err(|error| format!("chaos pass: {error}"))?;
        for (index, (clean, faulted)) in baseline.iter().zip(&chaos_pass).enumerate() {
            if clean != faulted {
                return Err(format!(
                    "CHAOS DIVERGENCE: request {index} differs from the fault-free baseline \
                     under schedule {}:\n  baseline: {clean}\n  chaos:    {faulted}",
                    schedule.spec
                ));
            }
        }
        println!(
            "difftune-loadtest: chaos schedule [{}] replayed; all {} responses byte-identical \
             to the fault-free baseline",
            schedule.spec,
            chaos_pass.len()
        );
        chaos_pass
    } else if let Some(kill_after) = args.kill_upstream_after {
        let split = kill_after.min(bodies.len());
        let mut pass = run_pass(&args, &bodies[..split])
            .map_err(|error| format!("pre-kill segment: {error}"))?;
        let victim = primary_upstream(&args.addr, &bodies[0], wait)
            .map_err(|error| format!("cannot pick a victim: {error}"))?;
        let fleet = fleet
            .as_mut()
            .expect("--kill-upstream-after implies a fleet");
        fleet.kill_upstream(&victim)?;
        eprintln!("[difftune-loadtest] killed primary upstream {victim} after {split} request(s)");
        let rest = run_pass(&args, &bodies[split..])
            .map_err(|error| format!("post-kill segment: {error}"))?;
        pass.extend(rest);
        pass
    } else {
        run_pass(&args, &bodies)?
    };
    let first_elapsed = started.elapsed().as_secs_f64();
    let samples = args.requests * args.batch * if args.collide { args.connections } else { 1 };
    println!(
        "difftune-loadtest: {} requests ({samples} blocks) over {} connection(s){} in {:.3}s \
         ({:.0} blocks/s){}",
        args.requests,
        args.connections,
        if args.collide { " [colliding]" } else { "" },
        first_elapsed,
        samples as f64 / first_elapsed.max(1e-9),
        if args.via_router.is_some() {
            " via router"
        } else {
            ""
        },
    );

    if args.expect_coalescing {
        // Scrape before teardown: the router dies with the loadtest, so the
        // counter is only observable now.
        let coalesced = scrape_coalesced_total(&args.addr, wait)?;
        if coalesced == 0 {
            return Err(
                "COALESCING MISS: difftune_router_coalesced_total is 0 after a colliding pass"
                    .to_string(),
            );
        }
        println!("difftune-loadtest: router coalesced {coalesced} request(s)");
    }

    if let Some(expected) = &args.expect_source_kind {
        // Tier assertion for policy backends: every response must have been
        // answered from the expected tier family ("table" or "surrogate").
        for (index, body) in first_pass.iter().enumerate() {
            let kind = serde_json::from_str_value(body).ok().and_then(|value| {
                value
                    .get("source_kind")
                    .and_then(|k| k.as_str().map(String::from))
            });
            if kind.as_deref() != Some(expected.as_str()) {
                return Err(format!(
                    "SOURCE KIND MISMATCH: request {index} expected source_kind {expected:?}, \
                     got: {body}"
                ));
            }
        }
        println!(
            "difftune-loadtest: all {} responses answered with source_kind {expected:?}",
            first_pass.len()
        );
    }

    if args.check_deterministic {
        // Replay the identical sequence against the now-warm (and, after
        // faults, degraded) fleet: every body must come back byte-identical.
        let second_pass =
            run_pass(&args, &bodies).map_err(|error| format!("replay pass: {error}"))?;
        for (index, (first, second)) in first_pass.iter().zip(&second_pass).enumerate() {
            if first != second {
                return Err(format!(
                    "DETERMINISM VIOLATION: request {index} diverged between cold and warm \
                     passes:\n  cold: {first}\n  warm: {second}"
                ));
            }
        }
        println!(
            "difftune-loadtest: replay pass byte-identical across {} responses",
            first_pass.len()
        );
    }

    if args.json {
        let threads = args.connections;
        let (record, file_name) = if args.via_router.is_some() {
            // Stage `route`; the artifact keeps the conventional CI name.
            (
                BenchRecord::route(threads, args.seed, first_elapsed, samples),
                "BENCH_router.json".to_string(),
            )
        } else {
            let record = BenchRecord::serve(threads, args.seed, first_elapsed, samples);
            let file_name = record.file_name();
            (record, file_name)
        };
        std::fs::create_dir_all(&args.out_dir)
            .map_err(|error| format!("cannot create {}: {error}", args.out_dir))?;
        let path = Path::new(&args.out_dir).join(file_name);
        std::fs::write(&path, record.to_json())
            .map_err(|error| format!("cannot write {}: {error}", path.display()))?;
        println!("difftune-loadtest: wrote {}", path.display());
    }

    if let Some(ceiling) = args.max_seconds {
        let total = started.elapsed().as_secs_f64();
        if total > ceiling {
            return Err(format!(
                "PERF CEILING EXCEEDED: the loadtest took {total:.2}s, over the {ceiling:.2}s \
                 ceiling"
            ));
        }
    }
    // The fleet (if any) is killed on drop; the scratch copy is disposable.
    drop(fleet);
    if let Some(root) = scratch_root {
        let _ = std::fs::remove_dir_all(root);
    }
    Ok(())
}
