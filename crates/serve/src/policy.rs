//! The three-tier prediction policy: LRU cache → surrogate → simulator.
//!
//! DiffTune's deployment bargain ("Programming with Neural Surrogates of
//! Programs", Renda et al. 2021) is to serve the learned surrogate as the
//! fast path and fall back to the original program when confidence is low.
//! [`PolicyPredictor`] is that bargain as a [`Predictor`]: for one cell it
//! pairs the cell's learned table (the full simulator, tier 3) with the
//! cell's surrogate (tier 2) and routes each block to exactly one of them —
//! tier 1, the per-shard LRU, lives in the server's cache pass and is keyed
//! by the tier tag this module computes, so a cached block never re-enters
//! the policy at all.
//!
//! The tier decision ([`PolicyPredictor::tier_for`]) is a **pure function**
//! of the block and the cell's frozen metadata:
//!
//! * tier 3 (simulator) when the cell has no servable surrogate at all;
//! * tier 3 when the cell's recorded `surrogate_vs_sim_mape` exceeds the
//!   configured `--error-budget` (an unknown MAPE only clears an infinite
//!   budget — trust requires evidence);
//! * tier 3 when the block's structure fails surrogate program-keying (the
//!   taped fallback path exists but is not the fast path the budget vouches
//!   for);
//! * tier 2 (surrogate) otherwise.
//!
//! Nothing here consults cache state, shard identity, or request history,
//! which is what makes determinism invariant #8 hold: policy responses are
//! byte-identical across shard counts, cache states, and thread counts
//! given the same budget. Pinning `"source"` explicitly bypasses the policy
//! entirely (the query resolves the pinned backend), preserving existing
//! behavior byte-for-byte.

use std::sync::Arc;

use difftune::BackendId;
use difftune_bench::record::fnv1a;
use difftune_isa::BasicBlock;

use crate::backend::{Backend, Predictor, Source};

/// Cache-key tier tag for plain (non-policy) backends.
pub const TIER_PLAIN: u8 = 0;
/// Cache-key tier tag for policy blocks answered by the surrogate.
pub const TIER_SURROGATE: u8 = 2;
/// Cache-key tier tag for policy blocks answered by the full simulator.
pub const TIER_SIMULATOR: u8 = 3;

/// A cell's three-tier policy: the learned table as tier 3, the surrogate
/// (when servable) as tier 2, gated by the cell's recorded accuracy against
/// a configured error budget.
#[derive(Debug)]
pub struct PolicyPredictor {
    /// Tier 3: the cell's learned-table backend (matrix preferred over
    /// checkpoint).
    table: Arc<Backend>,
    /// Tier 2: the cell's surrogate backend, when one loaded and verified.
    surrogate: Option<Arc<Backend>>,
    /// The cell's recorded `surrogate_vs_sim_mape` from its matrix record,
    /// when the sweep measured one.
    mape: Option<f64>,
    /// The configured `--error-budget` the MAPE is held against.
    budget: f64,
    /// Combined digest over both halves and the budget.
    fingerprint: String,
}

impl PolicyPredictor {
    /// The tier this policy answers `block` from — a pure function of the
    /// block and the cell's frozen metadata (see the module docs for the
    /// decision table).
    pub fn tier_for(&self, block: &BasicBlock) -> u8 {
        let Some(surrogate) = &self.surrogate else {
            return TIER_SIMULATOR;
        };
        if self.mape.unwrap_or(f64::INFINITY) > self.budget {
            return TIER_SIMULATOR;
        }
        if surrogate.predictor.replayable(block).unwrap_or(false) {
            TIER_SURROGATE
        } else {
            TIER_SIMULATOR
        }
    }

    /// The recorded surrogate-vs-simulator MAPE gating tier 2.
    pub fn mape(&self) -> Option<f64> {
        self.mape
    }

    /// The configured error budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }
}

impl Predictor for PolicyPredictor {
    /// Routes every block to its tier's predictor and merges the answers
    /// back in request order. Each sub-predictor sees one batch per call,
    /// and both sub-predictors are themselves deterministic and
    /// batch-composition-independent, so the merged answer is too.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<f64> {
        let tiers: Vec<u8> = blocks.iter().map(|block| self.tier_for(block)).collect();
        let mut out = vec![0.0_f64; blocks.len()];
        for (tier, backend) in [
            (TIER_SURROGATE, self.surrogate.as_ref()),
            (TIER_SIMULATOR, Some(&self.table)),
        ] {
            let indices: Vec<usize> = (0..blocks.len()).filter(|&i| tiers[i] == tier).collect();
            if indices.is_empty() {
                continue;
            }
            let backend = backend.expect("a tier is only assigned when its backend exists");
            let batch: Vec<BasicBlock> = indices.iter().map(|&i| blocks[i].clone()).collect();
            let answers = backend.predictor.predict_batch(&batch);
            for (&index, answer) in indices.iter().zip(answers) {
                out[index] = answer;
            }
        }
        out
    }

    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn kind(&self) -> &'static str {
        "policy"
    }

    fn tier_tag(&self, block: &BasicBlock) -> u8 {
        self.tier_for(block)
    }
}

/// Builds the `policy:<cell>` backend over a cell's learned-table backend
/// and (optional) surrogate backend.
///
/// The cache fingerprint folds both halves' cache fingerprints with the
/// budget and the recorded MAPE, so a reload that changes *any* tier input —
/// the table, the surrogate, the budget, or the measured accuracy — retires
/// the policy's cache entries exactly like a table swap retires a table's.
pub fn policy_backend(
    table: &Arc<Backend>,
    surrogate: Option<&Arc<Backend>>,
    mape: Option<f64>,
    budget: f64,
) -> Backend {
    let spec = table
        .spec
        .expect("policies are built over learned backends, which carry a spec");
    let id = BackendId {
        source: Source::Policy,
        simulator: table.simulator_kind,
        uarch: table.uarch,
        spec: Some(spec),
    }
    .to_string();
    let surrogate_fingerprint = surrogate.map_or(0, |backend| backend.cache_fingerprint);
    let cache_fingerprint = fnv1a(
        "policy"
            .bytes()
            .chain([0xff])
            .chain(table.cache_fingerprint.to_le_bytes())
            .chain([0xff])
            .chain(surrogate_fingerprint.to_le_bytes())
            .chain([0xff])
            .chain(budget.to_bits().to_le_bytes())
            .chain(mape.unwrap_or(f64::NAN).to_bits().to_le_bytes()),
    );
    let predictor = PolicyPredictor {
        table: Arc::clone(table),
        surrogate: surrogate.map(Arc::clone),
        mape,
        budget,
        fingerprint: format!("{cache_fingerprint:#018x}"),
    };
    Backend {
        id,
        source: Source::Policy,
        simulator_kind: table.simulator_kind,
        uarch: table.uarch,
        spec: Some(spec),
        table: table.table.clone(),
        // Responses echo the learned-table digest, not the policy digest:
        // whichever tier answers, the cell being served is the learned
        // table's, and clients pinning artifacts (and the reload tests)
        // track that digest across sources. The policy's own combined
        // digest lives in `cache_fingerprint` / `Predictor::fingerprint`.
        table_fingerprint: table.table_fingerprint.clone(),
        predictor: Box::new(predictor),
        cache_fingerprint,
    }
}
