//! The fingerprint-keyed prediction cache.
//!
//! Every `(block, backend)` pair maps to exactly one prediction — simulators
//! are pure functions — so serving can memoize aggressively: the cache key is
//! the FNV-1a fingerprint of the block's canonical text crossed with the
//! backend's fingerprint (simulator kind × table digest), and the value is
//! the predicted timing. Because a hit returns the same `f64` the simulator
//! would recompute, the cache affects latency only, never response bytes —
//! the cold-vs-warm bit-identity the e2e suite asserts.
//!
//! The implementation is a hand-rolled LRU (no external crates in this
//! workspace): a `HashMap` index into a slab of doubly-linked slots, O(1)
//! lookup, insert, refresh, and eviction.

use std::collections::HashMap;

/// A cache key: `(block fingerprint, backend fingerprint, tier tag)`.
///
/// The tier tag is `0` for ordinary backends; policy backends tag each
/// block with the tier that answered it (2 = surrogate, 3 = simulator), so
/// a cached policy answer stays attributable to its tier in the metrics.
/// The tier is a pure function of the block and the policy's frozen
/// metadata, so a block still maps to exactly one key.
pub type CacheKey = (u64, u64, u8);

/// Sentinel for "no neighbor" in the intrusive list.
const NONE: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    key: CacheKey,
    value: f64,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from [`CacheKey`] to a predicted
/// timing. Capacity 0 disables caching (every lookup misses, inserts are
/// dropped).
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    /// Slots vacated by [`LruCache::remove`], reused before the slab grows.
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot (the eviction candidate).
    tail: usize,
    capacity: usize,
}

impl LruCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a key, marking it most recently used on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<f64> {
        let index = *self.map.get(key)?;
        self.detach(index);
        self.attach_front(index);
        Some(self.slots[index].value)
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// entry when at capacity.
    pub fn insert(&mut self, key: CacheKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&index) = self.map.get(&key) {
            self.slots[index].value = value;
            self.detach(index);
            self.attach_front(index);
            return;
        }
        let index = if self.map.len() < self.capacity {
            if let Some(index) = self.free.pop() {
                self.slots[index].key = key;
                self.slots[index].value = value;
                index
            } else {
                let index = self.slots.len();
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                });
                index
            }
        } else {
            // Reuse the least-recently-used slot in place.
            let index = self.tail;
            self.detach(index);
            self.map.remove(&self.slots[index].key);
            self.slots[index].key = key;
            self.slots[index].value = value;
            index
        };
        self.map.insert(key, index);
        self.attach_front(index);
    }

    /// Removes one entry, returning its value if it was cached.
    pub fn remove(&mut self, key: &CacheKey) -> Option<f64> {
        let index = self.map.remove(key)?;
        self.detach(index);
        self.free.push(index);
        Some(self.slots[index].value)
    }

    /// Drops every entry belonging to one backend fingerprint (the second
    /// half of the cache key) — the hot-reload invalidation path. Returns the
    /// number of entries removed.
    pub fn purge_backend(&mut self, backend_fingerprint: u64) -> usize {
        let stale: Vec<CacheKey> = self
            .map
            .keys()
            .filter(|(_, backend, _)| *backend == backend_fingerprint)
            .copied()
            .collect();
        for key in &stale {
            self.remove(key);
        }
        stale.len()
    }

    /// The cached keys from most to least recently used (test/debug helper).
    pub fn keys_most_recent_first(&self) -> Vec<CacheKey> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut cursor = self.head;
        while cursor != NONE {
            keys.push(self.slots[cursor].key);
            cursor = self.slots[cursor].next;
        }
        keys
    }

    /// Unlinks a slot from the recency list.
    fn detach(&mut self, index: usize) {
        let (prev, next) = (self.slots[index].prev, self.slots[index].next);
        if prev != NONE {
            self.slots[prev].next = next;
        } else if self.head == index {
            self.head = next;
        }
        if next != NONE {
            self.slots[next].prev = prev;
        } else if self.tail == index {
            self.tail = prev;
        }
        self.slots[index].prev = NONE;
        self.slots[index].next = NONE;
    }

    /// Links a slot in as most recently used.
    fn attach_front(&mut self, index: usize) {
        self.slots[index].next = self.head;
        self.slots[index].prev = NONE;
        if self.head != NONE {
            self.slots[self.head].prev = index;
        }
        self.head = index;
        if self.tail == NONE {
            self.tail = index;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        (n, 0xb1, 0)
    }

    #[test]
    fn inserts_evict_in_least_recently_used_order() {
        let mut cache = LruCache::new(3);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        cache.insert(key(3), 3.0);
        assert_eq!(cache.keys_most_recent_first(), vec![key(3), key(2), key(1)]);

        // Over capacity: the oldest entry (1) goes first.
        cache.insert(key(4), 4.0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.keys_most_recent_first(), vec![key(4), key(3), key(2)]);

        // And then 2, 3, 4 in turn — strict FIFO when nothing is touched.
        cache.insert(key(5), 5.0);
        cache.insert(key(6), 6.0);
        cache.insert(key(7), 7.0);
        assert_eq!(cache.keys_most_recent_first(), vec![key(7), key(6), key(5)]);
    }

    #[test]
    fn a_hit_refreshes_recency_and_changes_the_eviction_victim() {
        let mut cache = LruCache::new(3);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        cache.insert(key(3), 3.0);

        // Touch the oldest entry; now 2 is the eviction candidate.
        assert_eq!(cache.get(&key(1)), Some(1.0));
        assert_eq!(cache.keys_most_recent_first(), vec![key(1), key(3), key(2)]);
        cache.insert(key(4), 4.0);
        assert_eq!(cache.get(&key(2)), None, "2 was least recently used");
        assert_eq!(cache.get(&key(1)), Some(1.0), "1 was refreshed and kept");
    }

    #[test]
    fn reinserting_updates_the_value_and_recency_without_growing() {
        let mut cache = LruCache::new(2);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        cache.insert(key(1), 10.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)), Some(10.0));
        cache.insert(key(3), 3.0);
        assert_eq!(
            cache.get(&key(2)),
            None,
            "2 was the oldest after 1's refresh"
        );
    }

    #[test]
    fn distinct_backends_do_not_collide() {
        let mut cache = LruCache::new(4);
        cache.insert((7, 100, 0), 1.5);
        cache.insert((7, 200, 0), 2.5);
        assert_eq!(cache.get(&(7, 100, 0)), Some(1.5));
        assert_eq!(cache.get(&(7, 200, 0)), Some(2.5));
    }

    #[test]
    fn distinct_tier_tags_do_not_collide_and_purge_crosses_tiers() {
        let mut cache = LruCache::new(4);
        cache.insert((7, 100, 2), 1.5);
        cache.insert((7, 100, 3), 2.5);
        assert_eq!(cache.get(&(7, 100, 2)), Some(1.5));
        assert_eq!(cache.get(&(7, 100, 3)), Some(2.5));
        assert_eq!(cache.purge_backend(100), 2, "purge ignores the tier tag");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(key(1), 1.0);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
    }

    #[test]
    fn removed_entries_free_their_slots_for_reuse() {
        let mut cache = LruCache::new(3);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        cache.insert(key(3), 3.0);

        assert_eq!(cache.remove(&key(2)), Some(2.0));
        assert_eq!(cache.remove(&key(2)), None, "already removed");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys_most_recent_first(), vec![key(3), key(1)]);

        // The vacated slot is reused without growing the slab, and the list
        // stays coherent through further inserts and evictions.
        cache.insert(key(4), 4.0);
        cache.insert(key(5), 5.0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&key(1)), None, "evicted as least recent");
        assert_eq!(cache.keys_most_recent_first(), vec![key(5), key(4), key(3)]);
    }

    #[test]
    fn purging_a_backend_removes_exactly_its_entries() {
        let mut cache = LruCache::new(8);
        for n in 0..3 {
            cache.insert((n, 100, 0), n as f64);
            cache.insert((n, 200, 0), n as f64 + 10.0);
        }
        assert_eq!(cache.purge_backend(100), 3);
        assert_eq!(cache.len(), 3);
        for n in 0..3 {
            assert_eq!(cache.get(&(n, 100, 0)), None);
            assert_eq!(cache.get(&(n, 200, 0)), Some(n as f64 + 10.0));
        }
        assert_eq!(cache.purge_backend(100), 0, "nothing left to purge");
    }

    #[test]
    fn a_single_slot_cache_stays_consistent() {
        let mut cache = LruCache::new(1);
        for n in 0..100 {
            cache.insert(key(n), n as f64);
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.get(&key(n)), Some(n as f64));
            if n > 0 {
                assert_eq!(cache.get(&key(n - 1)), None);
            }
        }
    }
}
