//! Pooled keep-alive connections to the upstreams.
//!
//! The router holds at most [`ConnectionPool::DEPTH`] idle connections per
//! upstream. Checkout pops an idle connection (or reports none, letting the
//! caller dial a fresh one); checkin returns a connection that is still
//! good. Two events retire connections instead:
//!
//! * the upstream answered `Connection: close` (its per-connection request
//!   cap, or a drain) — the caller simply drops the client;
//! * the upstream failed entirely — [`ConnectionPool::clear`] empties its
//!   slot so no stale socket is ever retried against a dead process.

use std::sync::Mutex;

use difftune_serve::client::HttpClient;

/// A per-upstream stack of idle keep-alive connections.
#[derive(Debug, Default)]
pub struct ConnectionPool {
    /// Idle connections, indexed by upstream; LIFO so the warmest socket is
    /// reused first.
    idle: Mutex<Vec<Vec<HttpClient>>>,
}

impl ConnectionPool {
    /// Idle connections kept per upstream; beyond this, checkins drop the
    /// connection on the floor (closing it).
    pub const DEPTH: usize = 16;

    /// A pool for `upstreams` slots, all empty.
    pub fn new(upstreams: usize) -> Self {
        ConnectionPool {
            idle: Mutex::new((0..upstreams).map(|_| Vec::new()).collect()),
        }
    }

    /// Pops an idle connection for this upstream, if one is pooled.
    pub fn checkout(&self, upstream: usize) -> Option<HttpClient> {
        self.idle.lock().expect("pool lock poisoned")[upstream].pop()
    }

    /// Returns a healthy connection to the pool (dropped if the slot is
    /// already at [`ConnectionPool::DEPTH`]).
    pub fn checkin(&self, upstream: usize, client: HttpClient) {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle[upstream].len() < ConnectionPool::DEPTH {
            idle[upstream].push(client);
        }
    }

    /// Drops every idle connection to this upstream (it failed or was marked
    /// unhealthy).
    pub fn clear(&self, upstream: usize) {
        self.idle.lock().expect("pool lock poisoned")[upstream].clear();
    }

    /// Idle connections currently pooled for this upstream (test helper).
    pub fn idle_count(&self, upstream: usize) -> usize {
        self.idle.lock().expect("pool lock poisoned")[upstream].len()
    }
}
